"""Query execution: catalog, filtering, ranking, typical answers.

Executing a parsed :class:`~repro.query.ast_nodes.TopKQuery`:

1. resolve the FROM table in the :class:`Catalog`;
2. apply the WHERE predicate (dropping tuples reduces their ME groups,
   which is sound: a dropped tuple's probability mass simply becomes
   part of the group's "no member" outcome — filtering is applied
   before ranking, exactly like a relational plan would);
3. rank by the ORDER BY expression and compute the top-LIMIT score
   distribution with the requested algorithm;
4. select the c typical answers (``WITH TYPICAL c``, default 3) and
   project each answer's tuples through the SELECT list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.core.distribution import DEFAULT_P_TAU
from repro.core.dp import DEFAULT_MAX_LINES
from repro.core.pmf import ScorePMF
from repro.core.typical import TypicalResult
from repro.exceptions import QueryPlanError
from repro.query.ast_nodes import TopKQuery
from repro.query.parser import parse_query
from repro.semantics.u_topk import UTopkResult
from repro.uncertain.table import UncertainTable


class Catalog:
    """A named collection of uncertain tables."""

    def __init__(self, tables: Mapping[str, UncertainTable] | None = None):
        self._tables: dict[str, UncertainTable] = {}
        for name, table in (tables or {}).items():
            self.register(name, table)

    def register(self, name: str, table: UncertainTable) -> None:
        """Add (or replace) a table under ``name``."""
        self._tables[name] = table

    def resolve(self, name: str) -> UncertainTable:
        """Look up a table; raises :class:`QueryPlanError` if missing."""
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise QueryPlanError(
                f"unknown table {name!r}; known tables: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> tuple[str, ...]:
        """Registered table names, sorted."""
        return tuple(sorted(self._tables))


@dataclass(frozen=True)
class AnswerRow:
    """One typical answer, projected through the SELECT list.

    :ivar score: the answer's total score.
    :ivar probability: probability mass of that score.
    :ivar tuples: projected attribute rows, one per vector member.
    """

    score: float
    probability: float
    tuples: tuple[Mapping[str, Any], ...]


@dataclass(frozen=True)
class QueryResult:
    """Everything a query run produces.

    :ivar query: the parsed query.
    :ivar pmf: the top-k total-score distribution.
    :ivar typical: raw typical-answer selection.
    :ivar answers: typical answers projected through the SELECT list.
    :ivar u_topk: the U-Topk answer for comparison (None if absent).
    """

    query: TopKQuery
    pmf: ScorePMF
    typical: TypicalResult
    answers: tuple[AnswerRow, ...]
    u_topk: UTopkResult | None

    def __iter__(self) -> Iterator[AnswerRow]:
        return iter(self.answers)


#: Default number of typical answers when WITH TYPICAL is absent.
DEFAULT_TYPICAL = 3


def execute_query(
    query: TopKQuery | str,
    catalog: "Catalog | Mapping[str, UncertainTable] | Session",
    *,
    p_tau: float = DEFAULT_P_TAU,
    max_lines: int = DEFAULT_MAX_LINES,
    include_u_topk: bool = True,
    algorithm: str | None = None,
    epsilon: float | None = None,
    confidence: float | None = None,
    samples: int | None = None,
    seed: int = 0,
) -> QueryResult:
    """Execute a top-k query against a catalog (or a session).

    The plan routes through a :class:`~repro.api.session.Session`: one
    scored prefix serves the score distribution, the typical answers
    and the U-Topk comparison; passing an existing session lets
    repeated queries over the same catalog reuse its stage caches.

    :param algorithm: overrides the query text's algorithm (``None``
        keeps the text's choice, defaulting to ``"dp"``).
    :param epsilon: MC target ±ε (``algorithm="mc"`` only).
    :param confidence: MC confidence level.
    :param samples: explicit MC world count.
    :param seed: MC sampling seed.

    >>> from repro.datasets.soldier import soldier_table
    >>> result = execute_query(
    ...     "SELECT soldier, score FROM soldiers "
    ...     "ORDER BY score DESC LIMIT 2 WITH TYPICAL 3",
    ...     {"soldiers": soldier_table()},
    ...     p_tau=0.0,
    ... )
    >>> [row.score for row in result.answers]
    [118.0, 183.0, 235.0]
    """
    # Imported lazily: the api package builds on this module's Catalog.
    from repro.api.session import Session
    from repro.api.spec import QuerySpec

    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(catalog, Session):
        session = catalog
    else:
        session = Session(catalog)
    table = session.catalog.resolve(query.table)

    if query.where is not None:
        predicate = query.where
        keep = [t.tid for t in table if bool(predicate.evaluate(t))]
        table = table.subset(keep)

    score_expr = query.score_expression()

    def scorer(t):  # scoring function over the (filtered) table
        value = score_expr.evaluate(t)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise QueryPlanError(
                f"ORDER BY expression produced non-numeric {value!r} "
                f"for tuple {t.tid!r}"
            )
        return float(value)

    from repro.api.spec import DEFAULT_MC_CONFIDENCE

    spec = QuerySpec(
        table=table,
        scorer=scorer,
        k=query.limit,
        semantics="typical",
        c=query.typical or DEFAULT_TYPICAL,
        p_tau=p_tau,
        max_lines=max_lines,
        algorithm=algorithm or query.algorithm or "dp",
        epsilon=epsilon,
        confidence=(
            DEFAULT_MC_CONFIDENCE if confidence is None else confidence
        ),
        samples=samples,
        seed=seed,
    )
    # One planned batch serves the distribution, the typical answers
    # (which clamp c and tolerate the empty distribution left when
    # fewer than LIMIT tuples can co-exist) and the U-Topk comparison:
    # the session's planner shares the scored prefix and the computed
    # PMF across all three.
    batch = [spec, spec]
    ops: list = ["distribution", "execute"]
    if include_u_topk:
        batch.append(spec.with_(semantics="u_topk"))
        ops.append("execute")
    results = session.execute_many(batch, ops=ops)
    pmf, typical = results[0], results[1]

    answers = tuple(
        AnswerRow(
            score=answer.score,
            probability=answer.prob,
            tuples=_project(query, table, answer.vector),
        )
        for answer in typical.answers
    )
    best = results[2] if include_u_topk else None
    return QueryResult(query, pmf, typical, answers, best)


def _project(
    query: TopKQuery, table: UncertainTable, vector: tuple | None
) -> tuple[Mapping[str, Any], ...]:
    """Project a vector's tuples through the SELECT list."""
    if vector is None:
        return ()
    rows = []
    for tid in vector:
        t = table[tid]
        if query.select_star or not query.select:
            rows.append(dict(t.attributes))
        else:
            rows.append(
                {
                    item.output_name: item.expression.evaluate(t)
                    for item in query.select
                }
            )
    return tuple(rows)
