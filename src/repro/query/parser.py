"""Recursive-descent parser for the SQL-like query language.

Grammar (informal)::

    query      := SELECT select_list FROM ident [WHERE expr]
                  ORDER BY expr [ASC | DESC] LIMIT int
                  [WITH TYPICAL int] [USING ident]
    select_list := '*' | item (',' item)*
    item        := expr [AS ident] | expr ident
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | comparison
    comparison  := additive ((= | != | <> | < | <= | > | >=) additive)?
    additive    := multiplicative ((+ | -) multiplicative)*
    multiplicative := unary ((* | / | %) unary)*
    unary       := - unary | primary
    primary     := NUMBER | STRING | TRUE | FALSE | NULL
                 | ident '(' args ')' | ident | '(' expr ')'
"""

from __future__ import annotations

from repro.exceptions import QuerySyntaxError
from repro.query.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    SelectItem,
    TopKQuery,
    UnaryOp,
)
from repro.query.tokens import Token, TokenType, tokenize

_COMPARISONS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- cursor helpers -------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.END:
            self.index += 1
        return token

    def accept_keyword(self, *keywords: str) -> Token | None:
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value in keywords:
            return self.advance()
        return None

    def expect_keyword(self, keyword: str) -> Token:
        token = self.accept_keyword(keyword)
        if token is None:
            raise self.error(f"expected {keyword}")
        return token

    def accept_operator(self, *ops: str) -> Token | None:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self.advance()
        return None

    def accept_punct(self, ch: str) -> Token | None:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value == ch:
            return self.advance()
        return None

    def expect_punct(self, ch: str) -> Token:
        token = self.accept_punct(ch)
        if token is None:
            raise self.error(f"expected {ch!r}")
        return token

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise self.error("expected an identifier")
        self.advance()
        return str(token.value)

    def error(self, message: str) -> QuerySyntaxError:
        token = self.peek()
        found = (
            "end of input" if token.type is TokenType.END else repr(token.value)
        )
        return QuerySyntaxError(
            f"{message}, found {found} at position {token.position}"
        )

    # -- expressions ----------------------------------------------------
    def parse_expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        node = self._and_expr()
        while self.accept_keyword("OR"):
            node = BinaryOp("OR", node, self._and_expr())
        return node

    def _and_expr(self) -> Expression:
        node = self._not_expr()
        while self.accept_keyword("AND"):
            node = BinaryOp("AND", node, self._not_expr())
        return node

    def _not_expr(self) -> Expression:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        node = self._additive()
        token = self.accept_operator(*_COMPARISONS)
        if token:
            node = BinaryOp(str(token.value), node, self._additive())
        return node

    def _additive(self) -> Expression:
        node = self._multiplicative()
        while True:
            token = self.accept_operator("+", "-")
            if not token:
                return node
            node = BinaryOp(str(token.value), node, self._multiplicative())

    def _multiplicative(self) -> Expression:
        node = self._unary()
        while True:
            token = self.accept_operator("*", "/", "%")
            if not token:
                return node
            node = BinaryOp(str(token.value), node, self._unary())

    def _unary(self) -> Expression:
        if self.accept_operator("-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.KEYWORD and token.value in (
            "TRUE",
            "FALSE",
            "NULL",
        ):
            self.advance()
            return Literal(
                {"TRUE": True, "FALSE": False, "NULL": None}[token.value]
            )
        if token.type is TokenType.IDENT:
            self.advance()
            name = str(token.value)
            if self.accept_punct("("):
                args: list[Expression] = []
                if not self.accept_punct(")"):
                    args.append(self.parse_expression())
                    while self.accept_punct(","):
                        args.append(self.parse_expression())
                    self.expect_punct(")")
                return FunctionCall(name.upper(), tuple(args))
            return ColumnRef(name)
        if self.accept_punct("("):
            node = self.parse_expression()
            self.expect_punct(")")
            return node
        raise self.error("expected an expression")

    # -- the query ------------------------------------------------------
    def parse_query(self) -> TopKQuery:
        self.expect_keyword("SELECT")
        select: list[SelectItem] = []
        select_star = False
        if self.accept_operator("*"):
            select_star = True
        else:
            select.append(self._select_item())
            while self.accept_punct(","):
                select.append(self._select_item())
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        self.expect_keyword("ORDER")
        self.expect_keyword("BY")
        order_by = self.parse_expression()
        descending = True
        if self.accept_keyword("ASC"):
            descending = False
        elif self.accept_keyword("DESC"):
            descending = True
        self.expect_keyword("LIMIT")
        limit_token = self.peek()
        if limit_token.type is not TokenType.NUMBER or not isinstance(
            limit_token.value, int
        ):
            raise self.error("LIMIT expects an integer")
        self.advance()
        limit = int(limit_token.value)
        if limit < 1:
            raise QuerySyntaxError(f"LIMIT must be >= 1, got {limit}")
        typical = None
        if self.accept_keyword("WITH"):
            self.expect_keyword("TYPICAL")
            c_token = self.peek()
            if c_token.type is not TokenType.NUMBER or not isinstance(
                c_token.value, int
            ):
                raise self.error("WITH TYPICAL expects an integer")
            self.advance()
            typical = int(c_token.value)
            if typical < 1:
                raise QuerySyntaxError(
                    f"WITH TYPICAL must be >= 1, got {typical}"
                )
        algorithm = None
        if self.accept_keyword("USING"):
            algorithm = self.expect_ident().lower()
        if self.peek().type is not TokenType.END:
            raise self.error("unexpected trailing input")

        # An ORDER BY alias refers back to its SELECT expression.
        if isinstance(order_by, ColumnRef):
            for item in select:
                if item.alias == order_by.name:
                    order_by = item.expression
                    break
        return TopKQuery(
            select=tuple(select),
            table=table,
            where=where,
            order_by=order_by,
            descending=descending,
            limit=limit,
            typical=typical,
            algorithm=algorithm,
            select_star=select_star,
        )

    def _select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.expect_ident()
        return SelectItem(expression, alias)


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression.

    >>> str(parse_expression("speed_limit / (length / delay)"))
    '(speed_limit / (length / delay))'
    """
    parser = _Parser(text)
    node = parser.parse_expression()
    if parser.peek().type is not TokenType.END:
        raise parser.error("unexpected trailing input")
    return node


def parse_query(text: str) -> TopKQuery:
    """Parse a full top-k query.

    >>> q = parse_query(
    ...     "SELECT segment_id, speed_limit / (length / delay) "
    ...     "AS congestion_score FROM area "
    ...     "ORDER BY congestion_score DESC LIMIT 5"
    ... )
    >>> q.table, q.limit
    ('area', 5)
    """
    return _Parser(text).parse_query()
