"""Expression and query AST for the SQL-like layer.

Expression nodes evaluate against an
:class:`~repro.uncertain.model.UncertainTuple` (attribute references
resolve through the tuple's mapping).  Evaluation is strict about
types: arithmetic on non-numbers and comparisons across incompatible
types raise :class:`~repro.exceptions.QueryPlanError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import QueryPlanError
from repro.uncertain.model import UncertainTuple

_NUMERIC = (int, float)


def _require_number(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, _NUMERIC):
        raise QueryPlanError(f"{what} requires a number, got {value!r}")
    return value


class Expression:
    """Base class for expression nodes."""

    def evaluate(self, row: UncertainTuple) -> Any:
        """Evaluate against one tuple."""
        raise NotImplementedError

    def column_names(self) -> set[str]:
        """All attribute names this expression references."""
        return set()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: Any

    def evaluate(self, row: UncertainTuple) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a tuple attribute by name."""

    name: str

    def evaluate(self, row: UncertainTuple) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise QueryPlanError(
                f"unknown column {self.name!r} (tuple {row.tid!r})"
            ) from None

    def column_names(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary minus or NOT."""

    op: str
    operand: Expression

    def evaluate(self, row: UncertainTuple) -> Any:
        value = self.operand.evaluate(row)
        if self.op == "-":
            return -_require_number(value, "unary '-'")
        if self.op == "NOT":
            return not bool(value)
        raise QueryPlanError(f"unknown unary operator {self.op!r}")

    def column_names(self) -> set[str]:
        return self.operand.column_names()

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison, AND/OR."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: UncertainTuple) -> Any:
        op = self.op
        if op == "AND":
            return bool(self.left.evaluate(row)) and bool(
                self.right.evaluate(row)
            )
        if op == "OR":
            return bool(self.left.evaluate(row)) or bool(
                self.right.evaluate(row)
            )
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if op in ("+", "-", "*", "/", "%"):
            a = _require_number(lhs, f"operator {op!r}")
            b = _require_number(rhs, f"operator {op!r}")
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                if b == 0:
                    raise QueryPlanError("division by zero")
                return a / b
            if b == 0:
                raise QueryPlanError("modulo by zero")
            return a % b
        if op in ("=", "!=", "<>", "<", "<=", ">", ">="):
            return self._compare(op, lhs, rhs)
        raise QueryPlanError(f"unknown operator {op!r}")

    @staticmethod
    def _compare(op: str, lhs: Any, rhs: Any) -> bool:
        if op == "=":
            return lhs == rhs
        if op in ("!=", "<>"):
            return lhs != rhs
        both_numbers = (
            isinstance(lhs, _NUMERIC)
            and isinstance(rhs, _NUMERIC)
            and not isinstance(lhs, bool)
            and not isinstance(rhs, bool)
        )
        both_strings = isinstance(lhs, str) and isinstance(rhs, str)
        if not (both_numbers or both_strings):
            raise QueryPlanError(
                f"cannot order {lhs!r} against {rhs!r} with {op!r}"
            )
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        return lhs >= rhs

    def column_names(self) -> set[str]:
        return self.left.column_names() | self.right.column_names()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


#: Built-in scalar functions, by upper-cased name: (arity, callable).
FUNCTIONS: dict[str, tuple[int, Callable[..., float]]] = {
    "ABS": (1, abs),
    "SQRT": (1, math.sqrt),
    "LN": (1, math.log),
    "LOG10": (1, math.log10),
    "EXP": (1, math.exp),
    "ROUND": (2, lambda x, d: round(x, int(d))),
    "POW": (2, math.pow),
    "LEAST": (2, min),
    "GREATEST": (2, max),
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Call to a built-in scalar function."""

    name: str
    args: tuple[Expression, ...]

    def evaluate(self, row: UncertainTuple) -> Any:
        try:
            arity, fn = FUNCTIONS[self.name]
        except KeyError:
            raise QueryPlanError(f"unknown function {self.name!r}") from None
        if len(self.args) != arity:
            raise QueryPlanError(
                f"{self.name} expects {arity} argument(s), "
                f"got {len(self.args)}"
            )
        values = [
            _require_number(arg.evaluate(row), f"function {self.name}")
            for arg in self.args
        ]
        try:
            return fn(*values)
        except ValueError as exc:
            raise QueryPlanError(f"{self.name}: {exc}") from exc

    def column_names(self) -> set[str]:
        names: set[str] = set()
        for arg in self.args:
            names |= arg.column_names()
        return names

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class SelectItem:
    """One projection: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None

    @property
    def output_name(self) -> str:
        """Column name in the output row."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return str(self.expression)


@dataclass(frozen=True)
class TopKQuery:
    """A parsed top-k query.

    :ivar select: projection list (empty means ``SELECT *``).
    :ivar table: FROM table name.
    :ivar where: optional filter predicate.
    :ivar order_by: the scoring expression (an ORDER BY alias resolves
        to its SELECT expression during parsing).
    :ivar descending: ORDER BY direction; the paper's semantics rank by
        descending score, so ascending queries negate the score.
    :ivar limit: the k of the top-k.
    :ivar typical: c of ``WITH TYPICAL c`` (None when absent).
    :ivar algorithm: ``USING <algo>`` override (None = default "dp").
    """

    select: tuple[SelectItem, ...]
    table: str
    where: Expression | None
    order_by: Expression
    descending: bool
    limit: int
    typical: int | None = None
    algorithm: str | None = None
    select_star: bool = field(default=False)

    def score_expression(self) -> Expression:
        """The effective scoring expression (negated when ascending)."""
        if self.descending:
            return self.order_by
        return UnaryOp("-", self.order_by)
