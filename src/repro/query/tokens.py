"""Tokenizer for the SQL-like query language.

Produces a flat token stream; the parser does the rest.  Keywords are
case-insensitive; identifiers keep their case.  Comments (``-- ...``)
run to end of line.
"""

from __future__ import annotations

import enum
from typing import Iterator, NamedTuple

from repro.exceptions import QuerySyntaxError

#: Reserved words, upper-cased.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "ORDER", "BY", "LIMIT", "AS",
        "ASC", "DESC", "AND", "OR", "NOT", "TRUE", "FALSE", "NULL",
        "WITH", "TYPICAL", "USING",
    }
)


class TokenType(enum.Enum):
    """Lexical categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


class Token(NamedTuple):
    """One lexical token.

    :ivar type: the :class:`TokenType`.
    :ivar value: keyword (upper-cased), identifier, literal value or
        operator text.
    :ivar position: character offset in the source (for errors).
    """

    type: TokenType
    value: object
    position: int


#: Multi-character operators first so they win over single characters.
_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`QuerySyntaxError` on garbage.

    >>> [t.value for t in tokenize("SELECT x FROM t")][:3]
    ['SELECT', 'x', 'FROM']
    """
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < n and text[i] in "+-":
                        i += 1
                else:
                    break
            literal = text[start:i]
            try:
                value: object = (
                    float(literal)
                    if seen_dot or seen_exp
                    else int(literal)
                )
            except ValueError:
                raise QuerySyntaxError(
                    f"bad numeric literal {literal!r} at {start}"
                ) from None
            yield Token(TokenType.NUMBER, value, start)
            continue
        if ch == "'":
            start = i
            i += 1
            chars = []
            while i < n:
                if text[i] == "'":
                    if text[i : i + 2] == "''":  # escaped quote
                        chars.append("'")
                        i += 2
                        continue
                    break
                chars.append(text[i])
                i += 1
            if i >= n:
                raise QuerySyntaxError(f"unterminated string at {start}")
            i += 1
            yield Token(TokenType.STRING, "".join(chars), start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, start)
            else:
                yield Token(TokenType.IDENT, word, start)
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                yield Token(TokenType.OPERATOR, op, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            yield Token(TokenType.PUNCT, ch, i)
            i += 1
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r} at {i}")
    yield Token(TokenType.END, None, n)
