"""A small SQL-like top-k query layer over uncertain tables.

The paper's CarTel experiment issues::

    SELECT segment_id,
           speed_limit / (length / delay) AS congestion_score
    FROM area
    ORDER BY congestion_score DESC
    LIMIT k

This subpackage provides just enough of SQL to run that query class:
``SELECT`` projections with aliases, arithmetic/boolean expressions,
``WHERE`` filters, ``ORDER BY <expr> [DESC] LIMIT k`` ranking, plus the
uncertainty-specific clauses ``WITH TYPICAL c`` and ``USING <algo>``.
Execution produces the score distribution and typical answers of the
core library.

* :mod:`repro.query.tokens` — tokenizer.
* :mod:`repro.query.ast_nodes` — expression and query AST.
* :mod:`repro.query.parser` — recursive-descent parser.
* :mod:`repro.query.engine` — catalog + executor.
"""

from repro.query.ast_nodes import TopKQuery
from repro.query.engine import Catalog, QueryResult, execute_query
from repro.query.parser import parse_expression, parse_query
from repro.query.tokens import Token, TokenType, tokenize

__all__ = [
    "TopKQuery",
    "Catalog",
    "QueryResult",
    "execute_query",
    "parse_expression",
    "parse_query",
    "Token",
    "TokenType",
    "tokenize",
]
