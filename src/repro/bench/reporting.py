"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures; the harness prints the
same series as aligned text tables (and, where a distribution is the
result, as ASCII histograms via :mod:`repro.stats.histogram`).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    floatfmt: str = ".4g",
) -> str:
    """Render dict rows as an aligned text table.

    :param rows: sequence of homogeneous mappings.
    :param columns: column order; defaults to the first row's keys.
    :param floatfmt: format spec applied to float values.
    """
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    rule = "  ".join("-" * widths[i] for i in range(len(cols)))
    body = "\n".join(
        "  ".join(r[i].ljust(widths[i]) for i in range(len(cols)))
        for r in rendered
    )
    return f"{header}\n{rule}\n{body}"


def print_series(
    title: str,
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
) -> None:
    """Print one experiment's series under a title banner."""
    banner = "=" * max(len(title), 8)
    print(f"\n{banner}\n{title}\n{banner}")
    print(format_table(rows, columns=columns))
