"""The committed performance baseline (``repro bench --json``).

One fixed set of named workloads covering the three performance
pillars — the independent-tuples dynamic program, the shared-prefix
mutual-exclusion path (with its per-ending ablation twin for the
trajectory), and the delta-maintained sliding window (with its
from-scratch twin) — timed with
:func:`repro.bench.runner.time_callable` and written to
``BENCH_core.json`` at the repository root.  The committed file gives
future changes a trajectory to compare against; the ``tiny_*``
workloads double as the CI perf-smoke set (``repro bench --tiny
--check BENCH_core.json`` fails on crash or on a >3x slowdown against
the committed numbers).

Workload sizes are fixed and seeded, so two runs on the same machine
are comparable; absolute numbers across machines are not, which is why
every baseline also times a fixed *calibration* workload in the same
run and the regression guard compares calibration-normalized ratios —
a uniformly slower CI runner cancels out, and only genuine relative
slowdowns (beyond the generous factor) trip the guard.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Callable

import numpy as np

from repro.bench.runner import time_callable
from repro.bench.workloads import cartel_workload, congestion_scorer
from repro.core.distribution import prepare_scored_prefix
from repro.core.dp import dp_distribution, dp_distribution_per_ending
from repro.stream.window import SlidingWindowTopK

#: Default output path, relative to the working directory.
DEFAULT_BASELINE_PATH = "BENCH_core.json"

#: Regression-guard threshold: fail when a workload runs this many
#: times slower than the committed baseline.
DEFAULT_GUARD_FACTOR = 3.0

#: The paper's experimental probability threshold.
P_TAU = 1e-3


def _independent_case(tuples: int, k: int) -> Callable[[], object]:
    from repro.bench.workloads import synthetic_workload

    table = synthetic_workload(tuples=tuples, me_fraction=0.0)
    prefix = prepare_scored_prefix(table, "score", k, p_tau=P_TAU)
    return lambda: dp_distribution(prefix, k)


def _me_case(
    segments: int, k: int, per_ending: bool
) -> Callable[[], object]:
    table = cartel_workload(segments=segments)
    prefix = prepare_scored_prefix(table, congestion_scorer(), k, p_tau=P_TAU)
    algorithm = dp_distribution_per_ending if per_ending else dp_distribution
    return lambda: algorithm(prefix, k)


def _streaming_case(
    window: int, k: int, slides: int, incremental: bool
) -> Callable[[], object]:
    def run() -> float:
        win = SlidingWindowTopK(window=window, k=k, incremental=incremental)
        rng = np.random.default_rng(11)
        for _ in range(window):
            win.append(
                {"score": float(rng.uniform(0, 1000))},
                probability=float(rng.uniform(0.2, 1.0)),
            )
        total = 0.0
        for _ in range(slides):
            win.append(
                {"score": float(rng.uniform(0, 1000))},
                probability=float(rng.uniform(0.2, 1.0)),
            )
            total += win.distribution().expectation()
        return total

    return run


def workload_factories(tiny_only: bool = False) -> dict[str, Callable]:
    """Named workload constructors (each returns a timed callable).

    ``tiny_*`` workloads are sized for the CI perf-smoke step; the full
    set (default) additionally covers paper-scale configurations.
    """
    tiny: dict[str, Callable[[], Callable]] = {
        "tiny_independent_dp_n80_k5": lambda: _independent_case(80, 5),
        "tiny_me_shared_prefix_cartel40_k5": lambda: _me_case(40, 5, False),
        "tiny_streaming_delta_w60_k3": lambda: _streaming_case(
            60, 3, 30, True
        ),
    }
    if tiny_only:
        return tiny
    full: dict[str, Callable[[], Callable]] = {
        "independent_dp_n300_k10": lambda: _independent_case(300, 10),
        "me_shared_prefix_cartel120_k10": lambda: _me_case(120, 10, False),
        "me_per_ending_cartel120_k10": lambda: _me_case(120, 10, True),
        "streaming_delta_w500_k5": lambda: _streaming_case(
            500, 5, 100, True
        ),
        "streaming_scratch_w500_k5": lambda: _streaming_case(
            500, 5, 100, False
        ),
    }
    return {**tiny, **full}


def _calibration_factory() -> Callable[[], object]:
    """The fixed machine-speed probe timed alongside every baseline.

    A small independent-tuples dynamic program: deterministic, numpy-
    bound like the guarded workloads, and fast enough to repeat.
    """
    return _independent_case(60, 4)


def run_baseline(
    *, tiny_only: bool = False, repeats: int = 3
) -> dict[str, object]:
    """Time every workload; return the machine-readable baseline."""
    seconds: dict[str, float] = {}
    for name, factory in workload_factories(tiny_only).items():
        case = factory()  # setup (dataset + prefix) outside the timer
        seconds[name] = time_callable(case, repeats=repeats).seconds
    calibration = time_callable(
        _calibration_factory(), repeats=max(3, repeats)
    ).seconds
    return {
        "schema": 1,
        "meta": {
            "repeats": repeats,
            "tiny_only": tiny_only,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "calibration": {"seconds": calibration},
        "workloads": {
            name: {"seconds": value} for name, value in seconds.items()
        },
    }


def write_baseline(data: dict, path: str | Path) -> None:
    """Write a baseline dict as pretty JSON."""
    Path(path).write_text(json.dumps(data, indent=2) + "\n")


def read_baseline(path: str | Path) -> dict:
    """Read a committed baseline file."""
    return json.loads(Path(path).read_text())


def _calibration_scale(current: dict, committed: dict) -> float:
    """How much slower the current machine is than the committed one.

    The ratio of the two runs' calibration probes; 1.0 when either
    baseline lacks a calibration entry (pre-calibration files fall
    back to absolute comparison).
    """
    now = float(current.get("calibration", {}).get("seconds", 0.0))
    before = float(committed.get("calibration", {}).get("seconds", 0.0))
    if now > 0.0 and before > 0.0:
        return now / before
    return 1.0


def check_against_baseline(
    current: dict,
    committed: dict,
    *,
    factor: float = DEFAULT_GUARD_FACTOR,
) -> list[str]:
    """Regression-guard: workloads slower than ``factor`` x committed.

    Workload times are normalized by the in-run calibration probe
    before comparing, so a uniformly slower machine does not trip the
    guard.  Only workloads present in both baselines are compared;
    returns human-readable violation lines (empty = pass).
    """
    violations: list[str] = []
    scale = _calibration_scale(current, committed)
    committed_workloads = committed.get("workloads", {})
    for name, entry in current.get("workloads", {}).items():
        reference = committed_workloads.get(name)
        if reference is None:
            continue
        now = float(entry["seconds"])
        before = float(reference["seconds"]) * scale
        if before > 0.0 and now > factor * before:
            violations.append(
                f"{name}: {now:.4f}s vs baseline {before:.4f}s "
                f"(machine-normalized, x{scale:.2f}; "
                f"{now / before:.1f}x > {factor:.1f}x guard)"
            )
    return violations
