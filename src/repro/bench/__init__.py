"""Experiment harness regenerating the paper's evaluation.

Each ``figXX_*`` function in :mod:`repro.bench.figures` reproduces one
figure of Section 5 (plus the Figure 2/3 motivating example) and
returns structured rows; :mod:`repro.bench.reporting` renders them the
way the paper reports them.  The ``benchmarks/`` pytest-benchmark
suite wraps these functions; they can also be run directly::

    python -m repro.bench.figures          # run everything
    python -m repro.bench.figures fig10    # one experiment
"""

from repro.bench.reporting import format_table, print_series
from repro.bench.runner import time_callable
from repro.bench.workloads import (
    cartel_workload,
    soldier_workload,
    synthetic_workload,
)

__all__ = [
    "format_table",
    "print_series",
    "time_callable",
    "cartel_workload",
    "soldier_workload",
    "synthetic_workload",
]
