"""Canonical workloads for the experiments.

One constructor per dataset family, with the seeds fixed so every
benchmark run (and EXPERIMENTS.md) refers to the same data.
"""

from __future__ import annotations

from repro.datasets.cartel import CartelConfig, generate_cartel_area
from repro.datasets.soldier import soldier_table
from repro.datasets.synthetic import (
    MEGroupLayout,
    SyntheticConfig,
    generate_synthetic_table,
)
from repro.uncertain.scoring import Scorer, expression_scorer
from repro.uncertain.table import UncertainTable

#: Fixed seeds for the three CarTel "random areas" of Figure 8.
AREA_SEEDS = (11, 23, 47)

#: The paper's congestion score, as a scoring function.
CONGESTION_SCORER_SQL = "speed_limit / (length / delay)"


def congestion_scorer() -> Scorer:
    """Scoring function of the Section-5.2 CarTel query."""
    return expression_scorer(CONGESTION_SCORER_SQL)


def soldier_workload() -> UncertainTable:
    """The Figure-1 toy table."""
    return soldier_table()


def cartel_workload(
    *,
    seed: int = AREA_SEEDS[0],
    segments: int = 120,
    me_fraction: float = 0.75,
    bins: int = 4,
) -> UncertainTable:
    """A simulated CarTel area.

    :param me_fraction: fraction of segments with multiple
        measurements (those become ME groups) — the Figure-11 knob.
    """
    config = CartelConfig(
        segments=segments,
        multi_measurement_fraction=me_fraction,
        bins=bins,
    )
    return generate_cartel_area(config=config, seed=seed)


def synthetic_workload(
    *,
    correlation: float = 0.0,
    score_std: float = 60.0,
    tuples: int = 300,
    me_sizes: tuple[int, int] = (2, 3),
    me_gaps: tuple[int, int] = (1, 8),
    me_fraction: float = 0.5,
    seed: int = 97,
) -> UncertainTable:
    """A Section-5.4 synthetic table.

    Defaults match the Figure-13(a) baseline (ρ = 0, σ = 60, ME sizes
    2–3, gaps 1–8); Figures 14/15/16 change one knob each.
    """
    layout = (
        MEGroupLayout(
            size_range=me_sizes, gap_range=me_gaps, fraction=me_fraction
        )
        if me_fraction > 0.0
        else None
    )
    config = SyntheticConfig(
        tuples=tuples,
        score_std=score_std,
        correlation=correlation,
        me_layout=layout,
    )
    return generate_synthetic_table(config, seed=seed)
