"""Timing helpers for the experiment harness.

pytest-benchmark owns the statistically careful measurements in
``benchmarks/``; this module provides the lightweight wall-clock
timing used when the figure functions run standalone (the paper
reports single execution times per configuration).
"""

from __future__ import annotations

import time
from typing import Any, Callable, NamedTuple


class TimedResult(NamedTuple):
    """Result + wall-clock seconds of a timed call.

    :ivar value: the callable's return value (from the last repeat).
    :ivar seconds: best-of-``repeats`` wall-clock duration.
    """

    value: Any
    seconds: float


def time_callable(
    fn: Callable[[], Any], *, repeats: int = 1
) -> TimedResult:
    """Run ``fn`` ``repeats`` times; report the fastest duration.

    :param repeats: >= 1; the minimum is the conventional robust
        estimator for CPU-bound work.
    """
    best = float("inf")
    value: Any = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return TimedResult(value, best)
