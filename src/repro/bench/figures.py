"""Per-figure experiment implementations (Section 5 + Figures 2/3).

Every function regenerates one figure's series and returns them as
plain dict rows; run the module as a script to print them all::

    python -m repro.bench.figures            # all experiments
    python -m repro.bench.figures fig10 fig13

Absolute runtimes differ from the paper's 2009 testbed; the
reproduction targets the *shapes*: who wins, growth rates, direction
of distribution shifts.  EXPERIMENTS.md records paper-vs-measured for
each figure.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Mapping, Sequence

from repro.bench.reporting import print_series
from repro.bench.runner import time_callable
from repro.bench.workloads import (
    AREA_SEEDS,
    cartel_workload,
    congestion_scorer,
    soldier_workload,
    synthetic_workload,
)
from repro.core.distribution import (
    prepare_scored_prefix,
    top_k_score_distribution,
)
from repro.core.dp import dp_distribution, dp_distribution_without_lead_regions
from repro.core.k_combo import k_combo_distribution
from repro.core.scan_depth import scan_depth
from repro.core.state_expansion import state_expansion_distribution
from repro.semantics.answers import typicality_report
from repro.stats.metrics import wasserstein_distance
from repro.uncertain.scoring import ScoredTable, attribute_scorer
from repro.uncertain.worlds import enumerate_worlds, top_k_vectors_of_world

Row = Mapping[str, Any]

#: p_tau of the paper's performance experiments (Section 5.3).
P_TAU = 1e-3


# ----------------------------------------------------------------------
# Motivating example (Figures 2 and 3)
# ----------------------------------------------------------------------
def fig02_possible_worlds() -> list[Row]:
    """Figure 2: the 18 possible worlds of the toy table with top-2."""
    table = soldier_workload()
    scored = ScoredTable.from_table(table, attribute_scorer("score"))
    rows: list[Row] = []
    for index, world in enumerate(
        sorted(enumerate_worlds(table), key=lambda w: -w.probability), 1
    ):
        vectors = top_k_vectors_of_world(scored, world.tids, 2)
        rows.append(
            {
                "world": f"W{index}",
                "tuples": ",".join(sorted(world.tids)),
                "prob": world.probability,
                "top2": ",".join(vectors[0]) if vectors else "(short)",
            }
        )
    return rows


def fig03_toy_distribution() -> list[Row]:
    """Figure 3: top-2 score distribution of the toy table.

    Paper facts: U-Top2 = <T2,T6> (score 118, prob 0.2); expected
    score 164.1; Pr(score > U-Topk) = 0.76; Pr(235) = 0.12.
    """
    report = typicality_report(
        soldier_workload(), "score", 2, 3, p_tau=0.0
    )
    rows: list[Row] = [
        {
            "score": line.score,
            "prob": line.prob,
            "vector": ",".join(line.vector or ()),
        }
        for line in report.pmf
    ]
    assert report.u_topk is not None
    rows.append(
        {
            "score": report.u_topk.total_score,
            "prob": report.u_topk.probability,
            "vector": "U-Topk=" + ",".join(report.u_topk.vector),
        }
    )
    return rows


# ----------------------------------------------------------------------
# Real-world (simulated CarTel) experiments: Figures 8-12
# ----------------------------------------------------------------------
def fig08_cartel_distribution() -> list[Row]:
    """Figure 8: congestion-score distribution of top-k roads in three
    areas; U-Topk sits atypically, 3-Typical spans the distribution."""
    rows: list[Row] = []
    for (seed, k) in zip(AREA_SEEDS, (5, 5, 10)):
        table = cartel_workload(seed=seed)
        report = typicality_report(table, congestion_scorer(), k, 3)
        pmf = report.pmf
        rows.append(
            {
                "area": f"seed={seed}",
                "k": k,
                "lines": len(pmf),
                "E[S]": pmf.expectation(),
                "std": pmf.std(),
                "u_topk_score": (
                    report.u_topk.total_score if report.u_topk else float("nan")
                ),
                "u_topk_pctl": report.u_topk_percentile,
                "typical": "/".join(
                    f"{a.score:.0f}" for a in report.typical.answers
                ),
                "P(S>uTopk)": report.prob_above_u_topk,
            }
        )
    return rows


def fig09_scan_depth(
    ks: Sequence[int] = (10, 20, 30, 40, 50, 60),
) -> list[Row]:
    """Figure 9: Theorem-2 scan depth n grows roughly linearly in k."""
    table = cartel_workload(seed=AREA_SEEDS[0], segments=400)
    scored = ScoredTable.from_table(table, congestion_scorer())
    return [
        {"k": k, "scan_depth": scan_depth(scored, k, P_TAU)} for k in ks
    ]


def fig10_algorithms(
    ks_main: Sequence[int] = (5, 10, 20, 30, 40),
    ks_state_expansion: Sequence[int] = (1, 2, 3, 4, 5, 6),
    ks_k_combo: Sequence[int] = (1, 2, 3),
) -> list[Row]:
    """Figure 10: execution time vs k per algorithm.

    The baselines blow up exponentially (the paper's point), so their
    sweeps stop early — on 2009 hardware the paper capped them near
    k = 20 at ~10^3 seconds; here the Python constant factor moves the
    practical cap lower without changing the growth shape.

    StateExpansion runs with a near-zero pruning threshold: on this
    workload individual top-k vectors carry ~1e-4 probability, so the
    paper's p_tau = 1e-3 would prune its output (and its state space)
    to nothing, hiding the exponential growth the figure demonstrates.
    """
    table = cartel_workload(seed=AREA_SEEDS[0], segments=200)
    scorer = congestion_scorer()
    rows: list[Row] = []
    for k in ks_main:
        prefix = prepare_scored_prefix(table, scorer, k, p_tau=P_TAU)
        timed = time_callable(lambda: dp_distribution(prefix, k))
        rows.append(
            {
                "algorithm": "main (dp)",
                "k": k,
                "scan_depth": len(prefix),
                "seconds": timed.seconds,
            }
        )
    for k in ks_state_expansion:
        prefix = prepare_scored_prefix(table, scorer, k, p_tau=P_TAU)
        timed = time_callable(
            lambda: state_expansion_distribution(prefix, k, p_tau=1e-6)
        )
        rows.append(
            {
                "algorithm": "StateExpansion",
                "k": k,
                "scan_depth": len(prefix),
                "seconds": timed.seconds,
            }
        )
    for k in ks_k_combo:
        prefix = prepare_scored_prefix(table, scorer, k, p_tau=P_TAU)
        timed = time_callable(lambda: k_combo_distribution(prefix, k))
        rows.append(
            {
                "algorithm": "k-Combo",
                "k": k,
                "scan_depth": len(prefix),
                "seconds": timed.seconds,
            }
        )
    return rows


def fig11_me_portion(
    portions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
    k: int = 10,
) -> list[Row]:
    """Figure 11: runtime grows with the portion of ME tuples."""
    rows: list[Row] = []
    for portion in portions:
        table = cartel_workload(
            seed=AREA_SEEDS[0], segments=200, me_fraction=portion
        )
        prefix = prepare_scored_prefix(
            table, congestion_scorer(), k, p_tau=P_TAU
        )
        timed = time_callable(lambda: dp_distribution(prefix, k))
        rows.append(
            {
                "me_portion_config": portion,
                "me_tuple_fraction": table.me_tuple_fraction(),
                "scan_depth": len(prefix),
                "seconds": timed.seconds,
            }
        )
    return rows


def fig12_coalesce_lines(
    line_budgets: Sequence[int] = (50, 100, 200, 300, 400, 500),
    k: int = 10,
) -> list[Row]:
    """Figure 12: runtime varies linearly with the max-lines budget."""
    table = cartel_workload(seed=AREA_SEEDS[0], segments=200)
    prefix = prepare_scored_prefix(table, congestion_scorer(), k, p_tau=P_TAU)
    rows: list[Row] = []
    for budget in line_budgets:
        timed = time_callable(
            lambda: dp_distribution(prefix, k, max_lines=budget)
        )
        rows.append(
            {
                "max_lines": budget,
                "output_lines": len(timed.value),
                "seconds": timed.seconds,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Synthetic experiments: Figures 13-16
# ----------------------------------------------------------------------
def _synthetic_report_row(label: str, table, k: int = 10) -> Row:
    report = typicality_report(table, "score", k, 3)
    pmf = report.pmf
    return {
        "config": label,
        "E[S]": pmf.expectation(),
        "std": pmf.std(),
        "span90": pmf.span_containing(0.9),
        "u_topk_score": (
            report.u_topk.total_score if report.u_topk else float("nan")
        ),
        "u_topk_pctl": report.u_topk_percentile,
        "typical": "/".join(
            f"{a.score:.0f}" for a in report.typical.answers
        ),
    }


def fig13_correlation(k: int = 10) -> list[Row]:
    """Figure 13: ρ = +0.8 shifts the distribution right, ρ = −0.8
    left, relative to independence; U-Topk is atypical in all three."""
    rows: list[Row] = []
    for rho in (0.0, 0.8, -0.8):
        table = synthetic_workload(correlation=rho)
        rows.append(_synthetic_report_row(f"rho={rho:+.1f}", table, k))
    return rows


def fig14_score_variance(k: int = 10) -> list[Row]:
    """Figure 14: σ 60 → 100 widens the distribution span ~3x."""
    rows: list[Row] = []
    for sigma in (60.0, 100.0):
        table = synthetic_workload(score_std=sigma)
        rows.append(_synthetic_report_row(f"sigma={sigma:.0f}", table, k))
    return rows


def fig15_me_gaps(k: int = 10) -> list[Row]:
    """Figure 15: widening the rank gaps between ME-group members
    (1-8 → 1-40) leaves the distribution essentially unchanged."""
    rows: list[Row] = []
    for gaps in ((1, 8), (1, 40)):
        table = synthetic_workload(me_gaps=gaps)
        rows.append(
            _synthetic_report_row(f"gaps={gaps[0]}-{gaps[1]}", table, k)
        )
    return rows


def fig16_me_sizes(k: int = 10) -> list[Row]:
    """Figure 16: growing ME groups (2-3 → 2-10) widens the
    distribution, shifts it low, and pushes U-Topk to the low end."""
    rows: list[Row] = []
    for sizes in ((2, 3), (2, 10)):
        table = synthetic_workload(me_sizes=sizes)
        rows.append(
            _synthetic_report_row(f"sizes={sizes[0]}-{sizes[1]}", table, k)
        )
    return rows


# ----------------------------------------------------------------------
# Ablations beyond the paper
# ----------------------------------------------------------------------
def ablation_lead_regions(k: int = 10) -> list[Row]:
    """Section-3.3.3 refinement: one DP per lead region vs per tuple."""
    table = cartel_workload(seed=AREA_SEEDS[0], segments=200)
    prefix = prepare_scored_prefix(table, congestion_scorer(), k, p_tau=P_TAU)
    with_regions = time_callable(lambda: dp_distribution(prefix, k))
    without = time_callable(
        lambda: dp_distribution_without_lead_regions(prefix, k)
    )
    error = wasserstein_distance(with_regions.value, without.value)
    return [
        {
            "variant": "lead regions (Section 3.3.3)",
            "seconds": with_regions.seconds,
            "wasserstein_vs_other": error,
        },
        {
            "variant": "per-tuple DPs (Section 3.3.2)",
            "seconds": without.seconds,
            "wasserstein_vs_other": error,
        },
    ]


def ablation_coalescing(
    line_budgets: Sequence[int] = (10, 25, 50, 100, 200, 400),
    k: int = 5,
) -> list[Row]:
    """Accuracy cost of coalescing: Wasserstein error vs budget."""
    table = cartel_workload(seed=AREA_SEEDS[1], segments=80)
    scorer = congestion_scorer()
    exact = top_k_score_distribution(
        table, scorer, k, p_tau=P_TAU, max_lines=100_000
    )
    rows: list[Row] = []
    for budget in line_budgets:
        approx = top_k_score_distribution(
            table, scorer, k, p_tau=P_TAU, max_lines=budget
        )
        rows.append(
            {
                "max_lines": budget,
                "lines": len(approx),
                "wasserstein_error": wasserstein_distance(exact, approx),
                "mass_error": abs(
                    exact.total_mass() - approx.total_mass()
                ),
                "mean_error": abs(
                    exact.expectation() - approx.expectation()
                ),
            }
        )
    return rows


def ablation_scan_depth(
    k: int = 10,
    p_taus: Sequence[float] = (1e-1, 1e-2, 1e-3, 1e-4),
) -> list[Row]:
    """Mass captured vs Theorem-2 threshold: tighter p_tau scans deeper
    and loses less probability mass."""
    table = cartel_workload(seed=AREA_SEEDS[2], segments=120)
    scorer = congestion_scorer()
    full = top_k_score_distribution(table, scorer, k, p_tau=0.0)
    rows: list[Row] = []
    for p_tau in p_taus:
        prefix = prepare_scored_prefix(table, scorer, k, p_tau=p_tau)
        pmf = dp_distribution(prefix, k)
        rows.append(
            {
                "p_tau": p_tau,
                "scan_depth": len(prefix),
                "mass": pmf.total_mass(),
                "mass_lost_vs_full": full.total_mass() - pmf.total_mass(),
            }
        )
    return rows


def ablation_session_cache(k: int = 5, cs: Sequence[int] = (2, 3, 5, 8)) -> list[Row]:
    """Plan-level caching: repeated queries through one Session.

    The paper's end-of-Section-4 observation — one computed score
    distribution serves typical answers at any ``c`` and rival
    semantics for comparison.  Rows time the cold first execution
    against warm re-executions that only change ``c`` or the
    semantics; the speedup is the point of the Session API.
    """
    from repro.api import QuerySpec, Session

    table = cartel_workload(seed=AREA_SEEDS[0], segments=120)
    session = Session()
    spec = QuerySpec(
        table=table, scorer=congestion_scorer(), k=k, p_tau=P_TAU,
        algorithm="dp",
    )
    cold = time_callable(lambda: session.execute(spec))
    rows: list[Row] = [
        {"request": "typical c=3 (cold)", "seconds": cold.seconds,
         "speedup_vs_cold": 1.0},
    ]
    for c in cs:
        warm = time_callable(lambda: session.execute(spec.with_(c=c)))
        rows.append(
            {
                "request": f"typical c={c} (warm)",
                "seconds": warm.seconds,
                "speedup_vs_cold": cold.seconds / max(warm.seconds, 1e-9),
            }
        )
    for semantics in ("u_topk", "global_topk", "expected_ranks"):
        warm = time_callable(
            lambda: session.execute(spec.with_(semantics=semantics))
        )
        rows.append(
            {
                "request": f"{semantics} (warm prefix)",
                "seconds": warm.seconds,
                "speedup_vs_cold": cold.seconds / max(warm.seconds, 1e-9),
            }
        )
    return rows


#: Experiment registry: name -> (title, zero-arg callable).
EXPERIMENTS: dict[str, tuple[str, Callable[[], list[Row]]]] = {
    "fig02": ("Figure 2: possible worlds of the toy table", fig02_possible_worlds),
    "fig03": ("Figure 3: toy top-2 score distribution", fig03_toy_distribution),
    "fig08": ("Figure 8: CarTel-sim score distributions", fig08_cartel_distribution),
    "fig09": ("Figure 9: k vs scan depth", fig09_scan_depth),
    "fig10": ("Figure 10: k vs execution time per algorithm", fig10_algorithms),
    "fig11": ("Figure 11: ME portion vs execution time", fig11_me_portion),
    "fig12": ("Figure 12: max lines vs execution time", fig12_coalesce_lines),
    "fig13": ("Figure 13: score/probability correlation", fig13_correlation),
    "fig14": ("Figure 14: score variance", fig14_score_variance),
    "fig15": ("Figure 15: ME member gaps", fig15_me_gaps),
    "fig16": ("Figure 16: ME group sizes", fig16_me_sizes),
    "ablation_lead_regions": (
        "Ablation: lead-region batching", ablation_lead_regions
    ),
    "ablation_coalescing": (
        "Ablation: coalescing accuracy", ablation_coalescing
    ),
    "ablation_scan_depth": (
        "Ablation: scan depth vs captured mass", ablation_scan_depth
    ),
    "ablation_session_cache": (
        "Ablation: Session plan-level caching", ablation_session_cache
    ),
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: run the named experiments (default: all)."""
    names = list(argv if argv is not None else sys.argv[1:]) or list(
        EXPERIMENTS
    )
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        title, fn = EXPERIMENTS[name]
        print_series(title, fn())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
