"""A CarTel-like road-delay simulator (Section 5.1 substitution).

The paper's real-world dataset — travel-delay measurements from the
CarTel vehicular testbed in greater Boston — is proprietary.  This
module generates data of the same *shape* and applies the paper's own
preprocessing:

* an *area* (a city) holds road segments with lognormal lengths and a
  categorical speed limit;
* each segment receives one or more delay measurements; delays follow
  a gamma distribution whose scale grows with the segment's latent
  congestion level, so the derived congestion scores have the heavy
  right tail visible in Figure 8;
* segments with several measurements are *binned* (equi-width over the
  sample range): each bin becomes one uncertain tuple whose value is
  the mean of its samples and whose probability is the bin's relative
  frequency — bins of one segment are mutually exclusive (one ME group
  per segment), exactly as described in Section 5.2.

The congestion score of the paper is computed by the query layer:
``speed_limit / (length / delay)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable

#: Speed limits (km/h) found on urban/suburban road networks.
DEFAULT_SPEED_LIMITS = (30.0, 40.0, 50.0, 60.0, 80.0, 100.0)


@dataclass(frozen=True)
class CartelConfig:
    """Knobs of the simulated area.

    :ivar segments: number of road segments.
    :ivar measurements_range: inclusive (min, max) measurements per
        segment; segments with one measurement yield a single
        certain-score tuple with probability 1.
    :ivar bins: maximum number of equi-width bins per segment (the ME
        group size cap).
    :ivar length_lognorm: (mean, sigma) of the underlying normal for
        segment length in meters.
    :ivar congestion_shape: gamma shape of the delay distribution.
    :ivar speed_limits: categorical speed-limit choices (km/h).
    :ivar multi_measurement_fraction: fraction of segments that get
        multiple measurements (and hence become ME groups) — the knob
        behind Figure 11's "ME tuple portion".
    """

    segments: int = 120
    measurements_range: tuple[int, int] = (4, 24)
    bins: int = 4
    length_lognorm: tuple[float, float] = (6.2, 0.7)
    congestion_shape: float = 2.0
    speed_limits: Sequence[float] = field(default=DEFAULT_SPEED_LIMITS)
    multi_measurement_fraction: float = 0.75

    def validate(self) -> None:
        """Raise :class:`DatasetError` on inconsistent settings."""
        if self.segments < 1:
            raise DatasetError(f"segments must be >= 1, got {self.segments}")
        low, high = self.measurements_range
        if not 1 <= low <= high:
            raise DatasetError(
                f"bad measurements_range {self.measurements_range!r}"
            )
        if self.bins < 1:
            raise DatasetError(f"bins must be >= 1, got {self.bins}")
        if not 0.0 <= self.multi_measurement_fraction <= 1.0:
            raise DatasetError(
                "multi_measurement_fraction must be within [0, 1], got "
                f"{self.multi_measurement_fraction!r}"
            )


@dataclass(frozen=True)
class RoadSegment:
    """One simulated road segment with its raw delay samples.

    :ivar segment_id: identifier within the area.
    :ivar length: segment length in meters.
    :ivar speed_limit: speed limit in km/h.
    :ivar delays: raw delay measurements in seconds.
    """

    segment_id: int
    length: float
    speed_limit: float
    delays: tuple[float, ...]

    def free_flow_delay(self) -> float:
        """Delay at the speed limit, in seconds."""
        return self.length / (self.speed_limit / 3.6)


def generate_measurements(
    config: CartelConfig,
    rng: np.random.Generator,
) -> list[RoadSegment]:
    """Simulate the raw measurement log of one area."""
    config.validate()
    segments: list[RoadSegment] = []
    low, high = config.measurements_range
    for segment_id in range(config.segments):
        mean, sigma = config.length_lognorm
        length = float(rng.lognormal(mean, sigma))
        speed_limit = float(rng.choice(np.asarray(config.speed_limits)))
        # Latent congestion level: most segments flow freely, a few are
        # badly congested (heavy right tail).
        congestion = float(rng.lognormal(0.3, 0.8))
        free_flow = length / (speed_limit / 3.6)
        if rng.random() < config.multi_measurement_fraction:
            count = int(rng.integers(low, high + 1))
        else:
            count = 1
        delays = free_flow * (
            1.0
            + rng.gamma(config.congestion_shape, congestion / 2.0, size=count)
        )
        segments.append(
            RoadSegment(
                segment_id,
                round(length, 1),
                speed_limit,
                tuple(round(float(d), 2) for d in delays),
            )
        )
    return segments


def bin_delays(
    delays: Sequence[float], bins: int
) -> list[tuple[float, float]]:
    """The paper's binning: equi-width bins over the sample range.

    :returns: ``(bin mean, relative frequency)`` per non-empty bin.
    """
    if not delays:
        raise DatasetError("cannot bin an empty sample list")
    values = np.asarray(delays, dtype=float)
    if len(values) == 1 or bins == 1 or values.min() == values.max():
        return [(float(values.mean()), 1.0)]
    edges = np.linspace(values.min(), values.max(), bins + 1)
    # Right-inclusive last bin so the max sample lands inside.
    indices = np.clip(np.digitize(values, edges[1:-1]), 0, bins - 1)
    out: list[tuple[float, float]] = []
    for b in range(bins):
        mask = indices == b
        count = int(mask.sum())
        if count == 0:
            continue
        out.append((float(values[mask].mean()), count / len(values)))
    return out


def segments_to_table(
    segments: Sequence[RoadSegment],
    *,
    bins: int = 4,
    name: str = "area",
) -> UncertainTable:
    """Bin every segment's measurements into an uncertain table.

    Each non-empty bin becomes one tuple carrying ``segment_id``,
    ``length``, ``speed_limit`` and the bin-mean ``delay``; bins of the
    same segment form one ME group (probabilities sum to 1, so the
    group is saturated — some reading is always correct).
    """
    tuples: list[UncertainTuple] = []
    rules: list[tuple[str, ...]] = []
    for segment in segments:
        members: list[str] = []
        for index, (delay, prob) in enumerate(
            bin_delays(segment.delays, bins)
        ):
            tid = f"s{segment.segment_id}b{index}"
            tuples.append(
                UncertainTuple(
                    tid,
                    {
                        "segment_id": segment.segment_id,
                        "length": segment.length,
                        "speed_limit": segment.speed_limit,
                        "delay": delay,
                    },
                    prob,
                )
            )
            members.append(tid)
        if len(members) > 1:
            rules.append(tuple(members))
    return UncertainTable(tuples, rules, name=name)


def generate_cartel_area(
    *,
    config: CartelConfig | None = None,
    seed: int | np.random.Generator | None = None,
    name: str = "area",
) -> UncertainTable:
    """End-to-end: simulate one area and bin it into an uncertain table.

    >>> table = generate_cartel_area(seed=7)
    >>> len(table) >= 120
    True
    """
    config = config or CartelConfig()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    segments = generate_measurements(config, rng)
    return segments_to_table(segments, bins=config.bins, name=name)


#: The congestion-score expression of the paper's CarTel query.
CONGESTION_SCORE_SQL = "speed_limit / (length / delay)"


def congestion_query(k: int, *, c: int = 3, table: str = "area") -> str:
    """The paper's Section-5.2 query text for the query layer."""
    return (
        f"SELECT segment_id, {CONGESTION_SCORE_SQL} AS congestion_score "
        f"FROM {table} ORDER BY congestion_score DESC LIMIT {k} "
        f"WITH TYPICAL {c}"
    )
