"""The motivating example: soldier physiologic-status monitoring.

Figure 1 of the paper lists seven sensor estimates of how much medical
attention soldiers need; readings for the same soldier issued at the
same time are mutually exclusive (T2 ⊕ T4 ⊕ T7 for soldier 2 and
T3 ⊕ T6 for soldier 3).  The resulting 18 possible worlds and the
top-2 score distribution are Figures 2 and 3.

The exact attribute values below were reconstructed from the paper's
possible-worlds table and the quoted results; they reproduce every
number in Sections 1-2:

* 18 possible worlds with the listed probabilities;
* U-Top2 vector ⟨T2, T6⟩ with probability 0.2 and total score 118;
* expected top-2 score 164.1, Pr(score > 118) = 0.76;
* 3-Typical-Top2 scores {118, 183, 235} with expected distance 6.6 and
  vectors (T2,T6), (T7,T6), (T7,T3);
* 1-Typical-Top2 vector (T3, T2): score 170, probability 0.16.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable

#: (tid, soldier id, time, location, medical-needs score, confidence)
_FIGURE_1_ROWS = (
    ("T1", 1, "10:50", (10, 20), 49, 0.4),
    ("T2", 2, "10:49", (10, 19), 60, 0.4),
    ("T3", 3, "10:51", (9, 25), 110, 0.4),
    ("T4", 2, "10:50", (10, 19), 80, 0.3),
    ("T5", 4, "10:49", (12, 7), 56, 1.0),
    ("T6", 3, "10:50", (9, 25), 58, 0.5),
    ("T7", 2, "10:50", (11, 19), 125, 0.3),
)

#: The mutual exclusion rules of Example 1.
_FIGURE_1_RULES = (("T2", "T4", "T7"), ("T3", "T6"))


def soldier_table() -> UncertainTable:
    """The exact uncertain table of Figure 1.

    >>> table = soldier_table()
    >>> len(table), len(table.explicit_rules)
    (7, 2)
    """
    tuples = [
        UncertainTuple(
            tid,
            {
                "soldier": soldier,
                "time": time,
                "location": location,
                "score": score,
            },
            conf,
        )
        for tid, soldier, time, location, score, conf in _FIGURE_1_ROWS
    ]
    return UncertainTable(tuples, _FIGURE_1_RULES, name="soldiers")


def generate_soldier_table(
    soldiers: int,
    *,
    readings_per_soldier: tuple[int, int] = (1, 3),
    score_mean: float = 80.0,
    score_std: float = 30.0,
    seed: int | np.random.Generator | None = None,
) -> UncertainTable:
    """A larger table of the Figure-1 shape, for examples and tests.

    Each soldier gets between ``readings_per_soldier[0]`` and
    ``readings_per_soldier[1]`` mutually exclusive sensor estimates
    whose probabilities sum to at most 1; scores are normal with the
    given mean/std, clipped at 1.

    :param soldiers: number of soldiers (>= 1).
    :param readings_per_soldier: inclusive range of estimates each.
    :param seed: RNG seed for reproducibility.
    """
    if soldiers < 1:
        raise DatasetError(f"soldiers must be >= 1, got {soldiers}")
    low, high = readings_per_soldier
    if not 1 <= low <= high:
        raise DatasetError(
            f"invalid readings_per_soldier range {readings_per_soldier!r}"
        )
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    tuples = []
    rules = []
    tid_counter = 1
    for soldier in range(1, soldiers + 1):
        count = int(rng.integers(low, high + 1))
        # Dirichlet weights scaled below 1 leave room for "no reading
        # is correct".
        weights = rng.dirichlet(np.ones(count)) * float(
            rng.uniform(0.6, 1.0)
        )
        members = []
        for reading in range(count):
            score = float(
                np.clip(rng.normal(score_mean, score_std), 1.0, None)
            )
            tid = f"T{tid_counter}"
            tid_counter += 1
            tuples.append(
                UncertainTuple(
                    tid,
                    {
                        "soldier": soldier,
                        "time": "10:50",
                        "location": (
                            int(rng.integers(0, 30)),
                            int(rng.integers(0, 30)),
                        ),
                        "score": round(score, 2),
                    },
                    max(float(weights[reading]), 1e-6),
                )
            )
            members.append(tid)
        if len(members) > 1:
            rules.append(tuple(members))
    return UncertainTable(tuples, rules, name="soldiers")
