"""The Section-5.4 synthetic generator.

Scores and probabilities are drawn from a bivariate normal with a
configurable correlation coefficient ρ (the paper studies ρ = 0, 0.8
and −0.8) and score standard deviation σ (60 and 100 in Figures 13/14).
Probabilities are clipped into (0, 1].  ME groups are laid out over the
score-sorted sequence with controllable member *gaps* (how many tuples
apart consecutive members of a group sit — Figure 15) and group *sizes*
(Figure 16); group masses are rescaled below 1 when needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import DatasetError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable


@dataclass(frozen=True)
class MEGroupLayout:
    """How mutual-exclusion groups are laid over the sorted tuples.

    :ivar size_range: inclusive (min, max) tuples per ME group; the
        paper's baseline uses sizes 2–3, Figure 16 grows them to 2–10.
    :ivar gap_range: inclusive (min, max) distance, in tuples of the
        score-sorted order, between consecutive members of a group;
        the baseline uses 1–8, Figure 15 grows it to 1–40.
    :ivar fraction: fraction of tuples that participate in ME groups
        (0 disables grouping entirely).
    """

    size_range: tuple[int, int] = (2, 3)
    gap_range: tuple[int, int] = (1, 8)
    fraction: float = 0.5

    def validate(self) -> None:
        """Raise :class:`DatasetError` on inconsistent settings."""
        lo, hi = self.size_range
        if not 2 <= lo <= hi:
            raise DatasetError(f"bad ME size_range {self.size_range!r}")
        glo, ghi = self.gap_range
        if not 1 <= glo <= ghi:
            raise DatasetError(f"bad ME gap_range {self.gap_range!r}")
        if not 0.0 <= self.fraction <= 1.0:
            raise DatasetError(
                f"ME fraction must be in [0, 1], got {self.fraction!r}"
            )


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic dataset.

    :ivar tuples: number of uncertain tuples.
    :ivar score_mean: mean of the score marginal.
    :ivar score_std: standard deviation σ of the score marginal
        (Figure 13 uses 60, Figure 14 raises it to 100).
    :ivar prob_mean: mean of the probability marginal.
    :ivar prob_std: standard deviation of the probability marginal.
    :ivar correlation: score/probability correlation ρ ∈ [-1, 1].
    :ivar prob_floor: probabilities are clipped to
        ``[prob_floor, 1]`` (membership probabilities must be > 0).
    :ivar me_layout: ME-group layout; ``None`` means independent
        tuples.
    """

    tuples: int = 300
    score_mean: float = 150.0
    score_std: float = 60.0
    prob_mean: float = 0.5
    prob_std: float = 0.15
    correlation: float = 0.0
    prob_floor: float = 0.02
    me_layout: MEGroupLayout | None = MEGroupLayout()

    def validate(self) -> None:
        """Raise :class:`DatasetError` on inconsistent settings."""
        if self.tuples < 1:
            raise DatasetError(f"tuples must be >= 1, got {self.tuples}")
        if self.score_std < 0 or self.prob_std < 0:
            raise DatasetError("standard deviations must be >= 0")
        if not -1.0 <= self.correlation <= 1.0:
            raise DatasetError(
                f"correlation must be in [-1, 1], got {self.correlation!r}"
            )
        if not 0.0 < self.prob_floor <= 1.0:
            raise DatasetError(
                f"prob_floor must be in (0, 1], got {self.prob_floor!r}"
            )
        if self.me_layout is not None:
            self.me_layout.validate()


def _draw_scores_and_probs(
    config: SyntheticConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the bivariate-normal (score, probability) pairs."""
    mean = [config.score_mean, config.prob_mean]
    cov_xy = config.correlation * config.score_std * config.prob_std
    cov = [
        [config.score_std**2, cov_xy],
        [cov_xy, config.prob_std**2],
    ]
    draws = rng.multivariate_normal(mean, cov, size=config.tuples)
    scores = draws[:, 0]
    probs = np.clip(draws[:, 1], config.prob_floor, 1.0)
    return scores, probs


def _assign_me_groups(
    count: int,
    layout: MEGroupLayout,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Pick index sets (over score-sorted positions) forming ME groups.

    Walks the sorted order; with probability ``fraction`` a position
    seeds a group whose subsequent members sit ``gap`` positions apart
    (gap drawn per member).  Positions already used are skipped.
    """
    used = [False] * count
    groups: list[list[int]] = []
    size_lo, size_hi = layout.size_range
    gap_lo, gap_hi = layout.gap_range
    for start in range(count):
        if used[start]:
            continue
        if rng.random() >= layout.fraction:
            continue
        size = int(rng.integers(size_lo, size_hi + 1))
        members = [start]
        pos = start
        while len(members) < size:
            pos += int(rng.integers(gap_lo, gap_hi + 1))
            # Slide forward past occupied positions.
            while pos < count and used[pos]:
                pos += 1
            if pos >= count:
                break
            members.append(pos)
        if len(members) >= 2:
            for index in members:
                used[index] = True
            groups.append(members)
    return groups


def generate_synthetic_table(
    config: SyntheticConfig | None = None,
    *,
    seed: int | np.random.Generator | None = None,
    name: str = "synthetic",
) -> UncertainTable:
    """Generate the Section-5.4 synthetic uncertain table.

    Tuples carry a single ``score`` attribute; tids are ``T1``..``Tn``
    in score-descending order (so ME-group gaps are expressed in rank
    distance, as in the paper's description of Figures 15/16).  Group
    probability masses exceeding 1 are rescaled to 1 - 1e-9.

    >>> table = generate_synthetic_table(seed=1)
    >>> len(table)
    300
    """
    config = config or SyntheticConfig()
    config.validate()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    scores, probs = _draw_scores_and_probs(config, rng)
    order = np.argsort(-scores)
    scores = scores[order]
    probs = probs[order]

    group_indices: list[list[int]] = []
    if config.me_layout is not None and config.me_layout.fraction > 0.0:
        group_indices = _assign_me_groups(
            config.tuples, config.me_layout, rng
        )
        # Rescale saturated groups so the ME mass constraint holds.
        for members in group_indices:
            mass = float(probs[members].sum())
            if mass > 1.0:
                probs[members] *= (1.0 - 1e-9) / mass

    tuples = [
        UncertainTuple(
            f"T{index + 1}",
            {"score": float(scores[index])},
            float(probs[index]),
        )
        for index in range(config.tuples)
    ]
    rules: list[tuple[Any, ...]] = [
        tuple(f"T{index + 1}" for index in members)
        for members in group_indices
    ]
    return UncertainTable(tuples, rules, name=name)
