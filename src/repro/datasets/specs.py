"""Compact generator specs: build datasets from one-line strings.

The service catalog (and ``repro serve --synthetic``) names tables
whose contents are *generated* rather than loaded.  A generator spec
is ``<generator>:<key>=<value>,...``::

    synthetic:tuples=400,me=0.9,seed=5
    synthetic:tuples=300,me=0,correlation=0.4,score_std=100
    soldier:size=40,seed=1
    cartel:segments=120,seed=7

Keys accepted per generator:

* ``synthetic`` — ``tuples``, ``seed``, ``me`` (ME-group fraction; 0
  disables grouping), ``correlation``, ``score_mean``, ``score_std``,
  ``prob_mean``, ``prob_std``;
* ``soldier`` — ``size`` (omit for the paper's 7-row Table 1),
  ``seed``;
* ``cartel`` — ``segments``, ``seed``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.exceptions import DatasetError
from repro.uncertain.table import UncertainTable

#: Generators a spec may name, with their accepted keys.
SPEC_GENERATORS = ("synthetic", "soldier", "cartel")


def _parse_fields(text: str, spec: str) -> dict[str, float]:
    fields: dict[str, float] = {}
    if not text:
        return fields
    for part in text.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or not key:
            raise DatasetError(
                f"bad generator spec {spec!r}: expected key=value, "
                f"got {part!r}"
            )
        try:
            fields[key] = float(value)
        except ValueError:
            raise DatasetError(
                f"bad generator spec {spec!r}: non-numeric value "
                f"for {key!r}"
            ) from None
    return fields


def _pop_int(fields: dict[str, float], key: str, default: int) -> int:
    value = fields.pop(key, default)
    if value != int(value):
        raise DatasetError(f"{key} must be an integer, got {value!r}")
    return int(value)


def _build_synthetic(fields: dict[str, float], spec: str) -> UncertainTable:
    from repro.datasets.synthetic import (
        MEGroupLayout,
        SyntheticConfig,
        generate_synthetic_table,
    )

    tuples = _pop_int(fields, "tuples", 300)
    seed = _pop_int(fields, "seed", 0)
    me_fraction = fields.pop("me", 0.5)
    layout = (
        MEGroupLayout(fraction=me_fraction) if me_fraction > 0.0 else None
    )
    config_kwargs: dict[str, Any] = {"tuples": tuples, "me_layout": layout}
    for key in ("correlation", "score_mean", "score_std", "prob_mean",
                "prob_std"):
        if key in fields:
            config_kwargs[key] = fields.pop(key)
    _reject_unknown(fields, spec)
    return generate_synthetic_table(
        SyntheticConfig(**config_kwargs), seed=seed
    )


def _build_soldier(fields: dict[str, float], spec: str) -> UncertainTable:
    from repro.datasets.soldier import generate_soldier_table, soldier_table

    size = _pop_int(fields, "size", 0)
    seed = _pop_int(fields, "seed", 0)
    _reject_unknown(fields, spec)
    if size <= 0:
        return soldier_table()
    return generate_soldier_table(size, seed=seed)


def _build_cartel(fields: dict[str, float], spec: str) -> UncertainTable:
    from repro.datasets.cartel import CartelConfig, generate_cartel_area

    segments = _pop_int(fields, "segments", 120)
    seed = _pop_int(fields, "seed", 0)
    _reject_unknown(fields, spec)
    return generate_cartel_area(
        config=CartelConfig(segments=segments), seed=seed
    )


def _reject_unknown(fields: dict[str, float], spec: str) -> None:
    if fields:
        raise DatasetError(
            f"bad generator spec {spec!r}: unknown keys "
            f"{sorted(fields)}"
        )


_BUILDERS: dict[str, Callable[[dict[str, float], str], UncertainTable]] = {
    "synthetic": _build_synthetic,
    "soldier": _build_soldier,
    "cartel": _build_cartel,
}


def is_generator_spec(text: str) -> bool:
    """Whether ``text`` names a generator (vs. a table file path)."""
    head, sep, _ = text.partition(":")
    return bool(sep) and head in SPEC_GENERATORS


def generate_from_spec(spec: str) -> UncertainTable:
    """Build the table a generator spec describes.

    Generation is deterministic: the same spec string always yields
    the same table (seeds default to 0).
    """
    generator, _, rest = spec.partition(":")
    builder = _BUILDERS.get(generator)
    if builder is None:
        raise DatasetError(
            f"unknown generator {generator!r} in spec {spec!r}; "
            f"expected one of {SPEC_GENERATORS}"
        )
    return builder(_parse_fields(rest, spec), spec)
