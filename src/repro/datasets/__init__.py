"""Dataset generators used by the paper's evaluation.

* :mod:`repro.datasets.soldier` — the Figure-1 motivating example
  (soldier physiologic-status monitoring) plus a generator of larger
  tables of the same shape.
* :mod:`repro.datasets.cartel` — a simulator standing in for the
  proprietary CarTel road-delay dataset (Section 5.1); see DESIGN.md
  for the substitution rationale.
* :mod:`repro.datasets.synthetic` — the Section-5.4 bivariate-normal
  generator with controllable score/probability correlation, score
  variance and ME-group layout.
* :mod:`repro.datasets.specs` — one-line generator specs
  (``synthetic:tuples=400,me=0.9``) used by the service catalog and
  ``repro serve --synthetic``.
"""

from repro.datasets.soldier import soldier_table, generate_soldier_table
from repro.datasets.cartel import (
    CartelConfig,
    RoadSegment,
    generate_cartel_area,
    generate_measurements,
    segments_to_table,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    MEGroupLayout,
    generate_synthetic_table,
)
from repro.datasets.specs import (
    SPEC_GENERATORS,
    generate_from_spec,
    is_generator_spec,
)

__all__ = [
    "SPEC_GENERATORS",
    "generate_from_spec",
    "is_generator_spec",
    "soldier_table",
    "generate_soldier_table",
    "CartelConfig",
    "RoadSegment",
    "generate_cartel_area",
    "generate_measurements",
    "segments_to_table",
    "SyntheticConfig",
    "MEGroupLayout",
    "generate_synthetic_table",
]
