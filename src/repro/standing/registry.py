"""The standing-query registry: delta-maintained subscriptions.

A client registers a :class:`~repro.api.spec.QuerySpec` over a
:class:`~repro.standing.changelog.MutableUncertainTable` and the
registry keeps the materialized answer current as mutations arrive.
Per ``(subscription, delta)`` the maintainer picks the cheapest sound
tier:

**skip** — the mutation provably cannot change the answer.  This is
the Theorem-2 argument turned into an applicability test: when the
subscription's prefix was *truncated* (the scan stopped before the end
of the table), the stopping position was justified by the probability
mass of rows strictly above it — all inside the prefix.  A delta whose
tuple (old and new state alike) scores strictly below the boundary
score, is not itself a prefix row, and shares no ME group with a
prefix row, leaves that mass and the tie structure at the boundary
intact, so a cold re-evaluation would reproduce the *identical* prefix
— and every downstream stage is a pure function of the prefix rows.
The maintainer re-seeds the retained prefix object into the session
under the table's new version (:meth:`~repro.api.session.Session.
seed_prefix`), which keeps the whole cached PMF/answer chain warm, and
leaves the answer untouched.

**patch** — the prefix may change, but it can be rebuilt from the
subscription's :class:`PrefixMirror` — a
:class:`~repro.stream.segments.RankedSegments` rank index over the
whole table, maintained in O(segment) per delta — instead of
re-scoring and re-sorting the table in O(n log n).  The rebuilt prefix
is row-identical to the cold sort (arrival sequence reproduces the
stable tie-break; see :mod:`repro.standing.changelog` on ordering),
gets seeded, and the answer is recomputed through the ordinary session
pipeline — so maintained answers stay byte-identical to cold ones by
construction.  Eligibility: the Theorem-2 depth computed by the mirror
matches :func:`~repro.core.scan_depth.scan_depth` only for ME-free
tables (singleton groups), so ``p_tau``-truncating subscriptions over
tables with explicit rules fall through to recompute.

**recompute** — the fallback: the session re-runs the query cold (its
version-keyed caches miss by construction after a mutation).

Watchers long-poll :meth:`StandingRegistry.wait`, which blocks until a
subscription's maintained version passes the watermark they have seen.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Hashable, Mapping

from repro.api.logical import LogicalPlan
from repro.api.session import Session
from repro.api.spec import QuerySpec
from repro.core.distribution import resolve_scorer
from repro.exceptions import DataModelError, ScoringError, ServiceError
from repro.standing.changelog import Delta, MutableUncertainTable
from repro.stream.segments import (
    DEFAULT_SEGMENT_SIZE,
    RankedSegments,
)
from repro.uncertain.model import UncertainTuple
from repro.uncertain.scoring import ScoredItem, ScoredTable, Scorer
from repro.uncertain.table import UncertainTable

#: The maintenance tiers, cheapest first.
SKIP, PATCH, RECOMPUTE = "skip", "patch", "recompute"

#: How many automatic re-evaluations a sticky maintenance error gets
#: (per error episode) before waiting for the next successful delta.
MAX_STICKY_RETRIES = 3

#: Base backoff before the first sticky-error retry; doubles per
#: failed attempt.
STICKY_RETRY_BACKOFF_S = 0.05


@dataclass(frozen=True)
class PrefixFingerprint:
    """What the maintainer remembers about a subscription's prefix.

    :ivar prefix: the materialized stage-1 object (retained so a skip
        can re-seed it — and with it the downstream cache chain).
    :ivar depth: ``len(prefix)``.
    :ivar tids: the prefix rows' tuple ids.
    :ivar boundary_score: the last (lowest-ranked) prefix row's score,
        or ``None`` for an empty prefix.
    :ivar truncated: whether the prefix stopped before the end of the
        table at evaluation time.  Only a truncated prefix admits
        skips; the flag stays valid across skipped deltas because a
        skipped delta never touches the rows that justified the stop.
    """

    prefix: ScoredTable
    depth: int
    tids: frozenset
    boundary_score: float | None
    truncated: bool

    @classmethod
    def of(
        cls, prefix: ScoredTable, table_rows: int
    ) -> "PrefixFingerprint":
        """Fingerprint a freshly evaluated prefix."""
        depth = len(prefix)
        return cls(
            prefix=prefix,
            depth=depth,
            tids=frozenset(item.tid for item in prefix),
            boundary_score=prefix[depth - 1].score if depth else None,
            truncated=depth < table_rows,
        )


def classify_delta(
    fingerprint: PrefixFingerprint,
    delta: Delta,
    *,
    old_score: float | None = None,
    new_score: float | None = None,
) -> str:
    """The cheapest sound tier for one delta against one prefix.

    Returns :data:`SKIP` when the mutation provably cannot change the
    prefix (hence the answer), else :data:`PATCH` — whether the patch
    actually runs on the mirror or degrades to a recompute is the
    registry's call (it depends on table/mirror state, not on the
    delta).

    :param old_score: the affected tuple's score under the
        subscription's scorer *before* the mutation (``None`` for
        inserts).
    :param new_score: the score *after* the mutation (``None`` for
        expiries).
    """
    if not fingerprint.truncated or fingerprint.boundary_score is None:
        # Untruncated prefixes contain every row: all deltas touch them.
        return PATCH
    if delta.tid in fingerprint.tids:
        return PATCH
    if fingerprint.tids.intersection(delta.group):
        # ME straddle: the group's below-prefix mass feeds the mu of
        # its in-prefix members, so the Theorem-2 stop could move.
        return PATCH
    boundary = fingerprint.boundary_score
    for score in (old_score, new_score):
        # Strictly below the boundary: the delta row sorts after every
        # prefix row and cannot join the boundary tie group, so the
        # stop position, its justifying mass, and the prefix rows are
        # all unchanged.
        if score is None:
            continue
        if math.isnan(score) or score >= boundary:
            return PATCH
    return SKIP


class PrefixMirror:
    """An incrementally maintained rank order for one (table, scorer).

    Mirrors the *whole* table as a
    :class:`~repro.stream.segments.RankedSegments` index keyed by
    descending ``(score, prob)`` with the tuple's arrival sequence
    breaking ties — which reproduces the stable
    :meth:`ScoredTable.from_table` sort exactly, because mutable
    tables only ever append (see :mod:`repro.standing.changelog`).
    Applying one delta costs O(segment); rebuilding a subscription's
    prefix costs O(depth) — no re-scoring, no O(n log n) sort.
    """

    def __init__(
        self,
        table: UncertainTable,
        scorer: Scorer,
        *,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> None:
        self._scorer = scorer
        self._index = RankedSegments(segment_size=segment_size)
        #: tid -> (score, prob, seq): the removal key of each entry.
        self._entries: dict[Any, tuple[float, float, int]] = {}
        self._next_seq = 0
        for t in table:
            self._add(t.tid, self.score_of(t), t.probability)
        self.version = table.version

    def __len__(self) -> int:
        return len(self._index)

    def score_of(self, t: UncertainTuple) -> float:
        """The tuple's score; NaN raises exactly like the cold sort."""
        score = float(self._scorer(t))
        if math.isnan(score):
            raise ScoringError(f"score of tuple {t.tid!r} is NaN")
        return score

    def _add(
        self, tid: Any, score: float, prob: float, seq: int | None = None
    ) -> None:
        if seq is None:
            seq = self._next_seq
            self._next_seq += 1
        self._index.insert(tid, score, prob, seq)
        self._entries[tid] = (score, prob, seq)

    def _remove(self, tid: Any) -> tuple[float, float, int]:
        score, prob, seq = self._entries.pop(tid)
        self._index.remove(tid, score, prob, seq)
        return score, prob, seq

    def apply(self, delta: Delta, table: UncertainTable) -> None:
        """Advance the mirror by one log delta (already applied to
        ``table``).  Updates keep the tuple's original arrival
        sequence, so ties keep resolving to the stable sort order."""
        if delta.op == "insert":
            t = table[delta.tid]
            self._add(delta.tid, self.score_of(t), t.probability)
        elif delta.op == "expire":
            self._remove(delta.tid)
        elif delta.op == "update_probability":
            score, _prob, seq = self._remove(delta.tid)
            self._add(
                delta.tid, score, table[delta.tid].probability, seq=seq
            )
        elif delta.op == "update_score":
            t = table[delta.tid]
            _score, prob, seq = self._remove(delta.tid)
            self._add(delta.tid, self.score_of(t), prob, seq=seq)
        else:
            raise DataModelError(f"unknown delta op {delta.op!r}")
        self.version = delta.version

    def build_prefix(
        self, spec: QuerySpec, table: UncertainTable
    ) -> ScoredTable:
        """The subscription's stage-1 prefix, straight off the index.

        Row-identical to ``scored_prefix_for(table, spec)``: same
        order (stable-sort reproduction), same depth (explicit depth,
        or the Theorem-2 depth — the caller guarantees the table is
        ME-free when ``p_tau`` governs the depth), same group ids
        (read off the *current* table).
        """
        count = len(self._index)
        if spec.depth is not None:
            depth = min(spec.depth, count)
        elif spec.p_tau > 0.0:
            depth = self._index.scan_depth(spec.k, spec.p_tau)
        else:
            depth = count
        return ScoredTable(
            [
                ScoredItem(
                    entry.tid,
                    entry.score,
                    entry.prob,
                    table.group_of(entry.tid),
                )
                for entry in self._index.rows(depth)
            ]
        )


class Subscription:
    """One registered standing query and its maintained answer."""

    __slots__ = (
        "sid",
        "spec",
        "logical",
        "answer",
        "version",
        "fingerprint",
        "error",
        "tiers",
        "errors",
        "retry_attempts",
        "retry_at",
    )

    def __init__(
        self, sid: str, spec: QuerySpec, logical: LogicalPlan
    ) -> None:
        self.sid = sid
        self.spec = spec
        self.logical = logical
        self.answer: Any = None
        #: The table version the answer reflects.
        self.version = 0
        self.fingerprint: PrefixFingerprint | None = None
        #: Sticky maintenance failure (e.g. the scorer rejects a new
        #: tuple); surfaced to watchers, cleared by a successful tier
        #: or by a bounded automatic retry on a later ``wait()`` tick.
        self.error: str | None = None
        self.tiers = {SKIP: 0, PATCH: 0, RECOMPUTE: 0}
        #: Lifetime count of maintenance/retry failures (monotone;
        #: surfaced per subscription in the /metrics standing section).
        self.errors = 0
        #: Retry attempts consumed for the *current* error episode.
        self.retry_attempts = 0
        #: Earliest ``time.monotonic()`` the next retry may run.
        self.retry_at = 0.0

    def describe(self) -> dict[str, Any]:
        """JSON-ready status (no answer payload)."""
        return {
            "sid": self.sid,
            "table": self.spec.table
            if isinstance(self.spec.table, str)
            else "<in-memory>",
            "semantics": self.spec.semantics,
            "k": self.spec.k,
            "version": self.version,
            "error": self.error,
            "errors": self.errors,
            "tiers": dict(self.tiers),
        }


class StandingRegistry:
    """Subscriptions over a session's mutable tables, kept current.

    Thread-safe: mutations serialize on the registry lock (after the
    table's own mutation lock), and watchers block on the registry's
    condition until the subscription they follow advances.

    :param session: the (shared, version-keyed) session queries run
        through.
    :param sid_prefix: prefix of generated subscription ids.  The
        sharded serving tier gives each worker process a distinct
        prefix (``w0-sub-`` ...) so sids stay unique service-wide and
        the front router can map a sid back to its worker.
    """

    def __init__(
        self, session: Session, *, sid_prefix: str = "sub-"
    ) -> None:
        self._session = session
        self._sid_prefix = sid_prefix
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._subs: dict[str, Subscription] = {}
        self._next_id = 1
        #: (table id, scorer key) -> mirror; populated lazily by the
        #: first patch and advanced per delta while any sub needs it.
        self._mirrors: dict[tuple[int, Hashable], PrefixMirror] = {}
        self._stats = {
            "subscriptions": 0,
            "mutations": 0,
            SKIP: 0,
            PATCH: 0,
            RECOMPUTE: 0,
            "errors": 0,
            "retries": 0,
        }

    @property
    def session(self) -> Session:
        """The session subscriptions evaluate through."""
        return self._session

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------
    def subscribe(
        self, spec: QuerySpec, *, sid: str | None = None
    ) -> Subscription:
        """Register a standing query; evaluates it once, cold.

        :param sid: re-register under a specific id (the durable
            manifest's recovery path re-creates each pre-crash
            subscription under its original sid, so watchers resume
            against the ids they already hold).  Fresh ids never
            collide with restored ones.
        """
        with self._cond:
            if sid is None:
                sid = f"{self._sid_prefix}{self._next_id}"
                self._next_id += 1
            else:
                if sid in self._subs:
                    raise ServiceError(
                        f"subscription id {sid!r} already registered"
                    )
                _, _, suffix = sid.rpartition("-")
                if suffix.isdigit():
                    self._next_id = max(self._next_id, int(suffix) + 1)
            sub = Subscription(sid, spec, LogicalPlan.from_spec(spec))
            # Held across the first evaluation: mutations funnel
            # through the same lock (on_delta), so a subscription can
            # never miss a delta between its cold evaluation and its
            # registration.
            table = self._session.resolve(spec)
            self._evaluate(sub, table, table.version)
            self._subs[sub.sid] = sub
            self._stats["subscriptions"] += 1
        return sub

    def subscriptions(self) -> tuple[Subscription, ...]:
        """The active subscriptions (manifest persistence reads this)."""
        with self._lock:
            return tuple(self._subs.values())

    def unsubscribe(self, sid: str) -> bool:
        """Drop a subscription; wakes its watchers (which then see it
        gone and stop).  Returns whether it existed."""
        with self._cond:
            existed = self._subs.pop(sid, None) is not None
            self._cond.notify_all()
            return existed

    def get(self, sid: str) -> Subscription | None:
        with self._lock:
            return self._subs.get(sid)

    def describe(self) -> dict[str, Any]:
        """JSON-ready registry status (the /metrics section)."""
        with self._lock:
            return {
                "active": len(self._subs),
                **{k: v for k, v in self._stats.items()},
                "subscription_errors": {
                    sid: sub.errors
                    for sid, sub in sorted(self._subs.items())
                },
            }

    # ------------------------------------------------------------------
    # Mutation intake
    # ------------------------------------------------------------------
    def mutate(
        self, table_name: str, op: str, payload: Mapping[str, Any]
    ) -> Delta:
        """Apply one mutation to a catalog table and maintain every
        subscription standing on it; wakes watchers on completion."""
        table = self._session.catalog.resolve(table_name)
        if not isinstance(table, MutableUncertainTable):
            raise ServiceError(
                f"table {table_name!r} is not mutable; load the catalog "
                "with mutable tables to accept mutations"
            )
        delta = table.apply_payload(op, payload)
        self.on_delta(table, delta)
        return delta

    def on_delta(self, table: MutableUncertainTable, delta: Delta) -> None:
        """Maintain all subscriptions after an already-applied delta.

        Split from :meth:`mutate` so embedders that hold a direct
        table reference can drive maintenance themselves.
        """
        with self._cond:
            self._stats["mutations"] += 1
            self._advance_mirrors(table, delta)
            for sub in self._subs.values():
                if self._session.resolve(sub.spec) is table:
                    self._maintain(sub, table, delta)
            self._cond.notify_all()

    def _advance_mirrors(
        self, table: MutableUncertainTable, delta: Delta
    ) -> None:
        """Keep every mirror of this table in lock-step with its log.

        A mirror whose scorer rejects the delta is dropped — the next
        patch attempt recreates it from current state (or the
        subscription recomputes and errors on its own terms).
        """
        for key in [
            key for key in self._mirrors if key[0] == id(table)
        ]:
            try:
                self._mirrors[key].apply(delta, table)
            except Exception:
                del self._mirrors[key]

    # ------------------------------------------------------------------
    # Maintenance tiers
    # ------------------------------------------------------------------
    def _delta_scores(
        self, sub: Subscription, table: UncertainTable, delta: Delta
    ) -> tuple[float | None, float | None]:
        """The affected tuple's (old, new) scores under the sub's
        scorer — from the delta payloads alone, no table history."""
        scorer = resolve_scorer(sub.spec.scorer)
        old_score = new_score = None
        if delta.old_attributes is not None:
            old_score = float(
                scorer(
                    UncertainTuple(
                        delta.tid,
                        delta.old_attributes,
                        delta.old_probability or 1.0,
                    )
                )
            )
        elif delta.op == "update_probability":
            # Attributes unchanged: score both states off the live row.
            old_score = new_score = float(scorer(table[delta.tid]))
        if delta.attributes is not None:
            new_score = float(scorer(table[delta.tid]))
        return old_score, new_score

    def _patchable(
        self, sub: Subscription, table: MutableUncertainTable
    ) -> bool:
        """Whether the mirror's prefix is provably row-identical.

        The mirror's incremental Theorem-2 depth assumes singleton ME
        groups, so ``p_tau``-truncating subscriptions require an
        ME-free table; explicit-depth and untruncated subscriptions
        only need the (always valid) rank order.
        """
        spec = sub.spec
        if spec.depth is None and spec.p_tau > 0.0:
            return not table.explicit_rules
        return True

    def _mirror_for(
        self, sub: Subscription, table: MutableUncertainTable
    ) -> PrefixMirror:
        key = (id(table), sub.logical.scorer_key)
        mirror = self._mirrors.get(key)
        if mirror is None or mirror.version != table.version:
            mirror = PrefixMirror(table, resolve_scorer(sub.spec.scorer))
            self._mirrors[key] = mirror
        return mirror

    def _evaluate(
        self, sub: Subscription, table: UncertainTable, version: int
    ) -> None:
        """Cold evaluation: answer + fresh fingerprint at ``version``."""
        sub.answer = self._session.execute(sub.spec)
        sub.fingerprint = PrefixFingerprint.of(
            self._session.scored_prefix(sub.spec), len(table)
        )
        sub.version = version
        sub.error = None

    def _maintain(
        self,
        sub: Subscription,
        table: MutableUncertainTable,
        delta: Delta,
    ) -> None:
        try:
            tier = RECOMPUTE
            fingerprint = sub.fingerprint
            if fingerprint is not None and sub.error is None:
                old_score, new_score = self._delta_scores(
                    sub, table, delta
                )
                tier = classify_delta(
                    fingerprint,
                    delta,
                    old_score=old_score,
                    new_score=new_score,
                )
            if tier == SKIP:
                assert fingerprint is not None
                # The prefix is unchanged: re-seeding the *same object*
                # under the table's new version keeps the downstream
                # PMF/answer cache chain warm (they key by identity).
                self._session.seed_prefix(sub.spec, fingerprint.prefix)
                sub.version = delta.version
                sub.error = None
            elif tier == PATCH and self._patchable(sub, table):
                prefix = self._mirror_for(sub, table).build_prefix(
                    sub.spec, table
                )
                self._session.seed_prefix(sub.spec, prefix)
                self._evaluate(sub, table, delta.version)
            else:
                tier = RECOMPUTE
                self._evaluate(sub, table, delta.version)
            sub.tiers[tier] += 1
            self._stats[tier] += 1
        except Exception as exc:  # sticky; cleared by a later success
            sub.error = f"{type(exc).__name__}: {exc}"
            sub.version = delta.version
            sub.fingerprint = None
            sub.errors += 1
            # A fresh error episode gets a fresh (bounded) retry
            # budget, drained by later wait() ticks.
            sub.retry_attempts = 0
            sub.retry_at = time.monotonic() + STICKY_RETRY_BACKOFF_S
            self._stats["errors"] += 1

    def _retry_sticky(self, sid: str) -> None:
        """Under the lock: one bounded retry of a sticky error.

        Invoked from ``wait()`` ticks — the moments a watcher is
        actually looking — so a transient failure (a scorer racing a
        schema fix, an injected fault) heals without waiting for the
        next delta, while a persistent one stops burning recomputes
        after :data:`MAX_STICKY_RETRIES` attempts with exponential
        backoff.
        """
        sub = self._subs.get(sid)
        if (
            sub is None
            or sub.error is None
            or sub.retry_attempts >= MAX_STICKY_RETRIES
            or time.monotonic() < sub.retry_at
        ):
            return
        sub.retry_attempts += 1
        self._stats["retries"] += 1
        try:
            table = self._session.resolve(sub.spec)
            self._evaluate(sub, table, table.version)
        except Exception as exc:
            sub.error = f"{type(exc).__name__}: {exc}"
            sub.errors += 1
            sub.retry_at = time.monotonic() + (
                STICKY_RETRY_BACKOFF_S * (2**sub.retry_attempts)
            )
        else:
            sub.retry_attempts = 0
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Watching
    # ------------------------------------------------------------------
    def snapshot(self, sid: str) -> dict[str, Any] | None:
        """The subscription's current state as a JSON-ready document
        (``None`` when the sid is unknown)."""
        from repro.io.json_io import answer_to_jsonable

        with self._lock:
            sub = self._subs.get(sid)
            if sub is None:
                return None
            document = sub.describe()
            document["answer"] = (
                None if sub.error else answer_to_jsonable(sub.answer)
            )
            return document

    def wait(
        self, sid: str, *, after_version: int, timeout: float | None = None
    ) -> dict[str, Any] | None:
        """Block until the subscription advances past ``after_version``.

        Returns the post-advance snapshot; the current snapshot on
        timeout; ``None`` when the subscription does not (or no
        longer) exist.
        """
        with self._cond:
            self._retry_sticky(sid)
            self._cond.wait_for(
                lambda: (
                    sid not in self._subs
                    or self._subs[sid].version > after_version
                ),
                timeout=timeout,
            )
            self._retry_sticky(sid)
        return self.snapshot(sid)
