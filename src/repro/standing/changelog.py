"""Mutable uncertain tables and their append-only change log.

A :class:`MutableUncertainTable` is an :class:`~repro.uncertain.table.
UncertainTable` whose contents may change *in place* through four
operations — :meth:`~MutableUncertainTable.insert`,
:meth:`~MutableUncertainTable.expire`,
:meth:`~MutableUncertainTable.update_probability` and
:meth:`~MutableUncertainTable.update_score` — each of which:

* re-validates every table invariant (unique tids, disjoint ME rules,
  group mass <= 1) by *probing*: the candidate state is constructed as
  a throwaway immutable table first, so a rejected mutation raises and
  leaves the live table untouched;
* bumps the table's monotone :attr:`~repro.uncertain.table.
  UncertainTable.version` (which every
  :class:`~repro.api.session.Session` cache key includes, so stale
  stage entries can never be hit after a mutation);
* appends a :class:`Delta` record to the table's :class:`ChangeLog`,
  carrying both the old and the new payload plus the affected ME
  group's membership — everything the standing-query maintainer
  (:mod:`repro.standing.registry`) needs to classify the mutation
  against a subscription *without* consulting historical table state.

Ordering guarantee: ``insert`` appends (so insertion order keeps
following arrival order), ``expire`` preserves the relative order of
the survivors, and the update operations keep the tuple at its
position.  The canonical rank order (stable sort by descending
``(score, prob)``) of a mutated table is therefore reproducible from
an arrival-sequence-tie-broken rank index — the property
:class:`repro.standing.registry.PrefixMirror` relies on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import DataModelError, MutualExclusionError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable

#: The four mutation operations, as they appear in :attr:`Delta.op`.
MUTATION_OPS = ("insert", "expire", "update_probability", "update_score")


@dataclass(frozen=True)
class Delta:
    """One table mutation, as recorded in the change log.

    :ivar version: the table version this mutation produced (the log
        is dense: the delta at version ``v`` turns state ``v-1`` into
        state ``v``).
    :ivar op: one of :data:`MUTATION_OPS`.
    :ivar tid: the affected tuple id.
    :ivar probability: the new membership probability (``insert`` /
        ``update_probability``), else ``None``.
    :ivar attributes: the new attribute mapping (``insert`` /
        ``update_score``; the latter records the *merged* result).
    :ivar old_probability: the pre-mutation probability (every op but
        ``insert``).
    :ivar old_attributes: the pre-mutation attributes (every op but
        ``insert``).
    :ivar group: the tids of the affected tuple's ME group, including
        the tuple itself — post-state for ``insert``, pre-state
        otherwise.  The maintainer's straddle check intersects this
        with a subscription's prefix, so it needs no table history.
    """

    version: int
    op: str
    tid: Any
    probability: float | None = None
    attributes: Mapping[str, Any] | None = None
    old_probability: float | None = None
    old_attributes: Mapping[str, Any] | None = None
    group: tuple = ()

    def to_jsonable(self) -> dict[str, Any]:
        """JSON-ready record (the service's mutation response body)."""
        document: dict[str, Any] = {
            "version": self.version,
            "op": self.op,
            "tid": self.tid,
            "group": list(self.group),
        }
        if self.probability is not None:
            document["probability"] = self.probability
        if self.attributes is not None:
            document["attributes"] = dict(self.attributes)
        if self.old_probability is not None:
            document["old_probability"] = self.old_probability
        if self.old_attributes is not None:
            document["old_attributes"] = dict(self.old_attributes)
        return document


class ChangeLog:
    """An append-only, thread-safe sequence of :class:`Delta` records.

    Versions are dense and start at ``base + 1``, so ``log.since(v)``
    yields exactly the mutations a consumer at version ``v`` has not
    seen.  ``base`` is 0 for a fresh table and the snapshot version for
    a table recovered from a WAL-over-snapshot boot
    (:mod:`repro.standing.wal`) — versions keep counting from where the
    pre-crash process left off.
    """

    __slots__ = ("_deltas", "_lock", "_base")

    def __init__(self, base: int = 0) -> None:
        self._deltas: list[Delta] = []
        self._lock = threading.Lock()
        self._base = base

    @property
    def version(self) -> int:
        """The version of the latest recorded delta (``base`` when
        empty)."""
        with self._lock:
            return self._deltas[-1].version if self._deltas else self._base

    def append(self, delta: Delta) -> None:
        """Record one mutation; versions must arrive dense and ordered."""
        with self._lock:
            expected = (
                self._deltas[-1].version if self._deltas else self._base
            ) + 1
            if delta.version != expected:
                raise DataModelError(
                    f"change log expected version {expected}, "
                    f"got {delta.version}"
                )
            self._deltas.append(delta)

    def since(self, version: int) -> tuple[Delta, ...]:
        """Every delta with ``delta.version > version``, in order.

        Versions are dense, so this is an O(1) slice, not a scan.
        """
        with self._lock:
            if not self._deltas:
                return ()
            first = self._deltas[0].version
            start = max(0, version - first + 1)
            return tuple(self._deltas[start:])

    def __len__(self) -> int:
        with self._lock:
            return len(self._deltas)

    def __iter__(self) -> Iterator[Delta]:
        with self._lock:
            snapshot = tuple(self._deltas)
        return iter(snapshot)


class MutableUncertainTable(UncertainTable):
    """An uncertain table with in-place, change-logged mutations.

    All mutations are serialized through one re-entrant lock and
    validated by probing (see the module docstring), so readers always
    observe a fully consistent state and a rejected mutation has no
    effect.  Reads go through the inherited :class:`UncertainTable`
    interface unchanged.
    """

    def __init__(
        self,
        tuples: Iterable[UncertainTuple],
        rules: Iterable[Sequence[Any]] = (),
        *,
        name: str = "uncertain",
        start_version: int = 0,
    ) -> None:
        self._mutex = threading.RLock()
        self._log = ChangeLog(base=start_version)
        self._observer: Any = None
        super().__init__(tuples, rules, name=name)
        self._version = start_version

    @classmethod
    def from_table(
        cls, table: UncertainTable, *, start_version: int = 0
    ) -> "MutableUncertainTable":
        """A mutable copy of an immutable table (fresh log; versions
        continue from ``start_version`` — 0 unless recovering)."""
        return cls(
            table.tuples,
            table.explicit_rules,
            name=table.name,
            start_version=start_version,
        )

    @property
    def log(self) -> ChangeLog:
        """This table's change log (one delta per version bump)."""
        return self._log

    def attach_observer(self, observer: Any) -> None:
        """Install a callable invoked with every applied :class:`Delta`.

        The observer runs under the table's mutation mutex, *after* the
        state swap and the change-log append but before the mutation
        returns — so observer invocation order always matches version
        order, which is what lets the write-ahead log
        (:mod:`repro.standing.wal`) persist records densely.  An
        observer exception propagates to the mutator (the mutation is
        already applied in memory; durability hooks treat that as a
        fatal fault — see the WAL module).  Pass ``None`` to detach.
        """
        with self._mutex:
            self._observer = observer

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _adopt(self, tuples, rules, make_delta) -> Delta:
        """Validate the candidate state, then swap it in atomically.

        The probe table runs the full :class:`UncertainTable`
        constructor — duplicate tids, malformed rules and group mass
        violations raise *before* any live state changes.
        """
        probe = UncertainTable(tuples, rules, name=self._name)
        # One C-level dict.update: readers on other threads observe
        # either the whole old state or the whole new one (data and
        # version together), never a mix — which is what keeps the
        # session's version-keyed caches sound without a read lock.
        self.__dict__.update(
            _tuples=probe._tuples,
            _by_tid=probe._by_tid,
            _group_of=probe._group_of,
            _groups=probe._groups,
            _version=self._version + 1,
        )
        delta = make_delta(self._version)
        self._log.append(delta)
        if self._observer is not None:
            self._observer(delta)
        return delta

    def insert(
        self,
        tid: Any,
        attributes: Mapping[str, Any],
        probability: float,
        *,
        group_with: Any = None,
    ) -> Delta:
        """Append a new tuple; optionally join an existing ME group.

        :param group_with: a tid whose ME group the new tuple joins (a
            singleton partner becomes an explicit two-member rule).
        """
        with self._mutex:
            if tid in self._by_tid:
                raise DataModelError(f"duplicate tuple id {tid!r}")
            new = UncertainTuple(tid, attributes, probability)
            tuples = self._tuples + [new]
            rules = [list(g) for g in self.explicit_rules]
            group = (tid,)
            if group_with is not None:
                if group_with not in self._by_tid:
                    raise MutualExclusionError(
                        f"group_with references unknown tuple id "
                        f"{group_with!r}"
                    )
                joined = False
                for rule in rules:
                    if group_with in rule:
                        rule.append(tid)
                        group = tuple(rule)
                        joined = True
                        break
                if not joined:
                    rules.append([group_with, tid])
                    group = (group_with, tid)
            return self._adopt(
                tuples,
                [tuple(rule) for rule in rules],
                lambda v: Delta(
                    version=v,
                    op="insert",
                    tid=tid,
                    probability=new.probability,
                    attributes=dict(new.attributes),
                    group=group,
                ),
            )

    def expire(self, tid: Any) -> Delta:
        """Remove a tuple; its ME rule sheds the member (rules reduced
        below two members disappear, their survivor going singleton)."""
        with self._mutex:
            old = self._by_tid.get(tid)
            if old is None:
                raise DataModelError(f"unknown tuple id {tid!r}")
            group = self._groups[self._group_of[tid]]
            tuples = [t for t in self._tuples if t.tid != tid]
            rules = [
                reduced
                for g in self.explicit_rules
                if len(reduced := tuple(x for x in g if x != tid)) >= 2
            ]
            return self._adopt(
                tuples,
                rules,
                lambda v: Delta(
                    version=v,
                    op="expire",
                    tid=tid,
                    old_probability=old.probability,
                    old_attributes=dict(old.attributes),
                    group=group,
                ),
            )

    def update_probability(self, tid: Any, probability: float) -> Delta:
        """Change a tuple's membership probability in place."""
        with self._mutex:
            old = self._by_tid.get(tid)
            if old is None:
                raise DataModelError(f"unknown tuple id {tid!r}")
            updated = old.with_probability(probability)
            tuples = [updated if t.tid == tid else t for t in self._tuples]
            group = self._groups[self._group_of[tid]]
            return self._adopt(
                tuples,
                self.explicit_rules,
                lambda v: Delta(
                    version=v,
                    op="update_probability",
                    tid=tid,
                    probability=updated.probability,
                    old_probability=old.probability,
                    group=group,
                ),
            )

    def update_score(
        self, tid: Any, attributes: Mapping[str, Any]
    ) -> Delta:
        """Merge new attribute values into a tuple (re-scoring it under
        attribute scorers; the delta records the merged result)."""
        with self._mutex:
            old = self._by_tid.get(tid)
            if old is None:
                raise DataModelError(f"unknown tuple id {tid!r}")
            updated = old.with_attributes(**dict(attributes))
            tuples = [updated if t.tid == tid else t for t in self._tuples]
            group = self._groups[self._group_of[tid]]
            return self._adopt(
                tuples,
                self.explicit_rules,
                lambda v: Delta(
                    version=v,
                    op="update_score",
                    tid=tid,
                    attributes=dict(updated.attributes),
                    old_probability=old.probability,
                    old_attributes=dict(old.attributes),
                    group=group,
                ),
            )

    def apply_payload(self, op: str, payload: Mapping[str, Any]) -> Delta:
        """Dispatch a JSON mutation payload (the service's entry point).

        :param op: one of :data:`MUTATION_OPS`.
        :param payload: keyword payload; ``tid`` is always required,
            the rest depends on the operation.
        """
        try:
            tid = payload["tid"]
        except KeyError:
            raise DataModelError("mutation payload requires 'tid'") from None
        if op == "insert":
            return self.insert(
                tid,
                dict(payload.get("attributes") or {}),
                payload.get("probability", 1.0),
                group_with=payload.get("group_with"),
            )
        if op == "expire":
            return self.expire(tid)
        if op == "update_probability":
            try:
                probability = payload["probability"]
            except KeyError:
                raise DataModelError(
                    "update_probability requires 'probability'"
                ) from None
            return self.update_probability(tid, probability)
        if op == "update_score":
            attributes = payload.get("attributes")
            if not attributes:
                raise DataModelError(
                    "update_score requires a non-empty 'attributes'"
                )
            return self.update_score(tid, dict(attributes))
        raise DataModelError(
            f"unknown mutation op {op!r}; expected one of {MUTATION_OPS}"
        )

    def __repr__(self) -> str:
        return (
            f"MutableUncertainTable(name={self._name!r}, "
            f"tuples={len(self._tuples)}, version={self._version})"
        )
