"""Durability for mutable tables: write-ahead log + snapshots.

The serving tier keeps every mutable table, its change log, and the
standing-subscription registry in process memory — all of it gone on a
crash.  This module makes that state recoverable:

* :class:`TableWAL` — an append-only, fsync'd log of mutation records.
  Each record is framed ``<u32 length><u32 crc32><body>`` with a JSON
  body ``{"v": version, "op": op, "payload": {...}}`` — exactly the
  wire shape :meth:`~repro.standing.changelog.MutableUncertainTable.
  apply_payload` accepts, so replay *is* re-application and recovered
  state is byte-identical to the pre-crash state by construction.
* **Snapshots** — a JSON image of the table (tuples, rules, version)
  written atomically every ``snapshot_every`` records, after which the
  WAL is truncated.  Recovery is snapshot + WAL suffix, so replay cost
  is bounded regardless of table lifetime.
* :class:`DurableStore` — the per-``--data-dir`` layout::

      <data_dir>/tables/<name>.wal
      <data_dir>/tables/<name>.snapshot.json
      <data_dir>/subscriptions.json

  plus the durable standing-subscription manifest, so a restarted
  server re-registers every subscription at boot.

Failure semantics during recovery (:func:`read_wal_records`):

* a **torn tail** — the file ends before a frame completes (the
  signature of a crash mid-append) — is truncated: every complete
  record before it is replayed, the partial bytes are discarded;
* a **CRC mismatch** on a fully framed record means corruption (a bit
  flip, a partial overwrite) and recovery *refuses* with
  :class:`~repro.exceptions.WALCorruptError` naming the file and
  offset — silently dropping acknowledged mutations is worse than
  failing loudly;
* a **version mismatch** between a record and the table it replays
  into likewise refuses — it means the snapshot and the log disagree.

The WAL write happens in the mutable table's *observer* hook
(:meth:`~repro.standing.changelog.MutableUncertainTable.
attach_observer`), which runs under the table's mutation mutex after
the state swap — so the log's record order always matches the version
order, and a mutation is only acknowledged to the client after its
record is on disk.  Fault injection (``REPRO_FAULTS`` with
``wal_torn_write:p``, see :mod:`repro.service.faults`) cuts a record
mid-frame and simulates the crash that real torn writes accompany.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.exceptions import DurabilityError, WALCorruptError
from repro.standing.changelog import Delta, MutableUncertainTable
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable

#: Frame header: little-endian u32 body length + u32 CRC32 of the body.
_FRAME_HEADER = struct.Struct("<II")

#: Default number of WAL records between snapshot compactions.
DEFAULT_SNAPSHOT_EVERY = 256

#: Largest accepted record body (corrupt length fields fail fast
#: instead of attempting a gigabyte read).
MAX_RECORD_BYTES = 16 << 20


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------
def encode_record(document: dict[str, Any]) -> bytes:
    """One framed WAL record: header + canonical JSON body."""
    body = json.dumps(
        document, separators=(",", ":"), sort_keys=True, default=str
    ).encode()
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def delta_to_wire(delta: Delta) -> dict[str, Any]:
    """A delta as a replayable ``apply_payload`` record.

    The payload reconstructs the original mutation call: for an insert
    that joined an ME group, any *other* member of the delta's recorded
    group identifies the same rule, so ``group_with`` survives the
    round trip even though the original argument is not stored.
    """
    payload: dict[str, Any] = {"tid": delta.tid}
    if delta.op == "insert":
        payload["attributes"] = dict(delta.attributes or {})
        payload["probability"] = delta.probability
        partner = next(
            (tid for tid in delta.group if tid != delta.tid), None
        )
        if partner is not None:
            payload["group_with"] = partner
    elif delta.op == "update_probability":
        payload["probability"] = delta.probability
    elif delta.op == "update_score":
        payload["attributes"] = dict(delta.attributes or {})
    # "expire" needs only the tid.
    return {"v": delta.version, "op": delta.op, "payload": payload}


def read_wal_records(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every complete, checksummed record of a WAL file.

    Stops silently at a torn tail (incomplete frame at EOF); raises
    :class:`WALCorruptError` on a CRC mismatch or an implausible
    length field.  Use :func:`scan_wal` to also learn the byte offset
    where the valid prefix ends.
    """
    for record, _offset in scan_wal(path)[0]:
        yield record


def scan_wal(
    path: str | Path,
) -> tuple[list[tuple[dict[str, Any], int]], int]:
    """Parse a WAL file into ``([(record, start_offset), ...], end)``.

    ``end`` is the byte offset just past the last complete record —
    the truncation point for a torn tail.
    """
    path = Path(path)
    records: list[tuple[dict[str, Any], int]] = []
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return records, 0
    offset = 0
    header = _FRAME_HEADER.size
    while True:
        if offset + header > len(data):
            break  # torn (or clean EOF): header incomplete
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            raise WALCorruptError(
                f"{path}: record at offset {offset} declares an "
                f"implausible length ({length} bytes); refusing to "
                "recover from a corrupt log"
            )
        body_end = offset + header + length
        if body_end > len(data):
            break  # torn tail: body incomplete
        body = data[offset + header : body_end]
        if zlib.crc32(body) != crc:
            raise WALCorruptError(
                f"{path}: record at offset {offset} fails its CRC "
                "check; refusing to recover from a corrupt log "
                "(a torn *tail* would have been truncated instead)"
            )
        try:
            record = json.loads(body)
        except json.JSONDecodeError as exc:
            raise WALCorruptError(
                f"{path}: record at offset {offset} passes its CRC "
                f"but is not valid JSON: {exc}"
            ) from exc
        records.append((record, offset))
        offset = body_end
    return records, offset


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (best effort on platforms without it)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp + fsync + rename."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def snapshot_document(table: UncertainTable) -> dict[str, Any]:
    """A JSON image of a table's full state at its current version."""
    return {
        "name": table.name,
        "version": table.version,
        "tuples": [
            {
                "tid": t.tid,
                "attributes": dict(t.attributes),
                "probability": t.probability,
            }
            for t in table.tuples
        ],
        "rules": [list(rule) for rule in table.explicit_rules],
    }


def table_from_snapshot(document: dict[str, Any]) -> MutableUncertainTable:
    """Rebuild a mutable table from a snapshot, at its saved version."""
    try:
        tuples = [
            UncertainTuple(
                entry["tid"], entry["attributes"], entry["probability"]
            )
            for entry in document["tuples"]
        ]
        return MutableUncertainTable(
            tuples,
            [tuple(rule) for rule in document.get("rules", ())],
            name=document.get("name", "uncertain"),
            start_version=int(document["version"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DurabilityError(f"malformed snapshot document: {exc}") from exc


# ----------------------------------------------------------------------
# The per-table write-ahead log
# ----------------------------------------------------------------------
class TableWAL:
    """Appendable, fsync'd mutation log for one table.

    Not opened directly in most code — :class:`DurableStore` owns the
    file layout and the snapshot/compaction policy.  Thread-safe; in
    the serving path appends additionally arrive pre-serialized by the
    table's mutation mutex (the observer hook).

    :param faults: optional
        :class:`~repro.service.faults.FaultInjector`; the
        ``wal_torn_write`` point cuts a record mid-frame and then
        simulates the crash a real torn write accompanies.
    """

    def __init__(self, path: str | Path, *, faults: Any = None) -> None:
        self.path = Path(path)
        self._faults = faults
        self._lock = threading.Lock()
        self._file = open(self.path, "ab")
        self.records_written = 0

    def append(self, document: dict[str, Any]) -> None:
        """Frame, append and fsync one record before returning."""
        frame = encode_record(document)
        with self._lock:
            if self._faults is not None and self._faults.should(
                "wal_torn_write"
            ):
                # Simulate the crash a torn write accompanies: persist
                # a strict prefix of the frame, then die.  Recovery
                # truncates exactly this tail.
                cut = max(1, int(len(frame) * self._faults.fraction()))
                self._file.write(frame[: min(cut, len(frame) - 1)])
                self._file.flush()
                os.fsync(self._file.fileno())
                self._faults.crash("wal_torn_write")
            self._file.write(frame)
            self._file.flush()
            os.fsync(self._file.fileno())
            self.records_written += 1

    def append_delta(self, delta: Delta) -> None:
        self.append(delta_to_wire(delta))

    def truncate(self, offset: int = 0) -> None:
        """Cut the file to ``offset`` bytes (0 = empty, post-snapshot)."""
        with self._lock:
            self._file.truncate(offset)
            self._file.seek(0, os.SEEK_END)
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "TableWAL":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# The data-dir store
# ----------------------------------------------------------------------
class DurableStore:
    """Snapshots + WALs + the subscription manifest under one data dir.

    The store is the single integration point the service layer uses:

    * :meth:`recover_or_load` — boot path: snapshot + WAL replay when
      durable state exists (tables come back at their exact pre-crash
      version), else a cold load from the source plus a fresh
      version-0 snapshot.  Either way the returned table carries an
      attached observer that appends every future delta to its WAL and
      compacts into a snapshot every ``snapshot_every`` records.
    * :meth:`write_manifest` / :meth:`read_manifest` — the durable
      subscription manifest (JSON, atomically replaced).
    * :meth:`discard` — drop a table's durable state (the reload
      endpoint's return-to-source semantics).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        faults: Any = None,
        manifest_name: str = "subscriptions.json",
    ) -> None:
        if snapshot_every < 1:
            raise DurabilityError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.root = Path(root)
        self._manifest_name = manifest_name
        self.snapshot_every = snapshot_every
        self._faults = faults
        self._wals: dict[str, TableWAL] = {}
        self._lock = threading.Lock()
        self.tables_dir.mkdir(parents=True, exist_ok=True)
        #: Recovery outcomes per table (surfaced in startup logging and
        #: the chaos harness): name -> {"snapshot_version", "replayed",
        #: "truncated_bytes", "version"}.
        self.recovery_info: dict[str, dict[str, Any]] = {}

    @property
    def tables_dir(self) -> Path:
        return self.root / "tables"

    @property
    def manifest_path(self) -> Path:
        return self.root / self._manifest_name

    def wal_path(self, name: str) -> Path:
        return self.tables_dir / f"{name}.wal"

    def snapshot_path(self, name: str) -> Path:
        return self.tables_dir / f"{name}.snapshot.json"

    # ------------------------------------------------------------------
    # Boot: recovery
    # ------------------------------------------------------------------
    def recover_or_load(
        self,
        name: str,
        loader: Callable[[], UncertainTable],
        *,
        read_only: bool = False,
    ) -> MutableUncertainTable:
        """The table under ``name``, recovered or cold-loaded.

        Recovery replays the WAL suffix over the latest snapshot via
        ``apply_payload`` — the same dispatch live mutations take — so
        the recovered table (contents *and* version) is byte-identical
        to what a cold process that applied the same mutation prefix
        would hold.

        ``read_only=True`` is the sharded-serving replica path: the
        table recovers to the identical state but this process writes
        *nothing* — no base snapshot on a cold load, no torn-tail
        truncation, and no WAL observer.  Only the shard owner of a
        table persists; replicas stay current via the router's
        mutation fan-out instead.
        """
        snapshot_path = self.snapshot_path(name)
        info: dict[str, Any] = {
            "snapshot_version": None,
            "replayed": 0,
            "truncated_bytes": 0,
        }
        if snapshot_path.exists():
            try:
                document = json.loads(snapshot_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise DurabilityError(
                    f"cannot read snapshot {snapshot_path}: {exc}"
                ) from exc
            table = table_from_snapshot(document)
            info["snapshot_version"] = table.version
        else:
            table = MutableUncertainTable.from_table(loader())
            if not read_only:
                # Persist the base image immediately: a crash before
                # the first compaction must still find a replay base.
                self._write_snapshot(name, table)
        info["replayed"], info["truncated_bytes"] = self._replay(
            name, table, truncate_torn=not read_only
        )
        info["version"] = table.version
        self.recovery_info[name] = info
        if not read_only:
            self.attach(name, table)
        return table

    def _replay(
        self,
        name: str,
        table: MutableUncertainTable,
        *,
        truncate_torn: bool = True,
    ) -> tuple[int, int]:
        """Apply the WAL suffix to ``table``; returns (replayed,
        torn bytes truncated)."""
        wal_path = self.wal_path(name)
        records, end = scan_wal(wal_path)
        replayed = 0
        for record, offset in records:
            version = record.get("v")
            if version is None or version <= table.version:
                continue  # pre-snapshot record left by an older layout
            if version != table.version + 1:
                raise WALCorruptError(
                    f"{wal_path}: record at offset {offset} carries "
                    f"version {version} but the table is at "
                    f"{table.version}; snapshot and log disagree"
                )
            try:
                delta = table.apply_payload(
                    record["op"], record["payload"]
                )
            except Exception as exc:
                raise WALCorruptError(
                    f"{wal_path}: record at offset {offset} "
                    f"(version {version}) does not re-apply: {exc}"
                ) from exc
            if delta.version != version:
                raise WALCorruptError(
                    f"{wal_path}: replaying the record at offset "
                    f"{offset} produced version {delta.version}, "
                    f"expected {version}"
                )
            replayed += 1
        torn = 0
        try:
            size = wal_path.stat().st_size
        except FileNotFoundError:
            size = 0
        if size > end:
            torn = size - end
            if truncate_torn:
                with open(wal_path, "ab") as handle:
                    handle.truncate(end)
                    handle.flush()
                    os.fsync(handle.fileno())
        return replayed, torn

    # ------------------------------------------------------------------
    # Live appends + compaction
    # ------------------------------------------------------------------
    def attach(self, name: str, table: MutableUncertainTable) -> None:
        """Open the table's WAL and install the append/compact observer."""
        with self._lock:
            old = self._wals.pop(name, None)
            if old is not None:
                old.close()
            wal = TableWAL(self.wal_path(name), faults=self._faults)
            self._wals[name] = wal

        def observe(delta: Delta) -> None:
            # Under the table's mutation mutex: record order == version
            # order, and the mutation is not acknowledged until the
            # record (or a compacting snapshot) is on disk.
            wal.append_delta(delta)
            if wal.records_written >= self.snapshot_every:
                self._write_snapshot(name, table)
                wal.truncate(0)
                wal.records_written = 0

        table.attach_observer(observe)

    def _write_snapshot(self, name: str, table: UncertainTable) -> None:
        document = snapshot_document(table)
        _atomic_write(
            self.snapshot_path(name),
            json.dumps(document, separators=(",", ":"), default=str).encode(),
        )

    def discard(self, name: str) -> None:
        """Drop a table's durable state (snapshot + WAL)."""
        with self._lock:
            wal = self._wals.pop(name, None)
            if wal is not None:
                wal.close()
        for path in (self.snapshot_path(name), self.wal_path(name)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        _fsync_dir(self.tables_dir)

    # ------------------------------------------------------------------
    # The subscription manifest
    # ------------------------------------------------------------------
    def write_manifest(self, entries: list[dict[str, Any]]) -> None:
        """Atomically replace the durable subscription manifest."""
        _atomic_write(
            self.manifest_path,
            json.dumps(
                {"subscriptions": entries}, indent=2, default=str
            ).encode(),
        )

    def read_manifest(self) -> list[dict[str, Any]]:
        """The persisted subscription entries ([] when absent)."""
        try:
            document = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return []
        except (OSError, json.JSONDecodeError) as exc:
            raise DurabilityError(
                f"cannot read subscription manifest "
                f"{self.manifest_path}: {exc}"
            ) from exc
        entries = document.get("subscriptions")
        if not isinstance(entries, list):
            raise DurabilityError(
                f"malformed subscription manifest {self.manifest_path}"
            )
        return entries

    def close(self) -> None:
        with self._lock:
            for wal in self._wals.values():
                wal.close()
            self._wals.clear()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
