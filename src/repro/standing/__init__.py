"""Standing queries: mutable tables, change logs, delta maintenance.

The subsystem has three layers:

* :mod:`repro.standing.changelog` — :class:`MutableUncertainTable`,
  whose in-place mutations are validated, version-bumped, and recorded
  as :class:`Delta` entries in an append-only :class:`ChangeLog`;
* :mod:`repro.standing.registry` — the :class:`StandingRegistry`,
  which keeps registered queries' materialized answers current per
  delta through the skip / patch / recompute tiers (see that module's
  docstring for the Theorem-2 applicability argument);
* :mod:`repro.standing.wal` — durability: an fsync'd, CRC-framed
  write-ahead log per mutable table plus periodic snapshot
  compaction and the durable subscription manifest, so ``repro serve
  --data-dir`` recovers every table at its exact pre-crash version;
* the service endpoints (``/v1/mutate``, ``/v1/subscribe``,
  ``/v1/watch``) in :mod:`repro.service.server`, which expose both
  over HTTP with long-poll watching.
"""

from repro.standing.changelog import (
    MUTATION_OPS,
    ChangeLog,
    Delta,
    MutableUncertainTable,
)
from repro.standing.registry import (
    MAX_STICKY_RETRIES,
    PATCH,
    RECOMPUTE,
    SKIP,
    PrefixFingerprint,
    PrefixMirror,
    StandingRegistry,
    Subscription,
    classify_delta,
)
from repro.standing.wal import (
    DurableStore,
    TableWAL,
    delta_to_wire,
    read_wal_records,
    scan_wal,
    snapshot_document,
    table_from_snapshot,
)

__all__ = [
    "MUTATION_OPS",
    "ChangeLog",
    "Delta",
    "MutableUncertainTable",
    "PATCH",
    "RECOMPUTE",
    "SKIP",
    "PrefixFingerprint",
    "PrefixMirror",
    "StandingRegistry",
    "Subscription",
    "classify_delta",
    "MAX_STICKY_RETRIES",
    "DurableStore",
    "TableWAL",
    "delta_to_wire",
    "read_wal_records",
    "scan_wal",
    "snapshot_document",
    "table_from_snapshot",
]
