"""Standing queries: mutable tables, change logs, delta maintenance.

The subsystem has three layers:

* :mod:`repro.standing.changelog` — :class:`MutableUncertainTable`,
  whose in-place mutations are validated, version-bumped, and recorded
  as :class:`Delta` entries in an append-only :class:`ChangeLog`;
* :mod:`repro.standing.registry` — the :class:`StandingRegistry`,
  which keeps registered queries' materialized answers current per
  delta through the skip / patch / recompute tiers (see that module's
  docstring for the Theorem-2 applicability argument);
* the service endpoints (``/v1/mutate``, ``/v1/subscribe``,
  ``/v1/watch``) in :mod:`repro.service.server`, which expose both
  over HTTP with long-poll watching.
"""

from repro.standing.changelog import (
    MUTATION_OPS,
    ChangeLog,
    Delta,
    MutableUncertainTable,
)
from repro.standing.registry import (
    PATCH,
    RECOMPUTE,
    SKIP,
    PrefixFingerprint,
    PrefixMirror,
    StandingRegistry,
    Subscription,
    classify_delta,
)

__all__ = [
    "MUTATION_OPS",
    "ChangeLog",
    "Delta",
    "MutableUncertainTable",
    "PATCH",
    "RECOMPUTE",
    "SKIP",
    "PrefixFingerprint",
    "PrefixMirror",
    "StandingRegistry",
    "Subscription",
    "classify_delta",
]
