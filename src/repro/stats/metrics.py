"""Distances between two discrete score distributions.

Used by the coalescing ablation (how much accuracy does a smaller line
budget cost?) and by the Monte-Carlo cross-checks in the integration
tests.  All metrics normalize both inputs, so distributions of unequal
mass compare as conditional distributions.
"""

from __future__ import annotations

import numpy as np

from repro.core.pmf import ScorePMF
from repro.exceptions import EmptyDistributionError


def _aligned(
    a: ScorePMF, b: ScorePMF
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Common support + normalized mass vectors of both PMFs."""
    if a.is_empty() or b.is_empty():
        raise EmptyDistributionError("cannot compare empty distributions")
    support = np.union1d(np.asarray(a.scores), np.asarray(b.scores))
    pa = np.zeros(support.size)
    pb = np.zeros(support.size)
    pa[np.searchsorted(support, np.asarray(a.scores))] = np.asarray(a.probs)
    pb[np.searchsorted(support, np.asarray(b.scores))] = np.asarray(b.probs)
    return support, pa / pa.sum(), pb / pb.sum()


def total_variation_distance(a: ScorePMF, b: ScorePMF) -> float:
    """TV distance: half the L1 difference of the normalized masses.

    Sensitive to exact score placement; two distributions whose lines
    are shifted by epsilon have TV distance 1.  Prefer
    :func:`wasserstein_distance` for coalescing-error measurements.
    """
    _, pa, pb = _aligned(a, b)
    return float(0.5 * np.abs(pa - pb).sum())


def wasserstein_distance(a: ScorePMF, b: ScorePMF) -> float:
    """1-Wasserstein (earth mover's) distance on the real line.

    Equals the integral of |CDF_a - CDF_b|; the natural measure of
    coalescing error because merging two lines δ apart moves at most
    their mass by δ/2.
    """
    support, pa, pb = _aligned(a, b)
    cdf_diff = np.cumsum(pa - pb)[:-1]
    gaps = np.diff(support)
    return float(np.abs(cdf_diff * gaps).sum()) if support.size > 1 else 0.0


def kolmogorov_smirnov_distance(a: ScorePMF, b: ScorePMF) -> float:
    """KS distance: max absolute CDF difference."""
    _, pa, pb = _aligned(a, b)
    return float(np.abs(np.cumsum(pa - pb)).max())
