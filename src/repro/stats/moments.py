"""Moments of discrete (score, probability) distributions.

Thin numpy wrappers used by the statistics helpers, the benchmark
reporting and tests.  All functions normalize by the total mass, so
truncated distributions (mass < 1) are treated as conditional
distributions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import EmptyDistributionError


def _as_arrays(
    scores: Sequence[float], probs: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    s = np.asarray(scores, dtype=float)
    p = np.asarray(probs, dtype=float)
    if s.size == 0 or p.sum() <= 0.0:
        raise EmptyDistributionError("distribution is empty or massless")
    if s.shape != p.shape:
        raise EmptyDistributionError(
            f"scores and probs differ in length: {s.shape} vs {p.shape}"
        )
    return s, p / p.sum()


def distribution_mean(
    scores: Sequence[float], probs: Sequence[float]
) -> float:
    """Mean of the normalized distribution."""
    s, p = _as_arrays(scores, probs)
    return float(np.dot(s, p))


def distribution_variance(
    scores: Sequence[float], probs: Sequence[float]
) -> float:
    """Variance of the normalized distribution (clamped at 0)."""
    s, p = _as_arrays(scores, probs)
    mean = float(np.dot(s, p))
    return max(float(np.dot((s - mean) ** 2, p)), 0.0)


def distribution_std(
    scores: Sequence[float], probs: Sequence[float]
) -> float:
    """Standard deviation of the normalized distribution."""
    return float(np.sqrt(distribution_variance(scores, probs)))


def distribution_skewness(
    scores: Sequence[float], probs: Sequence[float]
) -> float:
    """Skewness; 0 for symmetric or degenerate distributions."""
    s, p = _as_arrays(scores, probs)
    mean = float(np.dot(s, p))
    var = float(np.dot((s - mean) ** 2, p))
    if var <= 0.0:
        return 0.0
    third = float(np.dot((s - mean) ** 3, p))
    return third / var**1.5


def distribution_entropy(
    scores: Sequence[float], probs: Sequence[float]
) -> float:
    """Shannon entropy (nats) of the normalized distribution."""
    _, p = _as_arrays(scores, probs)
    nonzero = p[p > 0.0]
    return float(-(nonzero * np.log(nonzero)).sum())
