"""ASCII rendering of score distributions.

The examples and benchmark reports print the textual analogue of the
paper's figures: a horizontal-bar histogram of the top-k score
distribution with the U-Topk and typical scores marked.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.pmf import ScorePMF

#: Character budget of the longest bar.
_BAR_WIDTH = 48


def render_histogram(
    buckets: Sequence[tuple[float, float, float]],
    *,
    markers: Iterable[tuple[float, str]] = (),
    width: int = _BAR_WIDTH,
) -> str:
    """Render ``(low, high, prob)`` buckets as ASCII bars.

    :param markers: ``(score, label)`` pairs; each label is appended to
        the bucket containing its score (e.g. ``(118.0, "U-Topk")``).
    :param width: character budget of the tallest bar.
    """
    if not buckets:
        return "(empty distribution)"
    peak = max(prob for _, _, prob in buckets) or 1.0
    marks = list(markers)
    lines = []
    for low, high, prob in buckets:
        bar = "#" * max(1, round(width * prob / peak)) if prob > 0 else ""
        labels = [
            label
            for score, label in marks
            if low <= score < high or (high == buckets[-1][1] and score == high)
        ]
        suffix = ("  <-- " + ", ".join(labels)) if labels else ""
        lines.append(f"[{low:10.2f}, {high:10.2f})  {prob:7.4f} {bar}{suffix}")
    return "\n".join(lines)


def render_pmf(
    pmf: ScorePMF,
    *,
    buckets: int = 24,
    markers: Iterable[tuple[float, str]] = (),
    width: int = _BAR_WIDTH,
) -> str:
    """Render a :class:`ScorePMF` as an equi-width ASCII histogram.

    >>> from repro.core.pmf import ScorePMF
    >>> print(render_pmf(ScorePMF([(1, 0.5, None), (2, 0.5, None)]),
    ...                  buckets=2))  # doctest: +ELLIPSIS
    [      1.00, ...
    """
    if pmf.is_empty():
        return "(empty distribution)"
    span = pmf.support_span()
    if span <= 0.0:
        line = pmf[0]
        return f"[{line.score:10.2f}]  {line.prob:7.4f} " + "#" * width
    return render_histogram(
        pmf.histogram(span / buckets), markers=markers, width=width
    )
