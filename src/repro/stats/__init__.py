"""Statistics utilities over score distributions.

* :mod:`repro.stats.moments` — moments/entropy over raw (score, prob)
  arrays.
* :mod:`repro.stats.metrics` — distances between two distributions
  (total variation, 1-Wasserstein, Kolmogorov–Smirnov); used to
  quantify the coalescing accuracy trade-off.
* :mod:`repro.stats.histogram` — ASCII rendering of PMFs for the
  examples and benchmark reports (the textual analogue of the paper's
  figures).
"""

from repro.stats.moments import (
    distribution_entropy,
    distribution_mean,
    distribution_skewness,
    distribution_std,
    distribution_variance,
)
from repro.stats.metrics import (
    kolmogorov_smirnov_distance,
    total_variation_distance,
    wasserstein_distance,
)
from repro.stats.histogram import render_histogram, render_pmf

__all__ = [
    "distribution_entropy",
    "distribution_mean",
    "distribution_skewness",
    "distribution_std",
    "distribution_variance",
    "kolmogorov_smirnov_distance",
    "total_variation_distance",
    "wasserstein_distance",
    "render_histogram",
    "render_pmf",
]
