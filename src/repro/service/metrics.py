"""Service metrics: latency histograms, batch sizes, cache hit rates.

Everything is rendered as one JSON document by
:meth:`ServiceMetrics.snapshot` (the ``/metrics`` endpoint)::

    {
      "uptime_s": ...,
      "requests": {"<endpoint>": {"count", "errors", "latency_ms":
                   {"count", "sum", "mean", "p50", "p95", "p99",
                    "buckets": {"<=1": n, ...}}}},
      "batches": {"count", "requests", "mean_size",
                  "sizes": {"1": n, "2": n, "4": n, ...}},
      "queue": {"depth", "max_depth", "rejected"},
      "degraded": {"count", "reasons": {"deadline": n, "queue": n,
                   "breaker": n}},
      "watch": {"streams", "disconnects"},
      "breaker": <CircuitBreaker.describe(): trips, open, tracked>,
      "cache": <Session.cache_info() plus per-stage hit rates>,
      "fusion": <Session.fusion_info(): batches, groups, fused_specs,
                 sweeps_saved>,
      "storage": per disk-backed table, the page caches'
                 TableStore.cache_info() — hit/miss/eviction counters
                 plus the byte-budget fields (absent for all-resident
                 catalogs)
    }

Histograms use fixed power-of-two bucket upper bounds, so recording
is O(#buckets) with no allocation, and percentiles are read from the
cumulative bucket counts (upper-bound estimates, good to one bucket).
All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any

#: Latency bucket upper bounds, in milliseconds (last bucket is +inf).
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
    512.0, 1024.0, 2048.0, 4096.0,
)

#: Batch-size bucket upper bounds (last bucket is +inf).
BATCH_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


class _Histogram:
    """Fixed-bucket histogram with sum/count (not thread-safe itself;
    callers hold the owning :class:`ServiceMetrics` lock)."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def quantile(self, q: float) -> float | None:
        """Upper-bound estimate of the q-quantile from the buckets."""
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")
        return float("inf")

    def snapshot(self) -> dict[str, Any]:
        labels = [f"<={b:g}" for b in self.bounds] + ["+inf"]
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.total / self.count, 6) if self.count else None,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {
                label: count
                for label, count in zip(labels, self.counts)
                if count
            },
        }


class ServiceMetrics:
    """Thread-safe counters and histograms for the query service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._requests: dict[str, dict[str, Any]] = {}
        self._batches = _Histogram(tuple(float(b) for b in BATCH_BUCKETS))
        self._batched_requests = 0
        self._queue_depth = 0
        self._max_queue_depth = 0
        self._rejected = 0
        self._degraded: dict[str, int] = {}
        self._watch_streams = 0
        self._watch_disconnects = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(
        self, endpoint: str, seconds: float, *, error: bool = False
    ) -> None:
        """One served request: its endpoint, wall latency and outcome."""
        with self._lock:
            entry = self._requests.get(endpoint)
            if entry is None:
                entry = self._requests[endpoint] = {
                    "count": 0,
                    "errors": 0,
                    "latency": _Histogram(LATENCY_BUCKETS_MS),
                }
            entry["count"] += 1
            if error:
                entry["errors"] += 1
            entry["latency"].observe(seconds * 1e3)

    def record_batch(self, size: int) -> None:
        """One executed micro-batch of ``size`` grouped requests."""
        with self._lock:
            self._batches.observe(float(size))
            self._batched_requests += size

    def record_queue_depth(self, depth: int) -> None:
        """The executor queue depth after an enqueue."""
        with self._lock:
            self._queue_depth = depth
            if depth > self._max_queue_depth:
                self._max_queue_depth = depth

    def record_rejection(self) -> None:
        """One request refused with backpressure (HTTP 429)."""
        with self._lock:
            self._rejected += 1

    def record_degraded(self, reason: str) -> None:
        """One request re-planned onto the degraded MC tier."""
        with self._lock:
            self._degraded[reason] = self._degraded.get(reason, 0) + 1

    def record_watch_stream(self) -> None:
        """One /v1/watch SSE stream opened."""
        with self._lock:
            self._watch_streams += 1

    def record_watch_disconnect(self) -> None:
        """One watch stream torn down because the client went away."""
        with self._lock:
            self._watch_disconnects += 1

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def snapshot(
        self,
        cache_info: dict[str, dict[str, int]] | None = None,
        fusion_info: dict[str, int] | None = None,
        standing_info: dict[str, int] | None = None,
        breaker_info: dict[str, Any] | None = None,
        storage_info: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """The full metrics document (see the module docstring)."""
        with self._lock:
            requests = {
                endpoint: {
                    "count": entry["count"],
                    "errors": entry["errors"],
                    "latency_ms": entry["latency"].snapshot(),
                }
                for endpoint, entry in sorted(self._requests.items())
            }
            batches = self._batches
            document: dict[str, Any] = {
                "uptime_s": round(time.time() - self._started, 3),
                "requests": requests,
                "batches": {
                    "count": batches.count,
                    "requests": self._batched_requests,
                    "mean_size": (
                        round(self._batched_requests / batches.count, 3)
                        if batches.count
                        else None
                    ),
                    "sizes": {
                        label: count
                        for label, count in zip(
                            [f"<={b}" for b in BATCH_BUCKETS] + ["+inf"],
                            batches.counts,
                        )
                        if count
                    },
                },
                "queue": {
                    "depth": self._queue_depth,
                    "max_depth": self._max_queue_depth,
                    "rejected": self._rejected,
                },
                "degraded": {
                    "count": sum(self._degraded.values()),
                    "reasons": dict(sorted(self._degraded.items())),
                },
                "watch": {
                    "streams": self._watch_streams,
                    "disconnects": self._watch_disconnects,
                },
            }
        if cache_info is not None:
            cache: dict[str, Any] = {}
            for stage, info in cache_info.items():
                lookups = info["hits"] + info["misses"]
                cache[stage] = dict(
                    info,
                    hit_rate=(
                        round(info["hits"] / lookups, 4) if lookups else None
                    ),
                )
            document["cache"] = cache
        if fusion_info is not None:
            document["fusion"] = dict(fusion_info)
        if standing_info is not None:
            document["standing"] = dict(standing_info)
        if breaker_info is not None:
            document["breaker"] = dict(breaker_info)
        if storage_info is not None:
            document["storage"] = dict(storage_info)
        return document
