"""Deterministic fault injection for the serving stack.

Robustness claims are only as good as the failures they were tested
against, so the service threads explicit *fault points* through its
hot paths — WAL appends, executor stages — and this module decides,
per point, whether a configured fault fires.  Faults are configured
through one environment variable::

    REPRO_FAULTS="wal_torn_write:0.05,exec_delay:200ms,exec_error:0.02"
    REPRO_FAULTS_SEED=42          # optional: reproducible firing order

The grammar is a comma-separated list of ``point:value`` clauses:

* a bare float in ``[0, 1]`` is a **probability fault** — the point
  fires with that probability per visit (``wal_torn_write``,
  ``exec_error``);
* a duration (``200ms``, ``1.5s``) is a **latency fault** — every
  visit to the point sleeps that long (``exec_delay``).

Known points (new operators should register theirs here — see
CONTRIBUTING.md):

========================  ==========  ====================================
point                     kind        effect when it fires
========================  ==========  ====================================
``wal_torn_write``        probability a WAL append persists only a strict
                                      prefix of its frame, then the
                                      process crashes (exit code 70 in
                                      serve mode) — the scenario crash
                                      recovery must truncate
``exec_delay``            duration    every executor batch sleeps before
                                      running (drives deadline-based
                                      degradation in the chaos harness)
``exec_error``            probability an executor batch fails with
                                      :class:`~repro.exceptions.
                                      FaultInjectedError` (a retryable
                                      service error)
========================  ==========  ====================================

Probability decisions come from one seeded :class:`random.Random`, so
a chaos run with ``REPRO_FAULTS_SEED`` set is reproducible.  The
injector is intentionally tiny and dependency-free: production code
guards every use behind ``if faults is not None`` / a no-op default,
so the disabled path costs one attribute check.
"""

from __future__ import annotations

import os
import random
import re
import threading
import time
from typing import Mapping

from repro.exceptions import FaultInjectedError, ServiceError

#: Environment variables the injector reads.
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Exit code of a simulated crash (serve mode), chosen to be
#: distinguishable from SIGKILL (-9) and clean shutdown (0) in the
#: chaos harness.
CRASH_EXIT_CODE = 70

_DURATION = re.compile(r"^(?P<value>\d+(?:\.\d+)?)(?P<unit>ms|s)$")


def _parse_clause(clause: str) -> tuple[str, float, bool]:
    """``point:value`` -> (point, probability-or-seconds, is_duration)."""
    point, sep, value = clause.partition(":")
    point = point.strip()
    value = value.strip()
    if not sep or not point or not value:
        raise ServiceError(
            f"fault clause must be point:value, got {clause!r}"
        )
    match = _DURATION.match(value)
    if match:
        seconds = float(match.group("value"))
        if match.group("unit") == "ms":
            seconds /= 1000.0
        return point, seconds, True
    try:
        probability = float(value)
    except ValueError:
        raise ServiceError(
            f"fault value must be a probability or a duration "
            f"(200ms, 1.5s), got {value!r} in {clause!r}"
        ) from None
    if not 0.0 <= probability <= 1.0:
        raise ServiceError(
            f"fault probability must be in [0, 1], got {probability} "
            f"in {clause!r}"
        )
    return point, probability, False


class FaultInjector:
    """Per-point fault decisions for one process.

    :param spec: the ``REPRO_FAULTS`` clause list (may be empty).
    :param seed: RNG seed for probability faults (None = nondeterministic).
    :param crash_mode: what :meth:`crash` does — ``"exit"`` terminates
        the process with :data:`CRASH_EXIT_CODE` (serve mode: a torn
        write *is* a crash), ``"raise"`` raises
        :class:`FaultInjectedError` (in-process tests).
    """

    def __init__(
        self,
        spec: str = "",
        *,
        seed: int | None = None,
        crash_mode: str = "raise",
    ) -> None:
        if crash_mode not in ("exit", "raise"):
            raise ServiceError(
                f"crash_mode must be 'exit' or 'raise', got {crash_mode!r}"
            )
        self.crash_mode = crash_mode
        self._probabilities: dict[str, float] = {}
        self._delays: dict[str, float] = {}
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.fired: dict[str, int] = {}
        for clause in filter(None, (c.strip() for c in spec.split(","))):
            point, value, is_duration = _parse_clause(clause)
            if is_duration:
                self._delays[point] = value
            else:
                self._probabilities[point] = value

    @classmethod
    def from_env(
        cls,
        environ: Mapping[str, str] | None = None,
        *,
        crash_mode: str = "raise",
    ) -> "FaultInjector | None":
        """An injector from ``REPRO_FAULTS`` (None when unset/empty)."""
        environ = os.environ if environ is None else environ
        spec = environ.get(FAULTS_ENV, "").strip()
        if not spec:
            return None
        seed_raw = environ.get(FAULTS_SEED_ENV, "").strip()
        seed = int(seed_raw) if seed_raw else None
        return cls(spec, seed=seed, crash_mode=crash_mode)

    def __bool__(self) -> bool:
        return bool(self._probabilities or self._delays)

    def describe(self) -> dict[str, object]:
        """Configured faults + firing counts (for /healthz and logs)."""
        return {
            "probabilities": dict(self._probabilities),
            "delays_s": dict(self._delays),
            "fired": dict(self.fired),
        }

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def should(self, point: str) -> bool:
        """Does the probability fault at ``point`` fire this visit?"""
        probability = self._probabilities.get(point)
        if not probability:
            return False
        with self._lock:
            fire = self._rng.random() < probability
            if fire:
                self.fired[point] = self.fired.get(point, 0) + 1
        return fire

    def fraction(self) -> float:
        """A deterministic fraction in (0, 1) — e.g. where to cut a
        torn frame."""
        with self._lock:
            return min(0.999, max(0.001, self._rng.random()))

    def delay(self, point: str) -> float:
        """Sleep the latency fault at ``point`` (0 when unconfigured);
        returns the seconds slept."""
        seconds = self._delays.get(point, 0.0)
        if seconds > 0:
            with self._lock:
                self.fired[point] = self.fired.get(point, 0) + 1
            time.sleep(seconds)
        return seconds

    def crash(self, point: str) -> None:
        """Simulate the crash a fired fault accompanies.

        Serve mode (``crash_mode="exit"``) terminates the process
        immediately — no atexit hooks, no flushes — exactly like the
        power loss a torn write implies.  Test mode raises instead so
        in-process suites can assert on the failure.
        """
        if self.crash_mode == "exit":
            os._exit(CRASH_EXIT_CODE)
        raise FaultInjectedError(
            f"injected crash at fault point {point!r}"
        )

    def raise_if(self, point: str) -> None:
        """Raise :class:`FaultInjectedError` when the probability
        fault at ``point`` fires (the executor's error fault)."""
        if self.should(point):
            raise FaultInjectedError(
                f"injected error at fault point {point!r}"
            )
