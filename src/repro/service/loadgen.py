"""A closed-loop load generator for the query service.

``repro loadgen`` drives a running ``repro serve`` instance with a
deterministic mixed-semantics workload: ``concurrency`` client
threads each keep exactly one request in flight (closed loop), drawing
the next request from a seeded rotation over all registered answer
semantics, the distribution and typical endpoints, and a small sweep
of ``k``/``p_tau`` shapes.  429 backpressure responses are retried
after the server's ``Retry-After`` hint and counted separately, so an
overloaded server degrades throughput instead of failing the run.

The same machinery runs in-process in ``benchmarks/bench_service.py``
(batched vs. unbatched ≥2x) and in the ``service-smoke`` CI job.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.exceptions import ServiceError

#: Endpoint mix of the default workload: (endpoint, extra fields).
#: ``semantics: None`` is filled from the rotation below.
DEFAULT_SEMANTICS_MIX = (
    "typical",
    "u_topk",
    "pt_k",
    "u_kranks",
    "global_topk",
    "expected_ranks",
)

#: (k, p_tau) shapes the workload sweeps.
DEFAULT_SHAPES = ((5, 0.0), (10, 0.0), (5, 0.1))


@dataclass
class LoadgenResult:
    """Aggregate outcome of one closed-loop run."""

    requests: int
    ok: int
    elapsed_s: float
    throughput_rps: float
    latencies_ms: list[float] = field(repr=False, default_factory=list)
    status_counts: dict[int, int] = field(default_factory=dict)
    retried_429: int = 0
    transport_errors: int = 0
    degraded: int = 0

    def percentile_ms(self, q: float) -> float | None:
        if not self.latencies_ms:
            return None
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def summary(self) -> dict[str, Any]:
        """JSON-ready summary (printed by ``repro loadgen``)."""
        return {
            "requests": self.requests,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_ms": {
                "p50": self.percentile_ms(0.50),
                "p95": self.percentile_ms(0.95),
                "p99": self.percentile_ms(0.99),
            },
            "status_counts": {
                str(code): count
                for code, count in sorted(self.status_counts.items())
            },
            "retried_429": self.retried_429,
            "transport_errors": self.transport_errors,
            "degraded": self.degraded,
        }


def _retry_after_seconds(headers: Any) -> float | None:
    """The Retry-After hint of a response, if present and numeric."""
    value = headers.get("Retry-After") if headers is not None else None
    try:
        return float(value) if value is not None else None
    except ValueError:
        return None


def _http_json(
    url: str, payload: dict[str, Any] | None, timeout: float
) -> tuple[int, dict[str, Any], float | None]:
    """One request; returns (status, parsed body, Retry-After seconds).

    GET when no payload; the Retry-After element is ``None`` unless
    the server sent a numeric hint (it does on 429).
    """
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read() or b"{}"),
                _retry_after_seconds(response.headers),
            )
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read() or b"{}")
        except json.JSONDecodeError:
            body = {}
        return exc.code, body, _retry_after_seconds(exc.headers)


def discover_tables(base_url: str, *, timeout: float = 10.0) -> list[str]:
    """Table names served by a running instance (via ``/healthz``)."""
    status, body, _ = _http_json(f"{base_url}/healthz", None, timeout)
    if status != 200 or "tables" not in body:
        raise ServiceError(
            f"cannot discover tables at {base_url}/healthz "
            f"(status {status})"
        )
    return sorted(body["tables"])


def build_workload(
    tables: list[str],
    requests: int,
    *,
    scorer: str = "score",
    seed: int = 0,
) -> list[tuple[str, dict[str, Any]]]:
    """A deterministic mixed workload: (endpoint, payload) pairs.

    Requests rotate over tables, the semantics mix (via
    ``/v1/answer``), ``/v1/distribution`` and ``/v1/typical``, and the
    ``(k, p_tau)`` shape sweep; a seeded shuffle interleaves the
    groups so batches form from genuinely mixed traffic.
    """
    if not tables:
        raise ServiceError("workload needs >= 1 table")
    workload: list[tuple[str, dict[str, Any]]] = []
    endpoints = (
        [("answer", semantics) for semantics in DEFAULT_SEMANTICS_MIX]
        + [("distribution", None), ("typical", None)]
    )
    for index in range(requests):
        table = tables[index % len(tables)]
        k, p_tau = DEFAULT_SHAPES[index % len(DEFAULT_SHAPES)]
        endpoint, semantics = endpoints[index % len(endpoints)]
        payload: dict[str, Any] = {
            "table": table,
            "scorer": scorer,
            "k": k,
            "p_tau": p_tau,
        }
        if semantics is not None:
            payload["semantics"] = semantics
        workload.append((endpoint, payload))
    random.Random(seed).shuffle(workload)
    return workload


def _run_loadgen_child(kwargs: dict[str, Any]) -> dict[str, Any]:
    """One child process's share of the run (top level: picklable)."""
    return asdict(run_loadgen(**kwargs))


def run_loadgen(
    base_url: str,
    *,
    requests: int = 100,
    concurrency: int = 8,
    tables: list[str] | None = None,
    scorer: str = "score",
    seed: int = 0,
    timeout: float = 60.0,
    max_429_retries: int = 50,
    processes: int = 1,
) -> LoadgenResult:
    """Drive ``requests`` total requests with a closed-loop thread pool.

    ``processes > 1`` splits the workload over that many *client
    processes* (each still running ``concurrency`` closed-loop
    threads), sidestepping the generator's own GIL when benchmarking a
    multi-worker server; results merge into one summary.
    """
    if requests < 1:
        raise ServiceError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ServiceError(f"concurrency must be >= 1, got {concurrency}")
    if processes < 1:
        raise ServiceError(f"processes must be >= 1, got {processes}")
    base_url = base_url.rstrip("/")
    if tables is None:
        tables = discover_tables(base_url, timeout=timeout)
    if processes > 1:
        return _run_multiprocess(
            base_url,
            requests=requests,
            concurrency=concurrency,
            tables=tables,
            scorer=scorer,
            seed=seed,
            timeout=timeout,
            max_429_retries=max_429_retries,
            processes=processes,
        )
    workload = build_workload(tables, requests, scorer=scorer, seed=seed)

    lock = threading.Lock()
    cursor = 0
    latencies: list[float] = []
    status_counts: dict[int, int] = {}
    retried = 0
    transport_errors = 0
    degraded = 0

    def next_index() -> int | None:
        nonlocal cursor
        with lock:
            if cursor >= len(workload):
                return None
            index = cursor
            cursor += 1
            return index

    def client() -> None:
        nonlocal retried, transport_errors, degraded
        while True:
            index = next_index()
            if index is None:
                return
            endpoint, payload = workload[index]
            url = f"{base_url}/v1/{endpoint}"
            start = time.perf_counter()
            retries = 0
            while True:
                try:
                    status, body, retry_after = _http_json(
                        url, payload, timeout
                    )
                except (OSError, urllib.error.URLError):
                    with lock:
                        transport_errors += 1
                        status_counts[599] = status_counts.get(599, 0) + 1
                    break
                if status == 429 and retries < max_429_retries:
                    retries += 1
                    # Honor the server's Retry-After hint; fall back
                    # to a short fixed pause when it is absent.
                    time.sleep(
                        retry_after if retry_after is not None else 0.05
                    )
                    continue
                elapsed_ms = (time.perf_counter() - start) * 1e3
                with lock:
                    latencies.append(elapsed_ms)
                    status_counts[status] = status_counts.get(status, 0) + 1
                    retried += retries
                    if status == 200 and body.get("degraded"):
                        degraded += 1
                break

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    ok = status_counts.get(200, 0)
    return LoadgenResult(
        requests=requests,
        ok=ok,
        elapsed_s=elapsed,
        throughput_rps=requests / elapsed if elapsed > 0 else 0.0,
        latencies_ms=latencies,
        status_counts=status_counts,
        retried_429=retried,
        transport_errors=transport_errors,
        degraded=degraded,
    )


def _run_multiprocess(
    base_url: str,
    *,
    requests: int,
    concurrency: int,
    tables: list[str],
    scorer: str,
    seed: int,
    timeout: float,
    max_429_retries: int,
    processes: int,
) -> LoadgenResult:
    """Fan the workload over client processes and merge the results.

    Each child draws a disjoint slice of the request budget with its
    own seed offset (so the interleaving differs per child but the
    whole run stays reproducible) and reports its counters back through
    a ``multiprocessing`` pool.
    """
    processes = min(processes, requests)
    base, remainder = divmod(requests, processes)
    shares = [
        base + (1 if index < remainder else 0)
        for index in range(processes)
    ]
    jobs = [
        {
            "base_url": base_url,
            "requests": share,
            "concurrency": concurrency,
            "tables": tables,
            "scorer": scorer,
            "seed": seed + 1000 * index,
            "timeout": timeout,
            "max_429_retries": max_429_retries,
        }
        for index, share in enumerate(shares)
        if share > 0
    ]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    started = time.perf_counter()
    with ctx.Pool(len(jobs)) as pool:
        child_results = pool.map(_run_loadgen_child, jobs)
    elapsed = time.perf_counter() - started

    latencies: list[float] = []
    status_counts: dict[int, int] = {}
    ok = retried = transport_errors = degraded = 0
    for child in child_results:
        ok += child["ok"]
        retried += child["retried_429"]
        transport_errors += child["transport_errors"]
        degraded += child["degraded"]
        latencies.extend(child["latencies_ms"])
        for code, count in child["status_counts"].items():
            code = int(code)
            status_counts[code] = status_counts.get(code, 0) + count
    return LoadgenResult(
        requests=requests,
        ok=ok,
        elapsed_s=elapsed,
        throughput_rps=requests / elapsed if elapsed > 0 else 0.0,
        latencies_ms=latencies,
        status_counts=status_counts,
        retried_429=retried,
        transport_errors=transport_errors,
        degraded=degraded,
    )
