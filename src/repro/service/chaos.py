"""``repro chaos``: crash a fault-injected server, assert recovery.

The one end-to-end argument that the durability layer works is a
differential one, executed for real:

1. boot ``repro serve --data-dir`` as a subprocess with
   ``REPRO_FAULTS`` torn-write injection armed (crash mode: the
   process dies mid-WAL-append, exactly like a power loss);
2. register standing subscriptions, then drive a seeded mutation
   burst through ``/v1/mutate``, recording every *acknowledged*
   mutation in order — the WAL acks only after fsync, so the acked
   prefix is exactly the durable prefix;
3. crash mid-burst: either the injected torn write kills the server
   first, or the harness SIGKILLs it at the half-way point (between
   requests, so the acked prefix stays unambiguous);
4. restart the server clean (no faults) on the same data dir and
   assert: the table recovered at exactly ``len(acked)``'s version,
   every subscription came back under its original sid, and both the
   recovered standing answers and fresh ``/v1/answer`` responses are
   byte-identical to an in-process cold recompute that replays the
   same acked payloads into a fresh table.

Any mismatch — a lost acked mutation, a resurrected unacked one, a
subscription answering from stale state — fails the run.  Exit code 0
means the recovery contract held under a real crash.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from random import Random
from typing import Any

import repro
from repro.api.session import Session
from repro.api.spec import QuerySpec
from repro.datasets.specs import generate_from_spec
from repro.exceptions import ServiceError
from repro.io.json_io import answer_to_jsonable
from repro.standing.changelog import MutableUncertainTable

#: The standing queries the harness registers and checks.
CHAOS_QUERIES: tuple[dict[str, Any], ...] = (
    {"k": 3, "semantics": "u_topk", "p_tau": 1e-3},
    {"k": 5, "semantics": "expected_ranks", "p_tau": 1e-3},
)

_BOOT_TIMEOUT_S = 30.0


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _post(base: str, path: str, body: dict, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(base: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as r:
        return json.loads(r.read())


def _canonical(document: Any) -> str:
    return json.dumps(document, sort_keys=True, default=str)


class _Server:
    """One ``repro serve`` subprocess on a data dir."""

    def __init__(
        self,
        *,
        source: str,
        data_dir: Path,
        port: int,
        faults: str | None,
        seed: int,
        snapshot_every: int,
        log_path: Path,
    ) -> None:
        env = dict(os.environ)
        # The subprocess must import this very repro tree, venv or not.
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_FAULTS_SEED", None)
        if faults:
            env["REPRO_FAULTS"] = faults
            env["REPRO_FAULTS_SEED"] = str(seed)
        self.log = open(log_path, "ab")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--table",
                f"demo={source}",
                "--port",
                str(port),
                "--threads",
                "2",
                "--data-dir",
                str(data_dir),
                "--snapshot-every",
                str(snapshot_every),
            ],
            env=env,
            stdout=self.log,
            stderr=subprocess.STDOUT,
        )
        self.base = f"http://127.0.0.1:{port}"

    def wait_healthy(self) -> dict:
        deadline = time.monotonic() + _BOOT_TIMEOUT_S
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise ServiceError(
                    "server exited during boot "
                    f"(code {self.process.returncode})"
                )
            try:
                return _get(self.base, "/healthz", timeout=2.0)
            except (urllib.error.URLError, ConnectionError, OSError):
                time.sleep(0.1)
        raise ServiceError("server did not become healthy in time")

    def sigkill(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10)

    def close(self) -> None:
        self.sigkill()
        self.log.close()


def _mutation_stream(rng: Random, count: int):
    """Yield ``(op, payload)`` mutations; mostly valid by construction
    (a rejected one is simply not acked, on either side)."""
    live = [f"c{i}" for i in range(0)]
    serial = 0
    for _ in range(count):
        roll = rng.random()
        if not live or roll < 0.45:
            serial += 1
            tid = f"chaos-{serial}"
            yield "insert", {
                "tid": tid,
                "attributes": {"score": round(rng.uniform(0, 900), 3)},
                "probability": round(rng.uniform(0.05, 0.95), 4),
            }
            live.append(tid)
        elif roll < 0.65:
            yield "update_probability", {
                "tid": rng.choice(live),
                "probability": round(rng.uniform(0.05, 0.95), 4),
            }
        elif roll < 0.85:
            yield "update_score", {
                "tid": rng.choice(live),
                "attributes": {"score": round(rng.uniform(0, 900), 3)},
            }
        else:
            tid = rng.choice(live)
            live.remove(tid)
            yield "expire", {"tid": tid}


def _cold_recompute(
    source: str, acked: list[tuple[str, dict]]
) -> dict[str, str]:
    """Canonical answers of a fresh table replaying the acked prefix."""
    table = MutableUncertainTable.from_table(generate_from_spec(source))
    for op, payload in acked:
        table.apply_payload(op, payload)
    session = Session()
    session.register("demo", table)
    answers = {}
    for query in CHAOS_QUERIES:
        spec = QuerySpec(table="demo", scorer="score", **query)
        answers[_canonical(query)] = _canonical(
            answer_to_jsonable(session.execute(spec))
        )
    return answers


def run_chaos(
    *,
    data_dir: str | Path,
    tuples: int = 60,
    mutations: int = 40,
    seed: int = 11,
    faults: str = "wal_torn_write:0.08",
    snapshot_every: int = 16,
    verbose: bool = False,
) -> dict[str, Any]:
    """The full chaos scenario; returns the report, raises on violation.

    :param data_dir: working directory for the durable state and the
        server logs (created if missing; reused state is discarded).
    :param snapshot_every: WAL compaction interval — deliberately
        small so the run exercises snapshot+suffix recovery, not just
        log replay.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    for stale in (data_dir / "tables").glob("*"):
        stale.unlink()
    manifest = data_dir / "subscriptions.json"
    if manifest.exists():
        manifest.unlink()
    source = f"synthetic:tuples={tuples},me=0.2,seed={seed}"
    port = _free_port()
    report: dict[str, Any] = {
        "source": source,
        "faults": faults,
        "mutations_attempted": 0,
        "mutations_acked": 0,
    }

    def note(message: str) -> None:
        if verbose:
            print(f"chaos: {message}", flush=True)

    # Phase 1: fault-injected server, subscriptions, mutation burst.
    server = _Server(
        source=source,
        data_dir=data_dir,
        port=port,
        faults=faults,
        seed=seed,
        snapshot_every=snapshot_every,
        log_path=data_dir / "serve-faulted.log",
    )
    acked: list[tuple[str, dict]] = []
    sids: list[str] = []
    try:
        server.wait_healthy()
        for query in CHAOS_QUERIES:
            document = _post(
                server.base,
                "/v1/subscribe",
                {"table": "demo", "scorer": "score", **query},
            )
            if document.get("error"):
                raise ServiceError(f"subscribe failed: {document}")
            sids.append(document["sid"])
        note(f"subscribed {sids}")
        kill_at = max(1, mutations // 2)
        crash = None
        for index, (op, payload) in enumerate(
            _mutation_stream(Random(seed), mutations)
        ):
            if index == kill_at:
                note(f"SIGKILL after {len(acked)} acked mutations")
                server.sigkill()
                crash = "sigkill"
                break
            report["mutations_attempted"] += 1
            try:
                document = _post(
                    server.base,
                    "/v1/mutate",
                    {"table": "demo", "op": op, **payload},
                    timeout=15.0,
                )
            except (urllib.error.URLError, ConnectionError, OSError):
                # The injected torn write killed the server mid-append:
                # the mutation was never acked, so it must not survive.
                crash = "torn_write_crash"
                note(
                    f"server crashed (injected fault) at mutation "
                    f"{index}; {len(acked)} acked"
                )
                break
            if "delta" in document:
                acked.append((op, payload))
            elif document.get("error") is None:
                raise ServiceError(f"unexpected mutate reply: {document}")
        else:
            # Burst ran dry without a crash: kill between requests.
            server.sigkill()
            crash = "sigkill"
        if crash == "sigkill":
            server.sigkill()
        report["crash"] = crash
        report["mutations_acked"] = len(acked)
    finally:
        server.close()
    if not acked:
        raise ServiceError(
            "no mutation was acked before the crash; rerun with a "
            "lower fault probability"
        )

    # Phase 2: clean restart on the same data dir.
    restarted = _Server(
        source=source,
        data_dir=data_dir,
        port=port,
        faults=None,
        seed=seed,
        snapshot_every=snapshot_every,
        log_path=data_dir / "serve-recovered.log",
    )
    try:
        health = restarted.wait_healthy()
        recovered_version = health["tables"]["demo"]["version"]
        report["recovered_version"] = recovered_version
        report["recovery"] = health.get("durability", {}).get("recovery")
        if recovered_version != len(acked):
            raise ServiceError(
                f"recovered version {recovered_version} != "
                f"{len(acked)} acked mutations: the durable prefix "
                "and the acked prefix disagree"
            )
        restored = set(
            health.get("durability", {}).get("restored_subscriptions", ())
        )
        missing = [sid for sid in sids if sid not in restored]
        if missing:
            raise ServiceError(
                f"subscriptions {missing} were not re-registered "
                f"from the manifest (restored: {sorted(restored)})"
            )
        expected = _cold_recompute(source, acked)
        for sid, query in zip(sids, CHAOS_QUERIES):
            snapshot = _watch_one(restarted.base, sid)
            if snapshot.get("error"):
                raise ServiceError(
                    f"recovered subscription {sid} is in error: "
                    f"{snapshot['error']}"
                )
            if snapshot["version"] != recovered_version:
                raise ServiceError(
                    f"subscription {sid} recovered at version "
                    f"{snapshot['version']}, table at {recovered_version}"
                )
            want = expected[_canonical(query)]
            got_standing = _canonical(snapshot["answer"])
            if got_standing != want:
                raise ServiceError(
                    f"recovered standing answer for {sid} differs "
                    "from cold recompute"
                )
            fresh = _post(
                restarted.base,
                "/v1/answer",
                {"table": "demo", "scorer": "score", **query},
            )
            if _canonical(fresh["answer"]) != want:
                raise ServiceError(
                    f"/v1/answer after recovery differs from cold "
                    f"recompute for {query}"
                )
            note(f"{sid}: recovered answer == cold recompute")
        report["subscriptions_checked"] = len(sids)
        report["ok"] = True
    finally:
        restarted.close()
    return report


def _watch_one(base: str, sid: str) -> dict:
    """The subscription's current snapshot via one SSE event."""
    url = f"{base}/v1/watch?sid={sid}&after=-1&count=1&timeout_s=10"
    with urllib.request.urlopen(url, timeout=15) as stream:
        for raw in stream:
            line = raw.decode().rstrip("\n")
            if line.startswith("data: "):
                document = json.loads(line.removeprefix("data: "))
                if document:
                    return document
    raise ServiceError(f"watch stream for {sid} yielded no snapshot")
