"""A per-``(table, semantics)`` circuit breaker for the executor.

When exact evaluation of one query shape keeps timing out — a table
grown past what its deadline affords, a pathological ME structure —
re-trying the same exact plan for every arriving request just burns
worker time that other shapes needed.  The breaker watches consecutive
timeout failures per key and, once tripped, tells the executor to shed
that shape straight to the degraded (bounded Monte-Carlo) tier without
queueing the exact work at all.

Classic three-state machine, decided at submit time:

* **closed** — normal operation; exact work runs.  ``failures``
  consecutive timeouts trip the breaker to *open*.
* **open** — every decision is ``"degrade"`` until ``cooldown_s`` has
  elapsed; the first decision after the cooldown transitions to
  *half-open* and returns ``"probe"``.
* **half-open** — one probe request runs the exact plan; its success
  closes the breaker, its failure re-opens it (fresh cooldown).  While
  the probe is in flight, other requests keep degrading.

All timing flows through a caller-supplied clock so tests don't
sleep.  Thread-safe; decisions and recordings take one small lock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Hashable

from repro.exceptions import ServiceError

#: Consecutive timeout failures that trip a closed breaker.
DEFAULT_FAILURES = 3

#: Seconds an open breaker sheds before allowing a probe.
DEFAULT_COOLDOWN_S = 5.0

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker over an arbitrary key space.

    :param failures: consecutive failures that trip a key.
    :param cooldown_s: how long a tripped key sheds before probing.
    :param clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        failures: int = DEFAULT_FAILURES,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failures < 1:
            raise ServiceError(f"failures must be >= 1, got {failures}")
        if cooldown_s <= 0:
            raise ServiceError(
                f"cooldown_s must be > 0, got {cooldown_s}"
            )
        self._failures = failures
        self._cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        # key -> [state, consecutive_failures, opened_at]
        self._keys: dict[Hashable, list] = {}
        self.trips = 0

    def decide(self, key: Hashable) -> str:
        """``"exact"``, ``"degrade"`` or ``"probe"`` for one request.

        ``"probe"`` is returned to exactly one caller per cooldown
        expiry — that request runs the exact plan on behalf of the
        key; everyone else keeps degrading until its outcome is
        recorded.
        """
        with self._lock:
            entry = self._keys.get(key)
            if entry is None or entry[0] == _CLOSED:
                return "exact"
            if entry[0] == _HALF_OPEN:
                return "degrade"  # a probe is already in flight
            if self._clock() - entry[2] >= self._cooldown_s:
                entry[0] = _HALF_OPEN
                return "probe"
            return "degrade"

    def record_success(self, key: Hashable) -> None:
        """An exact request for ``key`` completed in time."""
        with self._lock:
            self._keys.pop(key, None)

    def record_failure(self, key: Hashable) -> None:
        """An exact request for ``key`` timed out."""
        with self._lock:
            entry = self._keys.setdefault(key, [_CLOSED, 0, 0.0])
            if entry[0] == _HALF_OPEN:
                # The probe failed: re-open with a fresh cooldown.
                entry[0] = _OPEN
                entry[2] = self._clock()
                self.trips += 1
                return
            entry[1] += 1
            if entry[0] == _CLOSED and entry[1] >= self._failures:
                entry[0] = _OPEN
                entry[2] = self._clock()
                self.trips += 1

    def state(self, key: Hashable) -> str:
        """The key's current state name (``closed`` when untracked)."""
        with self._lock:
            entry = self._keys.get(key)
            return entry[0] if entry is not None else _CLOSED

    def describe(self) -> dict[str, object]:
        """Tripped/tracked keys + total trips (for ``/metrics``)."""
        with self._lock:
            return {
                "trips": self.trips,
                "open": sorted(
                    str(key)
                    for key, entry in self._keys.items()
                    if entry[0] in (_OPEN, _HALF_OPEN)
                ),
                "tracked": len(self._keys),
            }
