"""The batching concurrent query service (``repro serve``).

Layers:

* :mod:`repro.service.catalog` — named tables (files or generator
  specs) loaded once and kept resident in a shared, thread-safe
  :class:`~repro.api.session.Session` with LRU-bounded staged caches;
* :mod:`repro.service.batching` — the bounded micro-batching executor
  grouping in-flight requests by ``(table, p_tau, algorithm)`` with
  single-flight keys and explicit backpressure;
* :mod:`repro.service.metrics` — per-endpoint latency histograms,
  batch-size distribution and cache hit rates, rendered as JSON;
* :mod:`repro.service.server` — the stdlib HTTP face
  (``POST /v1/answer``, ``/v1/distribution``, ``/v1/typical``, the
  standing-query control plane ``/v1/mutate`` / ``/v1/subscribe`` /
  ``/v1/unsubscribe`` / ``/v1/reload``, the SSE stream
  ``GET /v1/watch``, plus ``GET /healthz``, ``/metrics``);
* :mod:`repro.service.loadgen` — the closed-loop client behind
  ``repro loadgen`` and ``benchmarks/bench_service.py``;
* :mod:`repro.service.degrade` / :mod:`repro.service.breaker` —
  graceful degradation of overloaded exact work onto bounded
  Monte-Carlo (explicit confidence intervals) and the per
  ``(table, semantics)`` circuit breaker feeding it;
* :mod:`repro.service.faults` — deterministic fault injection
  (``REPRO_FAULTS``) for WAL writes and executor stages, driven by
  ``repro chaos``;
* :mod:`repro.service.shard` / :mod:`repro.service.worker` /
  :mod:`repro.service.router` — the multi-process scale-out tier
  (``repro serve --workers N``): a consistent-hash ring over
  ``(table, p_tau)`` shapes, worker processes each owning a shard of
  the cache/WAL space, and the front router that preserves the
  single-process semantics.
"""

from repro.service.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    DEFAULT_WORKERS,
    BatchingExecutor,
    batch_key,
)
from repro.service.breaker import CircuitBreaker
from repro.service.catalog import (
    DatasetCatalog,
    load_catalog_file,
    parse_binding,
)
from repro.service.degrade import DegradationPolicy, DegradedAnswer
from repro.service.faults import FaultInjector
from repro.service.loadgen import LoadgenResult, run_loadgen
from repro.service.metrics import ServiceMetrics
from repro.service.router import (
    ShardedQueryService,
    WorkerPool,
    make_sharded_server,
)
from repro.service.server import (
    DEFAULT_REQUEST_TIMEOUT_S,
    MAX_WATCH_TIMEOUT_S,
    QueryService,
    ServiceHTTPServer,
    build_spec,
    make_server,
)
from repro.service.shard import (
    ShardRing,
    payload_query_key,
    query_shard_key,
    table_shard_key,
)
from repro.service.worker import WorkerConfig, dispatch_pool_size

__all__ = [
    "BatchingExecutor",
    "batch_key",
    "DatasetCatalog",
    "load_catalog_file",
    "parse_binding",
    "LoadgenResult",
    "run_loadgen",
    "ServiceMetrics",
    "QueryService",
    "ServiceHTTPServer",
    "build_spec",
    "make_server",
    "DEFAULT_WORKERS",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_REQUEST_TIMEOUT_S",
    "MAX_WATCH_TIMEOUT_S",
    "CircuitBreaker",
    "DegradationPolicy",
    "DegradedAnswer",
    "FaultInjector",
    "ShardRing",
    "ShardedQueryService",
    "WorkerConfig",
    "WorkerPool",
    "dispatch_pool_size",
    "make_sharded_server",
    "payload_query_key",
    "query_shard_key",
    "table_shard_key",
]
