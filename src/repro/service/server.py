"""The stdlib HTTP face of the query service (``repro serve``).

Endpoints::

    POST /v1/answer        any registered semantics over a catalog table
    POST /v1/distribution  the top-k score distribution (pmf document)
    POST /v1/typical       c-Typical-Topk answers
    POST /v1/explain       the request's plan (operators, costs, caches)
    POST /v1/mutate        apply one mutation to a mutable catalog table
    POST /v1/subscribe     register a standing query (returns a sid)
    POST /v1/unsubscribe   drop a standing query
    POST /v1/reload        re-load a catalog table, evicting its caches
    GET  /v1/watch         SSE stream of a subscription's answers
    GET  /healthz          liveness + catalog summary
    GET  /metrics          the ServiceMetrics JSON document

``/v1/mutate`` takes ``{"table", "op", "tid", ...}`` with ``op`` one
of ``insert`` / ``expire`` / ``update_probability`` / ``update_score``
(payload fields per op; see :mod:`repro.standing.changelog`); the
response carries the applied delta and the table's new version.
``/v1/subscribe`` takes the same body as ``/v1/answer`` and returns a
subscription id plus the initial answer; after every mutation the
standing registry brings each affected subscription current (see
:mod:`repro.standing.registry` for the skip/patch/recompute tiers).
``GET /v1/watch?sid=...&after=V&count=N&timeout_s=T`` streams
``text/event-stream`` events — the current snapshot when it is
already past ``after``, then one event per advance — until ``count``
events were sent or ``timeout_s`` elapses (long-poll: try
``curl -N``).

``/v1/explain`` never runs the expensive stages: it lowers the request
through the session's planner and reports the operator tree, the
cost-model estimates and the predicted cache outcome — the service
twin of ``Session.explain`` / ``repro explain``.

Request bodies are JSON objects; ``table`` (a catalog name) and ``k``
are required, everything else has the :class:`~repro.api.spec.QuerySpec`
defaults::

    {"table": "demo", "k": 5, "semantics": "u_topk", "p_tau": 0.1}

Query bodies additionally accept two transport-level controls:
``timeout_s`` (the client's end-to-end deadline budget, capped at the
server's request timeout) and ``allow_degraded`` (default ``true``;
``false`` pins the request to the exact path).  When the request
degrades (deadline, queue depth, or an open circuit breaker — see
:mod:`repro.service.degrade`), the response carries ``degraded:
true``, the trigger under ``degrade_reason``, and a
``confidence_interval`` document bounding the approximate answer.

Status codes: ``200`` success, ``400`` malformed request, ``404``
unknown table or path, ``429`` queue full (with ``Retry-After``),
``504`` request timed out in the queue, ``500`` internal error.
Responses always carry ``application/json``.

The server is a ``ThreadingHTTPServer`` so slow clients do not block
each other; actual query execution is delegated to the bounded
:class:`~repro.service.batching.BatchingExecutor`, which is where
admission control and micro-batching happen.
"""

from __future__ import annotations

import json
import select
import socket
import time
from collections.abc import Callable
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator, Protocol, cast
from urllib.parse import parse_qs

from repro.api.spec import QuerySpec
from repro.core.pmf import ScorePMF
from repro.exceptions import (
    BackpressureError,
    BadRequestError,
    QueryPlanError,
    ReproError,
    RequestTimeoutError,
    ServiceError,
)
from repro.io.json_io import answer_to_jsonable, pmf_to_json
from repro.service.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    DEFAULT_WORKERS,
    BatchingExecutor,
    Op,
)
from repro.service.breaker import CircuitBreaker
from repro.service.catalog import DatasetCatalog
from repro.service.degrade import DegradationPolicy, DegradedAnswer
from repro.service.faults import FaultInjector
from repro.service.metrics import ServiceMetrics
from repro.standing.registry import StandingRegistry

#: How long a request may wait end to end before ``504``.
DEFAULT_REQUEST_TIMEOUT_S = 30.0

#: Hard ceiling on one ``/v1/watch`` stream's lifetime.
MAX_WATCH_TIMEOUT_S = 120.0

#: Longest a watch stream blocks in the registry between disconnect
#: probes; bounds how long a dead client can hold a waiter registered.
WATCH_WAIT_SLICE_S = 1.0

#: Spec fields a request body may set (beyond the required ones).
_OPTIONAL_FIELDS = (
    "scorer",
    "semantics",
    "c",
    "threshold",
    "p_tau",
    "max_lines",
    "algorithm",
    "depth",
    "epsilon",
    "confidence",
    "samples",
    "seed",
)


@dataclass
class _Reply:
    """One endpoint result: HTTP status plus the JSON document.

    ``retry_after`` is set on 429 replies: the (possibly fractional)
    seconds hint derived from the live queue depth and the recent
    batch drain rate, emitted as the ``Retry-After`` header.
    """

    status: int
    document: dict[str, Any]
    retry_after: float | None = None


def build_spec(payload: dict[str, Any], endpoint: str) -> QuerySpec:
    """Validate a request body into a :class:`QuerySpec`.

    ``/v1/distribution`` ignores ``semantics``; ``/v1/typical`` forces
    ``semantics="typical"``.  Unknown fields are rejected so typos
    fail loudly instead of silently running defaults.
    """
    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    known = {"table", "k", *_OPTIONAL_FIELDS}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise BadRequestError(f"unknown request fields: {unknown}")
    table = payload.get("table")
    if not isinstance(table, str) or not table:
        raise BadRequestError('"table" must name a catalog table')
    if "k" not in payload:
        raise BadRequestError('"k" is required')
    scorer = payload.get("scorer", "score")
    if not isinstance(scorer, str) or not scorer:
        raise BadRequestError('"scorer" must be an attribute name')
    kwargs: dict[str, Any] = {
        "table": table,
        "scorer": scorer,
        "k": payload["k"],
    }
    for name in _OPTIONAL_FIELDS:
        if name != "scorer" and name in payload:
            kwargs[name] = payload[name]
    if endpoint == "typical":
        if kwargs.setdefault("semantics", "typical") != "typical":
            raise BadRequestError(
                "/v1/typical only serves semantics=typical; use "
                "/v1/answer for other semantics"
            )
    try:
        return QuerySpec(**kwargs)
    except ReproError as exc:
        raise BadRequestError(str(exc)) from exc
    except TypeError as exc:
        raise BadRequestError(f"bad request field: {exc}") from exc


class ServiceProtocol(Protocol):
    """What the HTTP layer needs from a service implementation.

    Satisfied by :class:`QueryService` (single process) and
    :class:`~repro.service.router.ShardedQueryService` (the front of a
    worker pool); the handler is transport only and never looks past
    this surface.
    """

    metrics: ServiceMetrics
    request_timeout_s: float

    def handle(self, endpoint: str, payload: dict[str, Any]) -> _Reply: ...

    def healthz(self) -> _Reply: ...

    def metrics_document(self) -> _Reply: ...

    def has_subscription(self, sid: str) -> bool: ...

    def watch_events(
        self,
        sid: str,
        *,
        after: int,
        count: int,
        timeout_s: float,
        should_stop: Callable[[], bool] | None = None,
    ) -> Iterator[dict[str, Any]]: ...

    def shutdown(
        self, *, drain: bool = False, timeout: float = 10.0
    ) -> None: ...


class QueryService:
    """Catalog + shared session + executor + metrics, as one object.

    This is the transport-independent core: the HTTP handler (and the
    in-process tests and the service benchmark) call :meth:`handle`
    with parsed JSON and get back a status plus a JSON-ready document.
    """

    #: POST endpoint name -> executor operation.
    ENDPOINT_OPS: dict[str, Op] = {
        "answer": "execute",
        "typical": "execute",
        "distribution": "distribution",
    }

    def __init__(
        self,
        catalog: DatasetCatalog,
        *,
        workers: int = DEFAULT_WORKERS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        batched: bool = True,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        degrade: bool = True,
        degradation: DegradationPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        faults: FaultInjector | None = None,
        sid_prefix: str = "sub-",
    ) -> None:
        self.catalog = catalog
        self.metrics = ServiceMetrics()
        self.request_timeout_s = request_timeout_s
        if degrade:
            degradation = degradation or DegradationPolicy()
            breaker = breaker or CircuitBreaker()
        else:
            degradation = breaker = None
        self.faults = faults
        self.executor = BatchingExecutor(
            catalog.session,
            workers=workers,
            max_queue=max_queue,
            max_batch=max_batch,
            batched=batched,
            metrics=self.metrics,
            degradation=degradation,
            breaker=breaker,
            faults=faults,
        )
        self.standing = StandingRegistry(catalog.session, sid_prefix=sid_prefix)
        #: sids re-registered from the durable manifest at boot, plus
        #: any that failed to restore (surfaced in /healthz).
        self.restored_subscriptions: list[str] = []
        self.failed_subscriptions: dict[str, str] = {}
        self._restore_subscriptions()
        self._started = time.time()

    def _restore_subscriptions(self) -> None:
        """Re-register every manifest subscription under its old sid.

        Runs at boot, after catalog recovery: each restored
        subscription re-evaluates cold against the recovered table, so
        its answer reflects the exact pre-crash version.  A spec that
        no longer evaluates (its table gone from the catalog, say) is
        skipped and reported rather than failing the boot.
        """
        store = self.catalog.store
        if store is None:
            return
        for entry in store.read_manifest():
            sid = entry.get("sid", "?")
            try:
                self.standing.subscribe(
                    QuerySpec.from_jsonable(dict(entry["spec"])), sid=sid
                )
            except Exception as exc:
                self.failed_subscriptions[str(sid)] = (
                    f"{type(exc).__name__}: {exc}"
                )
            else:
                self.restored_subscriptions.append(sid)

    def _persist_manifest(self) -> None:
        """Mirror the active subscriptions into the durable manifest."""
        store = self.catalog.store
        if store is None:
            return
        entries = []
        for sub in self.standing.subscriptions():
            try:
                entries.append(
                    {"sid": sub.sid, "spec": sub.spec.to_jsonable()}
                )
            except ReproError:
                continue  # in-memory spec: not representable, not durable
        store.write_manifest(entries)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    #: Endpoints served inline (no executor queue): planning and the
    #: standing-query control plane, which must stay responsive (and
    #: ordered) even when the query queue is saturated.
    _INLINE_HANDLERS = (
        "explain",
        "mutate",
        "subscribe",
        "unsubscribe",
        "reload",
    )

    def handle(self, endpoint: str, payload: dict[str, Any]) -> _Reply:
        """Serve one POST endpoint; never raises."""
        if endpoint in self._INLINE_HANDLERS:
            handler = getattr(self, f"_{endpoint}")
            start = time.perf_counter()
            status, document = handler(payload)
            elapsed = time.perf_counter() - start
            self.metrics.record_request(
                endpoint, elapsed, error=status != 200
            )
            document.setdefault("elapsed_ms", round(elapsed * 1e3, 3))
            return _Reply(status, document)
        op = self.ENDPOINT_OPS.get(endpoint)
        if op is None:
            return _Reply(404, {"error": f"unknown endpoint {endpoint!r}"})
        start = time.perf_counter()
        status, document = self._run(endpoint, op, payload)
        elapsed = time.perf_counter() - start
        self.metrics.record_request(endpoint, elapsed, error=status != 200)
        document.setdefault("elapsed_ms", round(elapsed * 1e3, 3))
        retry_after = None
        if status == 429:
            retry_after = document.get("retry_after_s")
        return _Reply(status, document, retry_after=retry_after)

    def _explain(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """``/v1/explain``: plan inspection, bypassing the executor
        (planning is cheap and must stay observable under overload)."""
        try:
            spec = build_spec(payload, "explain")
            if spec.table not in self.catalog:
                return 404, {
                    "error": f"unknown table {spec.table!r}",
                    "tables": list(self.catalog.names()),
                }
            document = self.catalog.session.explain(spec)
        except BadRequestError as exc:
            return 400, {"error": str(exc)}
        except QueryPlanError as exc:
            return 404, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"internal error: {exc}"}
        return 200, document

    # ------------------------------------------------------------------
    # Standing queries: mutation + subscription control plane
    # ------------------------------------------------------------------
    def _mutate(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """``/v1/mutate``: apply one mutation, maintain subscriptions."""
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        table = payload.get("table")
        if not isinstance(table, str) or not table:
            return 400, {"error": '"table" must name a catalog table'}
        if table not in self.catalog:
            return 404, {
                "error": f"unknown table {table!r}",
                "tables": list(self.catalog.names()),
            }
        op = payload.get("op")
        mutation = {
            key: value
            for key, value in payload.items()
            if key not in ("table", "op")
        }
        try:
            # Through the catalog, by name, under its reload lock: a
            # mutation racing /v1/reload lands on whichever table
            # object currently holds the name (and its WAL), never on
            # a stale pre-swap reference.
            delta = self.catalog.mutate(
                table, op, mutation, registry=self.standing
            )
        except ServiceError as exc:
            return 400, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"internal error: {exc}"}
        return 200, {
            "table": table,
            "delta": delta.to_jsonable(),
            "version": delta.version,
        }

    def _subscribe(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """``/v1/subscribe``: register a standing query, answer cold."""
        try:
            spec = build_spec(payload, "subscribe")
            if spec.table not in self.catalog:
                return 404, {
                    "error": f"unknown table {spec.table!r}",
                    "tables": list(self.catalog.names()),
                }
            sub = self.standing.subscribe(spec)
        except BadRequestError as exc:
            return 400, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"internal error: {exc}"}
        self._persist_manifest()
        snapshot = self.standing.snapshot(sub.sid)
        assert snapshot is not None
        return 200, snapshot

    def _unsubscribe(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """``/v1/unsubscribe``: drop a subscription by sid."""
        sid = payload.get("sid") if isinstance(payload, dict) else None
        if not isinstance(sid, str) or not sid:
            return 400, {"error": '"sid" is required'}
        removed = self.standing.unsubscribe(sid)
        if removed:
            self._persist_manifest()
        return 200, {"sid": sid, "removed": removed}

    def _reload(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """``/v1/reload``: re-load a table from its source, evicting
        every cached stage derived from the replaced object."""
        name = payload.get("table") if isinstance(payload, dict) else None
        if not isinstance(name, str) or not name:
            return 400, {"error": '"table" must name a catalog table'}
        if name not in self.catalog:
            return 404, {
                "error": f"unknown table {name!r}",
                "tables": list(self.catalog.names()),
            }
        try:
            return 200, self.catalog.reload(name)
        except ServiceError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"internal error: {exc}"}

    def watch_events(
        self,
        sid: str,
        *,
        after: int,
        count: int,
        timeout_s: float,
        should_stop: Callable[[], bool] | None = None,
    ):
        """``/v1/watch``: yield subscription snapshots as SSE events.

        Yields up to ``count`` snapshot documents: the current one
        immediately when its version already exceeds ``after``, then
        one per maintained advance, until the deadline.  Terminates
        (StopIteration) on timeout or when the subscription vanishes.

        ``should_stop`` is the transport's disconnect probe: when it
        returns true the generator ends immediately instead of holding
        a registry waiter for the rest of the deadline.  Waits are
        sliced to at most :data:`WATCH_WAIT_SLICE_S` so the probe runs
        even while the subscription is idle.
        """
        deadline = time.monotonic() + min(
            max(timeout_s, 0.0), MAX_WATCH_TIMEOUT_S
        )
        watermark = after
        sent = 0
        while sent < count:
            if should_stop is not None and should_stop():
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            snapshot = self.standing.wait(
                sid,
                after_version=watermark,
                timeout=min(remaining, WATCH_WAIT_SLICE_S),
            )
            if snapshot is None:
                return
            if snapshot["version"] <= watermark:
                continue  # wait slice elapsed; loop re-probes and re-checks
            watermark = snapshot["version"]
            sent += 1
            yield snapshot

    def has_subscription(self, sid: str) -> bool:
        """Whether ``sid`` names a live subscription (transport probe)."""
        return self.standing.get(sid) is not None

    @staticmethod
    def _request_controls(
        payload: dict[str, Any]
    ) -> tuple[dict[str, Any], float | None, bool]:
        """Strip the transport-level fields off a request body.

        ``timeout_s`` (the client's deadline budget) and
        ``allow_degraded`` (strict clients pass ``false``) control
        *how* the request runs, not *what* it computes, so they are
        peeled off before spec validation.
        """
        if not isinstance(payload, dict):
            return payload, None, True
        payload = dict(payload)
        timeout_s = payload.pop("timeout_s", None)
        if timeout_s is not None:
            if (
                not isinstance(timeout_s, (int, float))
                or isinstance(timeout_s, bool)
                or not timeout_s > 0
            ):
                raise BadRequestError(
                    f'"timeout_s" must be a positive number, '
                    f"got {timeout_s!r}"
                )
            timeout_s = float(timeout_s)
        allow_degraded = payload.pop("allow_degraded", True)
        if not isinstance(allow_degraded, bool):
            raise BadRequestError(
                '"allow_degraded" must be a boolean, got '
                f"{allow_degraded!r}"
            )
        return payload, timeout_s, allow_degraded

    def _run(
        self, endpoint: str, op: Op, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        try:
            payload, timeout_s, allow_degraded = self._request_controls(
                payload
            )
            if timeout_s is None:
                timeout_s = self.request_timeout_s
            else:
                timeout_s = min(timeout_s, self.request_timeout_s)
            spec = build_spec(payload, endpoint)
            if spec.table not in self.catalog:
                return 404, {
                    "error": f"unknown table {spec.table!r}",
                    "tables": list(self.catalog.names()),
                }
            future = self.executor.submit(
                op,
                spec,
                timeout_s=timeout_s,
                allow_degraded=allow_degraded,
            )
            answer = future.result(timeout_s)
        except BadRequestError as exc:
            return 400, {"error": str(exc)}
        except BackpressureError as exc:
            hint = exc.retry_after_s
            if hint is None:
                hint = self.executor.retry_after_hint()
            return 429, {"error": str(exc), "retry_after_s": hint}
        except QueryPlanError as exc:
            return 404, {"error": str(exc)}
        except (RequestTimeoutError, FutureTimeoutError) as exc:
            return 504, {
                "error": str(exc)
                or f"request timed out after {timeout_s}s"
            }
        except ServiceError as exc:
            return 500, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"internal error: {exc}"}
        degraded: DegradedAnswer | None = None
        if isinstance(answer, DegradedAnswer):
            degraded = answer
            answer = degraded.answer
        document: dict[str, Any] = {
            "table": spec.table,
            "k": spec.k,
        }
        if endpoint == "distribution":
            document.update(json.loads(pmf_to_json(answer)))
        elif endpoint == "typical":
            document["c"] = spec.c
            document["result"] = answer_to_jsonable(answer)
        else:
            document["semantics"] = spec.semantics
            document["answer"] = answer_to_jsonable(answer)
            if isinstance(answer, ScorePMF):
                document["answer_kind"] = "pmf"
        if degraded is not None:
            document["degraded"] = True
            document["degrade_reason"] = degraded.reason
            document["epsilon"] = degraded.epsilon
            document["confidence_interval"] = degraded.interval
        return 200, document

    def healthz(self) -> _Reply:
        """Liveness: catalog summary + uptime + executor mode +
        durability/degradation/fault status."""
        document: dict[str, Any] = {
            "status": "ok",
            "uptime_s": round(time.time() - self._started, 3),
            "batched": self.executor.batched,
            "tables": self.catalog.describe(),
            "degradation": self.executor.degradation is not None,
        }
        store = self.catalog.store
        if store is not None:
            document["durability"] = {
                "data_dir": str(store.root),
                "recovery": store.recovery_info,
                "restored_subscriptions": self.restored_subscriptions,
                "failed_subscriptions": self.failed_subscriptions,
            }
        if self.faults is not None and self.faults:
            document["faults"] = self.faults.describe()
        return _Reply(200, document)

    def metrics_document(self) -> _Reply:
        """The metrics JSON document (cache + fusion counters included)."""
        session = self.catalog.session
        breaker = self.executor.breaker
        return _Reply(
            200,
            self.metrics.snapshot(
                session.cache_info(),
                session.fusion_info(),
                self.standing.describe(),
                breaker.describe() if breaker is not None else None,
                self.catalog.storage_info(),
            ),
        )

    def shutdown(
        self, *, drain: bool = False, timeout: float = 10.0
    ) -> None:
        """Stop the executor; ``drain=True`` is the graceful path:
        finish every admitted request, then flush and close the WALs
        so the durable tail holds exactly the acknowledged writes."""
        self.executor.shutdown(drain=drain, timeout=timeout)
        if drain and self.catalog.store is not None:
            self.catalog.store.close()


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP to :class:`QueryService`; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    #: Largest accepted request body.
    MAX_BODY_BYTES = 1 << 20

    @property
    def _service_server(self) -> "ServiceHTTPServer":
        return cast("ServiceHTTPServer", self.server)

    def log_message(self, format: str, *args: Any) -> None:
        if self._service_server.verbose:
            super().log_message(format, *args)

    def _send(self, reply: _Reply) -> None:
        body = json.dumps(reply.document, default=str).encode()
        self.send_response(reply.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if reply.status == 429:
            # Derived from queue depth / drain rate (fractional
            # seconds); RFC 7231 only allows integers, but every
            # shipped client parses floats, and our loadgen does too.
            hint = reply.retry_after
            if hint is None:
                hint = reply.document.get("retry_after_s")
            if not isinstance(hint, (int, float)) or hint <= 0:
                hint = 1.0
            self.send_header("Retry-After", f"{float(hint):.3f}")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service = self._service_server.service
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._send(service.healthz())
        elif path == "/metrics":
            self._send(service.metrics_document())
        elif path == "/v1/watch":
            self._watch(service, query)
        else:
            self._send(_Reply(404, {"error": f"unknown path {self.path}"}))

    def _watch(self, service: ServiceProtocol, query: str) -> None:
        """Stream a subscription as chunked ``text/event-stream``."""
        params = parse_qs(query)

        def _int_param(name: str, default: int) -> int:
            try:
                return int(params[name][0])
            except (KeyError, IndexError, ValueError):
                return default

        sid = params.get("sid", [""])[0]
        if not sid or not service.has_subscription(sid):
            self._send(
                _Reply(404, {"error": f"unknown subscription {sid!r}"})
            )
            return
        after = _int_param("after", -1)
        # SSE resume: a reconnecting client reports the last event id
        # (the log version) it saw; the header supersedes ``after``,
        # and the stream immediately replays everything past it — the
        # registry's since-semantics (wait(after_version=...)) deliver
        # the current snapshot the moment version > Last-Event-ID.
        last_event_id = self.headers.get("Last-Event-ID")
        if last_event_id is not None:
            try:
                after = int(last_event_id)
            except ValueError:
                pass
        count = max(1, _int_param("count", 1))
        try:
            timeout_s = float(params["timeout_s"][0])
        except (KeyError, IndexError, ValueError):
            timeout_s = service.request_timeout_s
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        service.metrics.record_watch_stream()
        disconnected = False

        def _client_gone() -> bool:
            nonlocal disconnected
            if not disconnected and self._peer_closed():
                disconnected = True
            return disconnected

        events = service.watch_events(
            sid,
            after=after,
            count=count,
            timeout_s=timeout_s,
            should_stop=_client_gone,
        )
        try:
            for snapshot in events:
                payload = json.dumps(snapshot, default=str)
                self._chunk(
                    f"event: update\nid: {snapshot['version']}\n"
                    f"data: {payload}\n\n"
                )
            if not disconnected:
                self._chunk("event: end\ndata: {}\n\n")
                self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            disconnected = True
        finally:
            # Close the generator *now*: its registry waiter must not
            # outlive the stream (a GC'd generator would release it
            # eventually, but "eventually" is a leak under churn).
            events.close()
            if disconnected:
                service.metrics.record_watch_disconnect()
                self.close_connection = True

    def _peer_closed(self) -> bool:
        """Whether the client hung up (EOF or error on the socket).

        A half-closed SSE client is readable with an empty peek; a
        client that merely pipelined more bytes is readable with data
        and is left alone.
        """
        try:
            readable, _, errored = select.select(
                [self.connection], [], [self.connection], 0
            )
            if errored:
                return True
            if not readable:
                return False
            return self.connection.recv(1, socket.MSG_PEEK) == b""
        except (OSError, ValueError):
            return True

    def _chunk(self, text: str) -> None:
        """One HTTP/1.1 chunked-transfer chunk, flushed immediately."""
        data = text.encode()
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        service = self._service_server.service
        if not self.path.startswith("/v1/"):
            self._send(_Reply(404, {"error": f"unknown path {self.path}"}))
            return
        endpoint = self.path.removeprefix("/v1/")
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > self.MAX_BODY_BYTES:
            self._send(_Reply(400, {"error": "bad Content-Length"}))
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            self._send(_Reply(400, {"error": f"bad JSON body: {exc}"}))
            return
        self._send(service.handle(endpoint, payload))


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning one service (see
    :class:`ServiceProtocol`)."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ServiceProtocol,
        *,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__(address, _Handler)

    def shutdown(self) -> None:
        super().shutdown()
        self.service.shutdown()

    def graceful_shutdown(self, *, timeout: float = 10.0) -> None:
        """Drain, then stop: close the accept loop, let every admitted
        request finish, flush and close the WALs.  The durable tail
        after this returns holds exactly the acknowledged writes —
        this is what SIGTERM/SIGINT run (see ``repro serve``)."""
        super().shutdown()
        self.service.shutdown(drain=True, timeout=timeout)


def make_server(
    catalog: DatasetCatalog,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    **service_kwargs: Any,
) -> ServiceHTTPServer:
    """Build a ready-to-run server (``port=0`` picks a free port)."""
    service = QueryService(catalog, **service_kwargs)
    return ServiceHTTPServer((host, port), service, verbose=verbose)
