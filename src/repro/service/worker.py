"""The worker-process side of the sharded serving tier.

``repro serve --workers N`` forks N of these (see
:mod:`repro.service.router` for the front).  Each worker is a complete
single-process :class:`~repro.service.server.QueryService` — its own
catalog replica, session caches, batching executor, standing registry
— plus a thin message loop speaking tuples over a pair of
``multiprocessing`` queues:

================  =============================================  ===========================
request                                                           response payload
================  =============================================  ===========================
``("handle", id, endpoint, payload)``                             ``(status, document, retry_after)``
``("healthz", id)`` / ``("metrics", id)``                         ``(status, document)``
``("has_sub", id, sid)``                                          ``bool``
``("watch_wait", id, sid, after, timeout_s)``                     snapshot dict or ``None``
``("stop", id, drain, timeout)``                                  ``"stopped"`` (loop exits)
================  =============================================  ===========================

Responses are ``(id, ok, payload)``; ``ok=False`` carries the error
string.  The boot acknowledgement uses the reserved id :data:`BOOT_ID`
and carries the worker's recovery summary.

Shard ownership (decided by the :class:`~repro.service.shard.ShardRing`
over the *same* worker count on both sides of the queue):

* The worker replicates **every** catalog table, but passes the ring's
  table ownership as ``wal_tables`` — only owned tables attach a WAL
  observer, write snapshots, or discard durable state on reload.
  Non-owned tables recover read-only to the identical version.
* The standing registry's sids are prefixed ``w{index}-sub-`` so the
  front can route ``unsubscribe``/``watch`` from the sid alone, even
  for subscriptions restored from the worker's own durable manifest
  (``subscriptions.w{index}.json``).

Requests are dispatched on a thread pool sized to the executor's
admission bound (:func:`dispatch_pool_size`), so every message is
*running* ``handle`` immediately and a full executor queue surfaces as
a real 429 — the pool never silently buffers past the bound (the front
enforces the same bound on its side and 429s the overflow itself).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping

from repro.service.shard import ShardRing

#: Reserved response id of the one boot acknowledgement.
BOOT_ID = -1

#: Dispatch-pool headroom past the executor's admission bound, for
#: inline endpoints (mutate/subscribe/...) and transport probes that
#: never enter the executor queue.
DISPATCH_SLACK = 8


def dispatch_pool_size(max_queue: int, threads: int) -> int:
    """Concurrent requests one worker accepts before its front 429s.

    The executor admits ``max_queue`` pending plus ``threads`` running
    requests; anything past that must fail fast with backpressure, so
    both the worker's dispatch pool and the front's per-worker inflight
    bound use this same number.
    """
    return max_queue + threads + DISPATCH_SLACK


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs to build its service replica.

    Mirrors the ``repro serve`` flags; picklable so it crosses the
    process boundary under any multiprocessing start method.
    """

    cache_size: int = 64
    threads: int = 2
    max_queue: int = 128
    max_batch: int = 32
    batched: bool = True
    request_timeout_s: float = 30.0
    degrade: bool = True
    degrade_deadline_s: float = 0.5
    degrade_queue_depth: int = 64
    data_dir: str | None = None
    snapshot_every: int = 256
    warm: int | None = None


def _build_service(
    index: int,
    workers: int,
    bindings: Mapping[str, str],
    config: WorkerConfig,
):
    """One worker's QueryService: full catalog replica, owned WAL shard."""
    from repro.service.catalog import DatasetCatalog
    from repro.service.degrade import DegradationPolicy
    from repro.service.faults import FaultInjector
    from repro.service.server import QueryService
    from repro.standing.wal import DurableStore

    faults = FaultInjector.from_env(crash_mode="exit")
    store = None
    if config.data_dir is not None:
        store = DurableStore(
            config.data_dir,
            snapshot_every=config.snapshot_every,
            faults=faults,
            manifest_name=f"subscriptions.w{index}.json",
        )
    wal_tables = None
    if workers > 1:
        ring = ShardRing(workers)
        wal_tables = {
            name for name in bindings if ring.table_owner(name) == index
        }
    catalog = DatasetCatalog(
        bindings,
        cache_size=config.cache_size,
        store=store,
        wal_tables=wal_tables,
    )
    degradation = None
    if config.degrade:
        degradation = DegradationPolicy(
            deadline_s=config.degrade_deadline_s,
            queue_depth=config.degrade_queue_depth,
        )
    service = QueryService(
        catalog,
        workers=config.threads,
        max_queue=config.max_queue,
        max_batch=config.max_batch,
        batched=config.batched,
        request_timeout_s=config.request_timeout_s,
        degrade=config.degrade,
        degradation=degradation,
        faults=faults,
        sid_prefix=f"w{index}-sub-",
    )
    if config.warm is not None:
        catalog.warm(config.warm)
    return service


def _boot_document(index: int, service: Any) -> dict[str, Any]:
    """The boot ack payload: what this worker recovered and restored."""
    document: dict[str, Any] = {
        "worker": index,
        "tables": sorted(service.catalog.names()),
        "wal_tables": sorted(
            name
            for name in service.catalog.names()
            if service.catalog.owns_wal(name)
        ),
        "restored_subscriptions": list(service.restored_subscriptions),
        "failed_subscriptions": dict(service.failed_subscriptions),
    }
    store = service.catalog.store
    if store is not None:
        document["recovery"] = store.recovery_info
    return document


def _dispatch(service: Any, message: tuple, response_q: Any) -> None:
    """Serve one queue message; the response mirrors its request id."""
    kind, req_id = message[0], message[1]
    try:
        result: Any
        if kind == "handle":
            reply = service.handle(message[2], message[3])
            result = (reply.status, reply.document, reply.retry_after)
        elif kind == "healthz":
            reply = service.healthz()
            result = (reply.status, reply.document)
        elif kind == "metrics":
            reply = service.metrics_document()
            result = (reply.status, reply.document)
        elif kind == "has_sub":
            result = service.has_subscription(message[2])
        elif kind == "watch_wait":
            sid, after, timeout_s = message[2], message[3], message[4]
            result = service.standing.wait(
                sid, after_version=after, timeout=timeout_s
            )
        else:
            raise ValueError(f"unknown worker message kind {kind!r}")
    except Exception as exc:
        response_q.put((req_id, False, f"{type(exc).__name__}: {exc}"))
    else:
        response_q.put((req_id, True, result))


def worker_main(
    index: int,
    workers: int,
    bindings: dict[str, str],
    config: WorkerConfig,
    request_q: Any,
    response_q: Any,
) -> None:
    """The worker process entry point: build, ack, serve until stop."""
    import signal

    # A terminal Ctrl-C delivers SIGINT to the whole foreground
    # process group — front *and* workers.  The front coordinates the
    # drain through "stop" messages, so the workers must outlive the
    # signal or the graceful path never runs.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        service = _build_service(index, workers, bindings, config)
    except Exception as exc:
        response_q.put(
            (BOOT_ID, False, f"{type(exc).__name__}: {exc}")
        )
        return
    response_q.put((BOOT_ID, True, _boot_document(index, service)))
    pool = ThreadPoolExecutor(
        max_workers=dispatch_pool_size(config.max_queue, config.threads),
        thread_name_prefix=f"repro-w{index}",
    )
    while True:
        message = request_q.get()
        if message[0] == "stop":
            _, req_id, drain, timeout = message
            if drain:
                # Graceful: finish every dispatched request (the
                # executor is still running), then drain the executor
                # queue and flush/close this worker's WAL shard.
                pool.shutdown(wait=True)
                service.shutdown(drain=True, timeout=timeout)
            else:
                service.shutdown()
                pool.shutdown(wait=False)
            response_q.put((req_id, True, "stopped"))
            break
        pool.submit(_dispatch, service, message, response_q)
    response_q.close()
    response_q.join_thread()
