"""The front of the sharded serving tier: route, fan out, roll up.

``repro serve --workers N`` builds one :class:`ShardedQueryService`
in the parent process and N worker processes
(:mod:`repro.service.worker`).  The front implements the same
:class:`~repro.service.server.ServiceProtocol` the HTTP handler speaks,
so ``--workers 1`` (a plain in-process :class:`QueryService`) and
``--workers 8`` serve byte-identical responses through the same
transport.

Routing (one :class:`~repro.service.shard.ShardRing`, shared by
construction with the workers):

* **Query endpoints** (answer / distribution / typical / explain /
  subscribe) route by ``(table, p_tau)`` — the shape the session
  caches and the executor's batch key both key on — so one
  distribution's staged LRU state lives on exactly one worker and
  single-flight keeps holding across processes.
* **Mutations and reloads** serialize per table under a front-side
  lock and fan out to *every* worker, table owner first: the owner
  persists to its WAL shard before acknowledging (fsync-before-ack
  unchanged), then the replicas apply the same deterministic op.  The
  client ack waits for all replicas, so any later read — routed to
  whichever worker owns its query shape — observes the write.
* **Subscriptions** live on the query owner of their shape; sids are
  prefixed ``w{index}-sub-`` so ``unsubscribe`` and ``watch`` route
  from the sid alone, restarts included.

Backpressure is enforced twice with the same bound: the front caps
in-flight requests per worker at the worker's admission bound
(:func:`~repro.service.worker.dispatch_pool_size`) and 429s the
overflow with a derived ``Retry-After``; under that cap the worker's
own executor queue produces the authoritative 429s, which pass
through untouched.

Failure modes: a worker that dies fails its in-flight requests with
500 and ``/healthz`` flips to ``degraded`` naming the dead worker; a
replica that rejects a mutation the owner accepted is reported as a
500 (divergence — restart the server) rather than silently serving
split-brain answers.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import re
import threading
import time
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from typing import Any, Callable, Iterator, Mapping

from repro.exceptions import ServiceError
from repro.service.batching import DEFAULT_RETRY_AFTER_S
from repro.service.metrics import ServiceMetrics
from repro.service.server import (
    MAX_WATCH_TIMEOUT_S,
    WATCH_WAIT_SLICE_S,
    ServiceHTTPServer,
    _Reply,
)
from repro.service.shard import ShardRing, payload_query_key
from repro.service.worker import (
    BOOT_ID,
    WorkerConfig,
    dispatch_pool_size,
    worker_main,
)

#: How long to wait for one worker to build its replica and ack boot.
DEFAULT_BOOT_TIMEOUT_S = 120.0

#: Slack past the request timeout before the front declares 504 on a
#: forwarded request (covers queue hops and response marshalling).
FORWARD_TIMEOUT_SLACK_S = 10.0

#: Endpoints routed by query shape to the ring's query owner.
QUERY_ENDPOINTS = frozenset(
    {"answer", "distribution", "typical", "explain", "subscribe"}
)

#: Endpoints fanned out to every worker, table owner first.
TABLE_ENDPOINTS = frozenset({"mutate", "reload"})

_SID_PREFIX = re.compile(r"^w(\d+)-")


class WorkerHandle:
    """One worker process: its queues, reader thread, pending futures."""

    def __init__(self, index: int, ctx: Any) -> None:
        self.index = index
        self.request_q = ctx.Queue()
        self.response_q = ctx.Queue()
        self.process: Any = None
        self.inflight = 0
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._reader: threading.Thread | None = None
        self._closed = False

    def start_reader(self) -> None:
        self._reader = threading.Thread(
            target=self._read_responses,
            name=f"repro-front-w{self.index}",
            daemon=True,
        )
        self._reader.start()

    def _read_responses(self) -> None:
        """Resolve response messages into their futures; when the
        worker dies, fail everything still pending."""
        import queue as queue_module

        while True:
            try:
                req_id, ok, payload = self.response_q.get(timeout=0.5)
            except queue_module.Empty:
                if self._closed or not self.process.is_alive():
                    self._fail_pending(
                        f"worker w{self.index} is not running"
                    )
                    if self._closed:
                        return
                    # Keep watching: late messages may still surface
                    # from the queue buffer after process exit.
                continue
            except (EOFError, OSError):
                self._fail_pending(f"worker w{self.index} closed its queue")
                return
            with self._lock:
                future = self._pending.pop(req_id, None)
            if future is None:
                continue
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(ServiceError(str(payload)))

    def _fail_pending(self, reason: str) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(ServiceError(reason))

    def submit(self, req_id: int, message: tuple) -> Future:
        future: Future = Future()
        with self._lock:
            self._pending[req_id] = future
        try:
            self.request_q.put(message)
        except (ValueError, OSError) as exc:
            with self._lock:
                self._pending.pop(req_id, None)
            future.set_exception(
                ServiceError(f"worker w{self.index} unreachable: {exc}")
            )
        return future

    def close(self) -> None:
        self._closed = True


class WorkerPool:
    """Boot, address and stop the worker processes."""

    def __init__(
        self,
        workers: int,
        bindings: Mapping[str, str],
        config: WorkerConfig,
        *,
        boot_timeout_s: float = DEFAULT_BOOT_TIMEOUT_S,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.bindings = dict(bindings)
        self.config = config
        # fork shares the parent's loaded modules (fast boot); fall
        # back to the platform default where fork is unavailable.
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        self.handles = [WorkerHandle(i, ctx) for i in range(workers)]
        self.boot_documents: list[dict[str, Any]] = []
        self._req_ids = itertools.count(1)
        for handle in self.handles:
            handle.process = ctx.Process(
                target=worker_main,
                args=(
                    handle.index,
                    workers,
                    self.bindings,
                    config,
                    handle.request_q,
                    handle.response_q,
                ),
                daemon=True,
                name=f"repro-worker-{handle.index}",
            )
            handle.process.start()
        try:
            for handle in self.handles:
                self.boot_documents.append(
                    self._await_boot(handle, boot_timeout_s)
                )
        except Exception:
            self.stop(drain=False, timeout=1.0)
            raise
        for handle in self.handles:
            handle.start_reader()

    @staticmethod
    def _await_boot(handle: WorkerHandle, timeout_s: float) -> dict:
        import queue as queue_module

        try:
            req_id, ok, payload = handle.response_q.get(timeout=timeout_s)
        except queue_module.Empty:
            raise ServiceError(
                f"worker w{handle.index} did not boot within {timeout_s}s"
            ) from None
        if req_id != BOOT_ID:  # pragma: no cover - defensive
            raise ServiceError(
                f"worker w{handle.index} spoke before booting"
            )
        if not ok:
            raise ServiceError(
                f"worker w{handle.index} failed to boot: {payload}"
            )
        return dict(payload)

    def request(
        self, index: int, kind: str, *args: Any, timeout: float
    ) -> Any:
        """One round trip to worker ``index``; raises on death/timeout."""
        handle = self.handles[index]
        req_id = next(self._req_ids)
        future = handle.submit(req_id, (kind, req_id, *args))
        return future.result(timeout)

    def alive(self) -> list[bool]:
        return [bool(h.process.is_alive()) for h in self.handles]

    def stop(self, *, drain: bool, timeout: float) -> None:
        """Stop every worker (drain first when asked), then reap."""
        futures = []
        for handle in self.handles:
            req_id = next(self._req_ids)
            futures.append(
                handle.submit(req_id, ("stop", req_id, drain, timeout))
            )
        deadline = time.monotonic() + (timeout if drain else 1.0) + 5.0
        for handle, future in zip(self.handles, futures):
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                future.result(remaining)
            except Exception:
                pass  # dead or wedged; terminate below
        for handle in self.handles:
            handle.close()
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)


class ShardedQueryService:
    """The front: ServiceProtocol over a pool of worker processes."""

    def __init__(
        self,
        bindings: Mapping[str, str],
        *,
        workers: int,
        config: WorkerConfig | None = None,
        boot_timeout_s: float = DEFAULT_BOOT_TIMEOUT_S,
        **config_kwargs: Any,
    ) -> None:
        if config is None:
            config = WorkerConfig(**config_kwargs)
        elif config_kwargs:
            raise ServiceError(
                "pass either a WorkerConfig or keyword fields, not both"
            )
        self.ring = ShardRing(workers)
        self.config = config
        self.metrics = ServiceMetrics()
        self.request_timeout_s = config.request_timeout_s
        self.pool = WorkerPool(
            workers, bindings, config, boot_timeout_s=boot_timeout_s
        )
        self._started = time.time()
        self._inflight_limit = dispatch_pool_size(
            config.max_queue, config.threads
        )
        self._inflight = [0] * workers
        self._inflight_lock = threading.Lock()
        #: Last Retry-After hint seen from each worker's 429s; the
        #: front's own rejections reuse it (best available estimate).
        self._last_retry_hint = [DEFAULT_RETRY_AFTER_S] * workers
        self._table_locks: dict[str, threading.Lock] = {
            name: threading.Lock() for name in self.pool.bindings
        }

    # ------------------------------------------------------------------
    # Forwarding plumbing
    # ------------------------------------------------------------------
    def _admit(self, index: int) -> bool:
        with self._inflight_lock:
            if self._inflight[index] >= self._inflight_limit:
                return False
            self._inflight[index] += 1
            return True

    def _release(self, index: int) -> None:
        with self._inflight_lock:
            self._inflight[index] -= 1

    def _forward(
        self, index: int, endpoint: str, payload: dict[str, Any]
    ) -> _Reply:
        """One request to one worker, with front-side admission."""
        if not self._admit(index):
            self.metrics.record_rejection()
            hint = self._last_retry_hint[index]
            return _Reply(
                429,
                {
                    "error": (
                        f"worker w{index} is at capacity "
                        f"({self._inflight_limit} in flight)"
                    ),
                    "retry_after_s": hint,
                },
                retry_after=hint,
            )
        try:
            timeout = self.request_timeout_s + FORWARD_TIMEOUT_SLACK_S
            status, document, retry_after = self.pool.request(
                index, "handle", endpoint, payload, timeout=timeout
            )
        except FutureTimeoutError:
            return _Reply(
                504,
                {
                    "error": (
                        f"worker w{index} did not answer within "
                        f"{self.request_timeout_s}s"
                    )
                },
            )
        except ServiceError as exc:
            return _Reply(500, {"error": str(exc)})
        finally:
            self._release(index)
        if status == 429:
            self.metrics.record_rejection()
            if isinstance(retry_after, (int, float)) and retry_after > 0:
                self._last_retry_hint[index] = float(retry_after)
        return _Reply(status, document, retry_after=retry_after)

    def _sid_worker(self, sid: str) -> int | None:
        """The worker index a sid encodes (``w{i}-sub-N``), or None."""
        match = _SID_PREFIX.match(sid or "")
        if match is None:
            return None
        index = int(match.group(1))
        return index if index < self.pool.workers else None

    # ------------------------------------------------------------------
    # ServiceProtocol
    # ------------------------------------------------------------------
    def handle(self, endpoint: str, payload: dict[str, Any]) -> _Reply:
        if endpoint in QUERY_ENDPOINTS:
            owner = self.ring.owner(payload_query_key(payload))
            return self._forward(owner, endpoint, payload)
        if endpoint in TABLE_ENDPOINTS:
            return self._fan_out_table(endpoint, payload)
        if endpoint == "unsubscribe":
            sid = payload.get("sid") if isinstance(payload, dict) else None
            index = self._sid_worker(sid) if isinstance(sid, str) else None
            if index is not None:
                return self._forward(index, endpoint, payload)
            # Unknown shape: let worker 0 produce the canonical
            # 400/removed=false document.
            return self._forward(0, endpoint, payload)
        return _Reply(404, {"error": f"unknown endpoint {endpoint!r}"})

    def _fan_out_table(
        self, endpoint: str, payload: dict[str, Any]
    ) -> _Reply:
        """Mutate/reload: owner first (durability), then every replica.

        Serialized per table so all replicas apply the same op order —
        the invariant that keeps them byte-identical.
        """
        table = payload.get("table") if isinstance(payload, dict) else None
        if not isinstance(table, str) or not table:
            return self._forward(0, endpoint, payload)
        lock = self._table_locks.get(table)
        if lock is None:
            # Unknown table: any worker produces the canonical 404.
            return self._forward(
                self.ring.table_owner(table), endpoint, payload
            )
        with lock:
            owner = self.ring.table_owner(table)
            reply = self._forward(owner, endpoint, payload)
            if reply.status != 200:
                # The owner rejected (or failed) before persisting:
                # nothing was applied anywhere, so the replicas are
                # untouched and consistent.
                return reply
            failures = {}
            for index in range(self.pool.workers):
                if index == owner:
                    continue
                replica = self._forward(index, endpoint, payload)
                if replica.status != 200:
                    failures[f"w{index}"] = replica.document
            if failures:
                return _Reply(
                    500,
                    {
                        "error": (
                            f"{endpoint} diverged: the table owner "
                            f"w{owner} applied the operation but "
                            "replicas rejected it; restart the server "
                            "to re-sync from durable state"
                        ),
                        "table": table,
                        "owner": reply.document,
                        "failures": failures,
                    },
                )
            return reply

    def has_subscription(self, sid: str) -> bool:
        index = self._sid_worker(sid)
        if index is None:
            return False
        try:
            return bool(
                self.pool.request(index, "has_sub", sid, timeout=5.0)
            )
        except Exception:
            return False

    def watch_events(
        self,
        sid: str,
        *,
        after: int,
        count: int,
        timeout_s: float,
        should_stop: Callable[[], bool] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Watch by proxy: sliced ``watch_wait`` round trips to the
        sid's worker, same semantics as the in-process generator."""
        index = self._sid_worker(sid)
        if index is None:
            return
        deadline = time.monotonic() + min(
            max(timeout_s, 0.0), MAX_WATCH_TIMEOUT_S
        )
        watermark = after
        sent = 0
        while sent < count:
            if should_stop is not None and should_stop():
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            slice_s = min(remaining, WATCH_WAIT_SLICE_S)
            try:
                snapshot = self.pool.request(
                    index,
                    "watch_wait",
                    sid,
                    watermark,
                    slice_s,
                    timeout=slice_s + FORWARD_TIMEOUT_SLACK_S,
                )
            except Exception:
                return
            if snapshot is None:
                return
            if snapshot["version"] <= watermark:
                continue
            watermark = snapshot["version"]
            sent += 1
            yield snapshot

    def healthz(self) -> _Reply:
        """Merged liveness: per-worker documents plus the ring map."""
        alive = self.pool.alive()
        documents: dict[str, Any] = {}
        for index in range(self.pool.workers):
            if not alive[index]:
                documents[f"w{index}"] = {"status": "dead"}
                continue
            try:
                status, document = self.pool.request(
                    index, "healthz", timeout=10.0
                )
            except Exception as exc:
                documents[f"w{index}"] = {
                    "status": "unreachable",
                    "error": str(exc),
                }
                alive[index] = False
            else:
                documents[f"w{index}"] = document
        # Each table's authoritative row comes from its WAL owner.
        tables: dict[str, Any] = {}
        for name in sorted(self.pool.bindings):
            owner = self.ring.table_owner(name)
            owner_doc = documents.get(f"w{owner}", {})
            row = owner_doc.get("tables", {}).get(name)
            if row is not None:
                tables[name] = dict(row, shard_owner=owner)
        healthy = all(alive)
        document = {
            "status": "ok" if healthy else "degraded",
            "uptime_s": round(time.time() - self._started, 3),
            "sharding": dict(
                self.ring.describe(),
                inflight_limit=self._inflight_limit,
                alive=sum(1 for a in alive if a),
            ),
            "tables": tables,
            "workers": documents,
        }
        return _Reply(200 if healthy else 503, document)

    def metrics_document(self) -> _Reply:
        """Roll per-worker metrics into one document.

        Counters sum across workers (a fan-out mutation counts once
        per replica — the rollup reports work performed, not client
        operations); gauges take the max.  Per-worker documents ride
        along under ``workers`` for anything the rollup flattens.
        """
        worker_docs: dict[str, Any] = {}
        for index in range(self.pool.workers):
            try:
                _, document = self.pool.request(
                    index, "metrics", timeout=10.0
                )
            except Exception as exc:
                document = {"error": str(exc)}
            worker_docs[f"w{index}"] = document
        front = self.metrics.snapshot()
        merged: dict[str, Any] = {
            "uptime_s": round(time.time() - self._started, 3),
            "sharding": self.ring.describe(),
            "requests": _merge_requests(worker_docs),
            "batches": _merge_batches(worker_docs),
            "queue": _merge_queue(worker_docs, front),
            "degraded": _merge_degraded(worker_docs),
            "watch": front["watch"],
            "standing": _sum_int_documents(worker_docs, "standing"),
            "cache": _merge_cache(worker_docs),
            "fusion": _sum_int_documents(worker_docs, "fusion"),
            "workers": worker_docs,
        }
        return _Reply(200, merged)

    def shutdown(
        self, *, drain: bool = False, timeout: float = 10.0
    ) -> None:
        self.pool.stop(drain=drain, timeout=timeout)


# ----------------------------------------------------------------------
# Metric rollups
# ----------------------------------------------------------------------
def _merge_requests(worker_docs: Mapping[str, Any]) -> dict[str, Any]:
    merged: dict[str, dict[str, Any]] = {}
    for document in worker_docs.values():
        for endpoint, entry in document.get("requests", {}).items():
            row = merged.setdefault(
                endpoint, {"count": 0, "errors": 0, "latency_ms_sum": 0.0}
            )
            row["count"] += entry.get("count", 0)
            row["errors"] += entry.get("errors", 0)
            row["latency_ms_sum"] += entry.get("latency_ms", {}).get(
                "sum", 0.0
            )
    for row in merged.values():
        count = row["count"]
        row["latency_ms_mean"] = (
            round(row.pop("latency_ms_sum") / count, 6) if count else None
        )
    return dict(sorted(merged.items()))


def _merge_batches(worker_docs: Mapping[str, Any]) -> dict[str, Any]:
    count = requests = 0
    for document in worker_docs.values():
        batches = document.get("batches", {})
        count += batches.get("count", 0)
        requests += batches.get("requests", 0)
    return {
        "count": count,
        "requests": requests,
        "mean_size": round(requests / count, 3) if count else None,
    }


def _merge_queue(
    worker_docs: Mapping[str, Any], front: Mapping[str, Any]
) -> dict[str, Any]:
    depth = rejected = max_depth = 0
    for document in worker_docs.values():
        queue = document.get("queue", {})
        depth += queue.get("depth", 0)
        rejected += queue.get("rejected", 0)
        max_depth = max(max_depth, queue.get("max_depth", 0))
    return {
        "depth": depth,
        "max_depth": max_depth,
        "rejected": rejected,
        "rejected_front": front.get("queue", {}).get("rejected", 0),
    }


def _merge_degraded(worker_docs: Mapping[str, Any]) -> dict[str, Any]:
    count = 0
    reasons: dict[str, int] = {}
    for document in worker_docs.values():
        degraded = document.get("degraded", {})
        count += degraded.get("count", 0)
        for reason, n in degraded.get("reasons", {}).items():
            reasons[reason] = reasons.get(reason, 0) + n
    return {"count": count, "reasons": dict(sorted(reasons.items()))}


def _sum_int_documents(
    worker_docs: Mapping[str, Any], section: str
) -> dict[str, int]:
    merged: dict[str, int] = {}
    for document in worker_docs.values():
        for key, value in document.get(section, {}).items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            merged[key] = merged.get(key, 0) + value
    return dict(sorted(merged.items()))


def _merge_cache(worker_docs: Mapping[str, Any]) -> dict[str, Any]:
    merged: dict[str, dict[str, Any]] = {}
    for document in worker_docs.values():
        for stage, info in document.get("cache", {}).items():
            row = merged.setdefault(stage, {})
            for key, value in info.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                if key == "hit_rate":
                    continue
                row[key] = row.get(key, 0) + value
    for row in merged.values():
        lookups = row.get("hits", 0) + row.get("misses", 0)
        row["hit_rate"] = (
            round(row.get("hits", 0) / lookups, 4) if lookups else None
        )
    return dict(sorted(merged.items()))


def make_sharded_server(
    bindings: Mapping[str, str],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    workers: int,
    **config_kwargs: Any,
) -> ServiceHTTPServer:
    """An HTTP server fronting ``workers`` worker processes."""
    service = ShardedQueryService(
        bindings, workers=workers, **config_kwargs
    )
    try:
        return ServiceHTTPServer((host, port), service, verbose=verbose)
    except Exception:
        service.shutdown()
        raise
