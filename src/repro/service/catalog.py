"""The dataset catalog: named resident tables behind one Session.

A :class:`DatasetCatalog` loads every configured table **once at
startup** — from ``.csv``/``.json`` files or from one-line generator
specs (:mod:`repro.datasets.specs`) — and keeps it resident inside a
shared, thread-safe :class:`~repro.api.session.Session`.  The
session's staged LRU caches are the "conditioned distribution
computed once, reused across queries" of the serving architecture:
the first request against a ``(table, scorer, k, p_tau)`` shape pays
for the scored prefix and the DP/MC distribution; every later request
— any semantics, any ``c`` — is a cache lookup bounded by the
configured LRU capacity.

Catalog entries are declared as ``name=source`` strings::

    readings=path/to/readings.csv
    demo=synthetic:tuples=400,me=0.9,seed=5
    soldiers=soldier:
    events=disk:path/to/packed_dir

or as a JSON catalog file ``{"tables": {"name": "source", ...}}``.

``disk:`` sources open a directory produced by ``repro pack`` as a
lazy, read-only :class:`~repro.storage.table.DiskBackedTable`: queries
on the packing scorer stream prefix pages straight off disk, and —
because the columns are memory-mapped — N sharded workers serving the
same spec share **one** on-disk copy through the OS page cache instead
of holding N in-RAM replicas.  Disk tables are never wrapped mutable
and never WAL-recovered; ``/v1/mutate`` on one fails with the ordinary
not-mutable error.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.api.session import DEFAULT_CACHE_SIZE, Session
from repro.api.spec import QuerySpec
from repro.datasets.specs import generate_from_spec, is_generator_spec
from repro.exceptions import ServiceError
from repro.io import load_table_file
from repro.standing.changelog import Delta, MutableUncertainTable
from repro.standing.wal import DurableStore
from repro.uncertain.table import UncertainTable


@dataclass(frozen=True)
class TableEntry:
    """One catalog table: where it came from and its shape."""

    name: str
    source: str
    tuples: int
    me_rules: int


#: Source prefix naming a packed on-disk table (``repro pack`` output).
DISK_SOURCE_PREFIX = "disk:"


def is_disk_source(source: str) -> bool:
    """Whether a catalog source names a packed on-disk table."""
    return source.startswith(DISK_SOURCE_PREFIX)


def me_rule_count(table: UncertainTable) -> int:
    """Explicit ME-rule count without forcing a lazy table resident."""
    fast = getattr(table, "me_rule_count", None)
    if fast is not None:
        return int(fast())
    return len(table.explicit_rules)


def parse_binding(binding: str) -> tuple[str, str]:
    """Split one ``name=source`` catalog binding."""
    name, sep, source = binding.partition("=")
    name = name.strip()
    if not sep or not name or not source:
        raise ServiceError(
            f"catalog binding must be name=source, got {binding!r}"
        )
    return name, source


def load_catalog_file(path: str | Path) -> dict[str, str]:
    """``name -> source`` bindings of a JSON catalog file."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"cannot read catalog file {path}: {exc}") from exc
    tables = document.get("tables")
    if not isinstance(tables, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in tables.items()
    ):
        raise ServiceError(
            f"catalog file {path} must hold "
            '{"tables": {"name": "source", ...}}'
        )
    return tables


class DatasetCatalog:
    """Named tables loaded at startup, resident in one shared Session.

    :param bindings: ``name -> source`` mapping or an iterable of
        ``name=source`` strings; a source is a table-file path or a
        generator spec.
    :param cache_size: per-stage LRU capacity of the shared session
        (bounds the resident prefix/PMF/answer state).
    :param mutable: load every table as a
        :class:`~repro.standing.changelog.MutableUncertainTable`, so
        ``/v1/mutate`` (and the standing-query registry) can change it
        in place.  The default; pass ``False`` for a read-only catalog.
    :param store: optional :class:`~repro.standing.wal.DurableStore`
        (``repro serve --data-dir``).  Mutable tables then boot by
        WAL-over-snapshot recovery — each at its exact pre-crash
        version — and every accepted mutation is persisted before it
        is acknowledged; a :meth:`reload` discards the table's durable
        state (the source is the truth a reload returns to).
    :param wal_tables: the tables this process *owns* durably (the
        sharded-serving tier's per-worker WAL ownership).  ``None`` —
        the default, and the whole story for single-process serving —
        owns everything.  Non-owned tables still recover from the
        store (read-only: identical state, no writes) so every worker
        replica boots at the same version; only the owner appends WAL
        records, writes snapshots, or discards durable state on
        reload.
    """

    def __init__(
        self,
        bindings: Mapping[str, str] | Iterable[str],
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        mutable: bool = True,
        store: DurableStore | None = None,
        wal_tables: set[str] | frozenset[str] | None = None,
    ) -> None:
        if not isinstance(bindings, Mapping):
            bindings = dict(parse_binding(entry) for entry in bindings)
        if not bindings:
            raise ServiceError("the dataset catalog must name >= 1 table")
        if store is not None and not mutable:
            raise ServiceError(
                "a durable store requires a mutable catalog"
            )
        self._entries: dict[str, TableEntry] = {}
        self._mutable = mutable
        self.store = store
        self._wal_tables = (
            None if wal_tables is None else frozenset(wal_tables)
        )
        # Serializes reload against mutate: a mutation admitted while
        # a reload is swapping the table object must land on whichever
        # object is current under the name, never on a stale reference
        # captured before the swap.
        self._reload_lock = threading.RLock()
        self.session = Session(cache_size=cache_size)
        for name, source in bindings.items():
            self._install(name, source)

    def owns_wal(self, name: str) -> bool:
        """Whether this process persists ``name``'s WAL/snapshots."""
        return self._wal_tables is None or name in self._wal_tables

    def _install(self, name: str, source: str) -> UncertainTable:
        table: UncertainTable
        if is_disk_source(source):
            # Packed tables stay on disk, shared and read-only: no
            # mutable wrapping (which would materialize a full
            # resident copy) and no WAL recovery (there is nothing to
            # replay onto an immutable table).
            table = self._load(name, source)
        elif self._mutable and self.store is not None:
            table = self.store.recover_or_load(
                name,
                lambda: self._load(name, source),
                read_only=not self.owns_wal(name),
            )
        else:
            table = self._load(name, source)
            if self._mutable:
                table = MutableUncertainTable.from_table(table)
        self.session.register(name, table)
        self._entries[name] = TableEntry(
            name=name,
            source=source,
            tuples=len(table),
            me_rules=me_rule_count(table),
        )
        return table

    @staticmethod
    def _load(name: str, source: str) -> UncertainTable:
        try:
            if is_disk_source(source):
                from repro.storage import open_table

                return open_table(source[len(DISK_SOURCE_PREFIX) :])
            if is_generator_spec(source):
                return generate_from_spec(source)
            return load_table_file(source)
        except ServiceError:
            raise
        except Exception as exc:
            raise ServiceError(
                f"cannot load catalog table {name!r} from {source!r}: {exc}"
            ) from exc

    def reload(self, name: str) -> dict[str, Any]:
        """Re-load one table from its source and drop its cached stages.

        The freshly loaded table replaces the old object under the
        name; :meth:`Session.invalidate_table` then evicts every
        prefix/PMF/answer entry derived from the *old* object (the
        eviction counts surface per stage in ``/metrics``).  Mutations
        applied since the original load are discarded — the source is
        the truth a reload returns to.
        """
        with self._reload_lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ServiceError(f"unknown catalog table {name!r}")
            old = self.session.catalog.resolve(name)
            if self.store is not None and self.owns_wal(name):
                self.store.discard(name)
            table = self._install(name, entry.source)
            evicted = self.session.invalidate_table(old)
            return {
                "table": name,
                "source": entry.source,
                "tuples": len(table),
                "evicted": evicted,
            }

    def mutate(
        self,
        name: str,
        op: str,
        payload: Mapping[str, Any],
        *,
        registry: Any = None,
    ) -> Delta:
        """Apply one mutation to the table *currently* under ``name``.

        Resolves the table by name under the reload lock, so a
        mutation racing a :meth:`reload` always lands on whichever
        object holds the name when the mutation is admitted — never on
        a stale reference captured before the swap (which would mutate
        an unreachable table and silently drop the change).  When a
        durable store is attached, the table's WAL observer fires
        inside ``apply_payload``, so the record is on disk before this
        returns.

        :param registry: optional
            :class:`~repro.standing.registry.StandingRegistry`; its
            subscriptions on the table are maintained before returning.
        """
        with self._reload_lock:
            table = self.session.catalog.resolve(name)
            if not isinstance(table, MutableUncertainTable):
                raise ServiceError(
                    f"table {name!r} is not mutable; load the catalog "
                    "with mutable tables to accept mutations"
                )
            delta = table.apply_payload(op, payload)
            if registry is not None:
                registry.on_delta(table, delta)
            return delta

    def names(self) -> tuple[str, ...]:
        """Catalog table names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> dict[str, dict[str, Any]]:
        """Per-table metadata for ``/healthz`` and startup logging.

        ``tuples`` and ``version`` report the table's *live* state
        (mutations included), not the as-loaded shape — the chaos
        harness reads the recovered version from here.
        """
        document = {}
        for name, entry in sorted(self._entries.items()):
            table = self.session.catalog.resolve(name)
            document[name] = {
                "source": entry.source,
                "tuples": len(table),
                "me_rules": me_rule_count(table),
                "version": getattr(table, "version", 0),
            }
        return document

    def storage_info(self) -> dict[str, Any] | None:
        """Page-cache counters of every disk-backed table, or ``None``.

        One entry per packed table (``item_pages``/``attr_pages``, each
        with byte-budget fields) — the ``storage`` section of
        ``/metrics``.  An all-resident catalog reports ``None`` so the
        section is simply absent.
        """
        document: dict[str, Any] = {}
        for name in self.names():
            table = self.session.catalog.resolve(name)
            store = getattr(table, "store", None)
            if store is not None and hasattr(store, "cache_info"):
                document[name] = store.cache_info()
        return document or None

    def warm(
        self, k: int, *, scorer: str = "score", p_tau: float = 0.0
    ) -> int:
        """Precompute each table's prefix + distribution for a shape.

        Returns the number of tables warmed.  Useful at startup so the
        first real request never pays the cold DP cost.
        """
        for name in self.names():
            self.session.distribution(
                QuerySpec(table=name, scorer=scorer, k=k, p_tau=p_tau)
            )
        return len(self._entries)
