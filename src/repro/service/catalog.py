"""The dataset catalog: named resident tables behind one Session.

A :class:`DatasetCatalog` loads every configured table **once at
startup** — from ``.csv``/``.json`` files or from one-line generator
specs (:mod:`repro.datasets.specs`) — and keeps it resident inside a
shared, thread-safe :class:`~repro.api.session.Session`.  The
session's staged LRU caches are the "conditioned distribution
computed once, reused across queries" of the serving architecture:
the first request against a ``(table, scorer, k, p_tau)`` shape pays
for the scored prefix and the DP/MC distribution; every later request
— any semantics, any ``c`` — is a cache lookup bounded by the
configured LRU capacity.

Catalog entries are declared as ``name=source`` strings::

    readings=path/to/readings.csv
    demo=synthetic:tuples=400,me=0.9,seed=5
    soldiers=soldier:

or as a JSON catalog file ``{"tables": {"name": "source", ...}}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.api.session import DEFAULT_CACHE_SIZE, Session
from repro.api.spec import QuerySpec
from repro.datasets.specs import generate_from_spec, is_generator_spec
from repro.exceptions import ServiceError
from repro.io import load_table_file
from repro.standing.changelog import MutableUncertainTable
from repro.uncertain.table import UncertainTable


@dataclass(frozen=True)
class TableEntry:
    """One catalog table: where it came from and its shape."""

    name: str
    source: str
    tuples: int
    me_rules: int


def parse_binding(binding: str) -> tuple[str, str]:
    """Split one ``name=source`` catalog binding."""
    name, sep, source = binding.partition("=")
    name = name.strip()
    if not sep or not name or not source:
        raise ServiceError(
            f"catalog binding must be name=source, got {binding!r}"
        )
    return name, source


def load_catalog_file(path: str | Path) -> dict[str, str]:
    """``name -> source`` bindings of a JSON catalog file."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"cannot read catalog file {path}: {exc}") from exc
    tables = document.get("tables")
    if not isinstance(tables, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in tables.items()
    ):
        raise ServiceError(
            f"catalog file {path} must hold "
            '{"tables": {"name": "source", ...}}'
        )
    return tables


class DatasetCatalog:
    """Named tables loaded at startup, resident in one shared Session.

    :param bindings: ``name -> source`` mapping or an iterable of
        ``name=source`` strings; a source is a table-file path or a
        generator spec.
    :param cache_size: per-stage LRU capacity of the shared session
        (bounds the resident prefix/PMF/answer state).
    :param mutable: load every table as a
        :class:`~repro.standing.changelog.MutableUncertainTable`, so
        ``/v1/mutate`` (and the standing-query registry) can change it
        in place.  The default; pass ``False`` for a read-only catalog.
    """

    def __init__(
        self,
        bindings: Mapping[str, str] | Iterable[str],
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        mutable: bool = True,
    ) -> None:
        if not isinstance(bindings, Mapping):
            bindings = dict(parse_binding(entry) for entry in bindings)
        if not bindings:
            raise ServiceError("the dataset catalog must name >= 1 table")
        self._entries: dict[str, TableEntry] = {}
        self._mutable = mutable
        self.session = Session(cache_size=cache_size)
        for name, source in bindings.items():
            self._install(name, source)

    def _install(self, name: str, source: str) -> UncertainTable:
        table = self._load(name, source)
        if self._mutable:
            table = MutableUncertainTable.from_table(table)
        self.session.register(name, table)
        self._entries[name] = TableEntry(
            name=name,
            source=source,
            tuples=len(table),
            me_rules=len(table.explicit_rules),
        )
        return table

    @staticmethod
    def _load(name: str, source: str) -> UncertainTable:
        try:
            if is_generator_spec(source):
                return generate_from_spec(source)
            return load_table_file(source)
        except ServiceError:
            raise
        except Exception as exc:
            raise ServiceError(
                f"cannot load catalog table {name!r} from {source!r}: {exc}"
            ) from exc

    def reload(self, name: str) -> dict[str, Any]:
        """Re-load one table from its source and drop its cached stages.

        The freshly loaded table replaces the old object under the
        name; :meth:`Session.invalidate_table` then evicts every
        prefix/PMF/answer entry derived from the *old* object (the
        eviction counts surface per stage in ``/metrics``).  Mutations
        applied since the original load are discarded — the source is
        the truth a reload returns to.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise ServiceError(f"unknown catalog table {name!r}")
        old = self.session.catalog.resolve(name)
        table = self._install(name, entry.source)
        evicted = self.session.invalidate_table(old)
        return {
            "table": name,
            "source": entry.source,
            "tuples": len(table),
            "evicted": evicted,
        }

    def names(self) -> tuple[str, ...]:
        """Catalog table names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> dict[str, dict[str, Any]]:
        """Per-table metadata for ``/healthz`` and startup logging."""
        return {
            name: {
                "source": entry.source,
                "tuples": entry.tuples,
                "me_rules": entry.me_rules,
            }
            for name, entry in sorted(self._entries.items())
        }

    def warm(
        self, k: int, *, scorer: str = "score", p_tau: float = 0.0
    ) -> int:
        """Precompute each table's prefix + distribution for a shape.

        Returns the number of tables warmed.  Useful at startup so the
        first real request never pays the cold DP cost.
        """
        for name in self.names():
            self.session.distribution(
                QuerySpec(table=name, scorer=scorer, k=k, p_tau=p_tau)
            )
        return len(self._entries)
