"""Consistent-hash shard routing for the multi-process serving tier.

``repro serve --workers N`` runs N worker processes, each holding a
full replica of the catalog but *owning* a consistent-hash shard of
the request space.  Two key families route through one ring:

* **query keys** ``("q", table, p_tau)`` — every query endpoint
  (answer / distribution / typical / explain / subscribe).  A given
  distribution shape — the ``(table, p_tau)`` pair the Session's
  staged LRU caches and the batching executor's
  :meth:`~repro.api.logical.LogicalPlan.batch_key` both key on —
  therefore lands on exactly one worker: its scored prefix, DP
  distribution and answer caches live there and nowhere else, and the
  executor's single-flight property keeps holding across processes.
* **table keys** ``("t", table)`` — table-level ownership: the worker
  that writes the table's WAL/snapshots and answers authoritatively
  for ``/v1/mutate`` and ``/v1/reload``.  Mutations are *applied* on
  every worker (replicas must stay identical for query routing to be
  sound) but only the owner persists them, so the fsync-before-ack
  ordering of :mod:`repro.standing.wal` is unchanged.

The ring hashes with BLAKE2b over a canonical key rendering — never
with :func:`hash`, which is salted per process and would route the
same key differently in the front and the workers.  Virtual nodes
smooth the key distribution; the mapping depends only on the worker
count, so catalog reloads (and server restarts with the same
``--workers``) never move a key between workers.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from hashlib import blake2b
from typing import Hashable

from repro.core.distribution import DEFAULT_P_TAU
from repro.exceptions import ServiceError

#: Virtual nodes per worker on the ring.
DEFAULT_VNODES = 64


def stable_hash(key: Hashable) -> int:
    """A process-stable 64-bit hash of a routing key.

    Keys are rendered through ``repr`` (tuples of strings and floats
    here, so the rendering is canonical) and digested with BLAKE2b;
    Python's builtin ``hash`` is per-process salted and must never
    decide cross-process placement.
    """
    digest = blake2b(repr(key).encode(), digest_size=8).digest()
    return struct.unpack(">Q", digest)[0]


def query_shard_key(table: str, p_tau: float) -> tuple:
    """The routing key of a query-shaped request.

    Matches the leading components of the executor's batch key, so
    requests that would micro-batch together always share a worker.
    """
    return ("q", table, repr(float(p_tau)))


def table_shard_key(table: str) -> tuple:
    """The table-ownership key (WAL writes, mutate/reload authority)."""
    return ("t", table)


def payload_query_key(payload: object) -> tuple:
    """Best-effort query routing key from a raw request body.

    Routing happens *before* validation (the owning worker produces
    the authoritative 400/404), so malformed fields fall back to
    defaults instead of failing here; the only requirement is that the
    front and every retry of the same body route identically.
    """
    table = ""
    p_tau = DEFAULT_P_TAU
    if isinstance(payload, dict):
        raw_table = payload.get("table")
        if isinstance(raw_table, str):
            table = raw_table
        raw_p_tau = payload.get("p_tau", DEFAULT_P_TAU)
        if isinstance(raw_p_tau, (int, float)) and not isinstance(
            raw_p_tau, bool
        ):
            p_tau = float(raw_p_tau)
    return query_shard_key(table, p_tau)


class ShardRing:
    """A consistent-hash ring over ``workers`` worker indices.

    :param workers: worker count (>= 1).
    :param vnodes: virtual nodes per worker; more vnodes smooth the
        key distribution at a small lookup-table cost.
    """

    def __init__(
        self, workers: int, *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.workers = workers
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for worker in range(workers):
            for vnode in range(vnodes):
                points.append(
                    (stable_hash(("vnode", worker, vnode)), worker)
                )
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def owner(self, key: Hashable) -> int:
        """The worker index owning ``key`` (stable across processes)."""
        if self.workers == 1:
            return 0
        index = bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def table_owner(self, table: str) -> int:
        return self.owner(table_shard_key(table))

    def query_owner(self, table: str, p_tau: float) -> int:
        return self.owner(query_shard_key(table, p_tau))

    def describe(self) -> dict:
        """JSON-ready summary (surfaced by the sharded /healthz)."""
        return {"workers": self.workers, "vnodes": self.vnodes}
