"""The micro-batching executor: group in-flight requests, run fused.

Requests entering the service queue are grouped by their **batch
key** — :meth:`~repro.api.logical.LogicalPlan.batch_key`, i.e.
``(table, p_tau, algorithm)`` plus the canonical Monte-Carlo knobs
under ``"mc"``; the key derives from the same normalized
:class:`~repro.api.logical.LogicalPlan` the Session's cache keys
derive from, so grouping and caching can never drift.  Requests
sharing a key share the expensive pipeline stages, and a worker hands
the whole group to :meth:`~repro.api.session.Session.execute_many`,
whose planner **fuses** the group's exact dynamic programs: a mixed-k
group over one table runs a single shared-prefix sweep at the largest
``k``, sliced per request (byte-identical to per-request execution) —
instead of one DP per distinct ``(k, algorithm)``.  Keys are
additionally *single-flight*: while one worker is executing a group,
other workers skip that key, so concurrent cold requests for one
distribution never duplicate the DP — they accumulate in the queue
and are served as one warm batch when the key frees up.

Admission control is explicit: the queue is bounded, and a submit
beyond the bound raises :class:`~repro.exceptions.BackpressureError`
(surfaced by the HTTP layer as ``429 Retry-After``), so overload
degrades into fast rejections instead of unbounded memory growth.

Between acceptance and rejection sits **graceful degradation**
(:mod:`repro.service.degrade`): when a policy is installed, exact
``execute`` work whose deadline budget is too small (at submit or
after queueing ate it), or that arrives into a deep queue, or whose
``(table, semantics)`` circuit breaker (:mod:`repro.service.breaker`)
is open, is re-planned through the Monte-Carlo operator with an
epsilon chosen from the remaining budget and answered as a
:class:`~repro.service.degrade.DegradedAnswer` — approximate, but
carrying an explicit confidence interval.  Requests submitted with
``allow_degraded=False`` keep the strict reject/timeout behavior.

Fault points (:mod:`repro.service.faults`): ``exec_delay`` sleeps
every batch before execution, ``exec_error`` fails a batch with
:class:`~repro.exceptions.FaultInjectedError`.

``batched=False`` gives the naive baseline the service benchmark
compares against: every request executes alone, through a fresh
session with cold caches — exactly what each pre-service entry point
(CLI, one-shot ``Session``) did per invocation.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Hashable, Literal

from repro.api.logical import LogicalPlan
from repro.api.session import Session
from repro.api.spec import QuerySpec
from repro.exceptions import (
    BackpressureError,
    FaultInjectedError,
    RequestTimeoutError,
    ServiceError,
)
from repro.service.breaker import CircuitBreaker
from repro.service.degrade import (
    DegradationPolicy,
    DegradedAnswer,
    confidence_interval,
)
from repro.service.faults import FaultInjector
from repro.service.metrics import ServiceMetrics

#: The pipeline operation a request runs.
Op = Literal["execute", "distribution"]

#: Default worker-pool size.
DEFAULT_WORKERS = 2

#: Default queue bound (pending requests beyond it are rejected).
DEFAULT_MAX_QUEUE = 128

#: Default cap on how many grouped requests one batch may hold.
DEFAULT_MAX_BATCH = 32

#: Retry-After hint bounds (seconds).  The hint is derived from the
#: live queue depth and the pool's recent drain rate; the bounds keep
#: a cold or pathological estimate from telling clients to hammer the
#: server (or to go away for minutes).
MIN_RETRY_AFTER_S = 0.05
MAX_RETRY_AFTER_S = 10.0

#: The hint before any batch has executed (no drain-rate estimate yet).
DEFAULT_RETRY_AFTER_S = 1.0

#: EWMA smoothing factor for the per-batch latency/size estimates.
_EWMA_ALPHA = 0.3


@dataclass
class _Pending:
    """One queued request.

    :ivar deadline: ``time.monotonic()`` moment after which nobody is
        waiting for the answer anymore (``None`` = wait forever).
        Expired entries are purged from the queue instead of executed,
        so abandoned (504'd) requests neither occupy queue slots nor
        burn worker time.
    :ivar allow_degraded: ``False`` pins the request to the exact
        path (the client opted out of approximate answers).
    :ivar degrade_reason: set (``deadline``/``queue``/``breaker``)
        once the request was re-planned onto the degraded MC tier;
        ``spec`` then already carries the replanned MC shape.
    """

    op: Op
    spec: QuerySpec
    deadline: float | None = None
    allow_degraded: bool = True
    degrade_reason: str | None = None
    future: "Future[Any]" = field(default_factory=Future)

    @property
    def key(self) -> Hashable:
        return batch_key(self.spec)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


def batch_key(spec: QuerySpec) -> Hashable:
    """The grouping key: requests sharing it share pipeline stages.

    Derived from the normalized logical plan — the single source the
    Session's LRU keys also derive from — so service grouping and
    session caching can never drift.  Under ``algorithm="mc"`` the
    sampling knobs participate (in canonical order): MC requests with
    different knobs share neither estimates nor cache entries, so
    grouping them would be a false economy.
    """
    return LogicalPlan.from_spec(spec).batch_key()


class BatchingExecutor:
    """A bounded worker pool executing grouped requests on one Session.

    :param session: the shared session (tables already registered).
    :param workers: worker-thread count.
    :param max_queue: pending-request bound (overflow raises
        :class:`BackpressureError`).
    :param max_batch: largest group one worker executes at once.
    :param batched: ``False`` runs the naive per-request baseline
        (fresh cold session per request, no grouping).
    :param metrics: optional :class:`ServiceMetrics` sink.
    :param degradation: optional :class:`DegradationPolicy`; when set,
        overloaded exact ``execute`` work degrades to bounded MC
        instead of timing out (see the module docstring).
    :param breaker: optional :class:`CircuitBreaker` keyed by
        ``(table, semantics)``; requires ``degradation``.
    :param faults: optional :class:`FaultInjector` for the
        ``exec_delay`` / ``exec_error`` fault points.
    """

    def __init__(
        self,
        session: Session,
        *,
        workers: int = DEFAULT_WORKERS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        batched: bool = True,
        metrics: ServiceMetrics | None = None,
        degradation: DegradationPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if breaker is not None and degradation is None:
            raise ServiceError(
                "a circuit breaker requires a degradation policy "
                "(it sheds to the degraded tier)"
            )
        self._session = session
        self._max_queue = max_queue
        self._max_batch = max_batch
        self.batched = batched
        self._metrics = metrics
        self.degradation = degradation
        self.breaker = breaker
        self._faults = faults
        self._pending: list[_Pending] = []
        self._inflight: set[Hashable] = set()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._stopping = False
        self._draining = False
        #: Batches currently executing (drain waits for zero).
        self._active = 0
        #: EWMA of per-batch execution seconds / batch size, feeding
        #: the derived Retry-After hint.
        self._batch_seconds_ewma: float | None = None
        self._batch_size_ewma: float | None = None
        self._worker_count = workers
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        op: Op,
        spec: QuerySpec,
        *,
        timeout_s: float | None = None,
        allow_degraded: bool = True,
    ) -> "Future[Any]":
        """Queue one request; returns its :class:`Future`.

        :param timeout_s: how long the caller will wait for the
            answer; once elapsed, the entry no longer holds a queue
            slot and is failed with :class:`RequestTimeoutError`
            instead of executed.
        :param allow_degraded: ``False`` pins the request to the
            exact path regardless of load (strict clients).
        :raises BackpressureError: when the queue bound is reached
            (after purging expired entries).
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        request = _Pending(
            op=op,
            spec=spec,
            deadline=deadline,
            allow_degraded=allow_degraded,
        )
        with self._wakeup:
            if self._stopping or self._draining:
                raise ServiceError("executor is shut down")
            self._purge_expired()
            if len(self._pending) >= self._max_queue:
                if self._metrics is not None:
                    self._metrics.record_rejection()
                error = BackpressureError(
                    f"queue full ({self._max_queue} pending); retry later"
                )
                error.retry_after_s = self._retry_after_locked()
                raise error
            self._maybe_degrade_at_submit(request, timeout_s)
            self._pending.append(request)
            if self._metrics is not None:
                self._metrics.record_queue_depth(len(self._pending))
            self._wakeup.notify()
        return request.future

    def _maybe_degrade_at_submit(
        self, request: _Pending, timeout_s: float | None
    ) -> None:
        """Under the lock: re-plan the request onto the MC tier when an
        admission-time trigger (breaker, deadline, queue depth) fires."""
        policy = self.degradation
        if (
            policy is None
            or request.op != "execute"
            or not request.allow_degraded
            or request.spec.algorithm == "mc"
        ):
            return
        reason = None
        if self.breaker is not None:
            key = (request.spec.table, request.spec.semantics)
            decision = self.breaker.decide(key)
            if decision == "degrade":
                reason = "breaker"
            # "probe" (and "exact") runs the exact plan; its recorded
            # outcome below closes or re-opens the breaker.
        if reason is None and (
            timeout_s is not None and timeout_s <= policy.deadline_s
        ):
            reason = "deadline"
        if reason is None and len(self._pending) >= policy.queue_depth:
            reason = "queue"
        if reason is None:
            return
        budget = timeout_s if timeout_s is not None else policy.deadline_s
        request.spec = policy.degraded_spec(request.spec, budget)
        request.degrade_reason = reason
        if self._metrics is not None:
            self._metrics.record_degraded(reason)

    def _purge_expired(self) -> None:
        """Under the lock: fail and drop deadline-expired entries."""
        now = time.monotonic()
        if not any(request.expired(now) for request in self._pending):
            return
        live: list[_Pending] = []
        for request in self._pending:
            if request.expired(now):
                self._record_timeout(request)
                request.future.set_exception(
                    RequestTimeoutError(
                        "request expired in the queue before execution"
                    )
                )
            else:
                live.append(request)
        self._pending = live

    def _record_timeout(self, request: _Pending) -> None:
        """Feed an exact-path timeout to the circuit breaker."""
        if (
            self.breaker is not None
            and request.op == "execute"
            and request.degrade_reason is None
        ):
            self.breaker.record_failure(
                (request.spec.table, request.spec.semantics)
            )

    def queue_depth(self) -> int:
        """Currently pending (not yet executing) requests."""
        with self._lock:
            return len(self._pending)

    def _retry_after_locked(self) -> float:
        """Under the lock: seconds until the current queue should have
        drained, from the pool's recent per-batch latency and size.

        ``depth / (workers * batch_size / batch_seconds)`` — i.e. the
        queue depth divided by the measured drain rate in requests per
        second — clamped to sane bounds.  Before the first batch
        completes there is no rate estimate and the old fixed hint is
        returned.
        """
        seconds = self._batch_seconds_ewma
        size = self._batch_size_ewma
        if seconds is None or size is None or seconds <= 0.0:
            return DEFAULT_RETRY_AFTER_S
        rate = self._worker_count * max(size, 1.0) / seconds
        hint = (len(self._pending) + 1) / max(rate, 1e-9)
        return round(
            min(max(hint, MIN_RETRY_AFTER_S), MAX_RETRY_AFTER_S), 3
        )

    def retry_after_hint(self) -> float:
        """The current Retry-After hint in (possibly fractional)
        seconds; the HTTP layer sends it on every 429."""
        with self._lock:
            return self._retry_after_locked()

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Pending] | None:
        """Under the lock: claim the next executable group (or None)."""
        self._purge_expired()
        if not self._pending:
            return None
        if not self.batched:
            batch = [self._pending.pop(0)]
        else:
            head_key = None
            for request in self._pending:
                if request.key not in self._inflight:
                    head_key = request.key
                    break
            if head_key is None:
                # Every pending key is being executed by another
                # worker; wait for a completion notification.
                return None
            batch = []
            rest: list[_Pending] = []
            for request in self._pending:
                if request.key == head_key and len(batch) < self._max_batch:
                    batch.append(request)
                else:
                    rest.append(request)
            self._pending = rest
            self._inflight.add(head_key)
        if self._metrics is not None:
            self._metrics.record_queue_depth(len(self._pending))
        return batch

    def _worker_loop(self) -> None:
        while True:
            with self._wakeup:
                batch = self._take_batch()
                while batch is None:
                    if self._stopping:
                        return
                    self._wakeup.wait()
                    batch = self._take_batch()
                self._active += 1
            try:
                self._execute(batch)
            finally:
                with self._wakeup:
                    self._active -= 1
                    if self.batched:
                        self._inflight.discard(batch[0].key)
                    # Wakes idle workers *and* a drain waiting for the
                    # pool to go quiet.
                    self._wakeup.notify_all()

    def _observe_batch(self, size: int, seconds: float) -> None:
        """Fold one executed batch into the drain-rate EWMAs."""
        with self._lock:
            if self._batch_seconds_ewma is None:
                self._batch_seconds_ewma = seconds
                self._batch_size_ewma = float(size)
            else:
                assert self._batch_size_ewma is not None
                self._batch_seconds_ewma += _EWMA_ALPHA * (
                    seconds - self._batch_seconds_ewma
                )
                self._batch_size_ewma += _EWMA_ALPHA * (
                    size - self._batch_size_ewma
                )

    def _execute(self, batch: list[_Pending]) -> None:
        if self._metrics is not None:
            self._metrics.record_batch(len(batch))
        started = time.perf_counter()
        try:
            self._execute_inner(batch)
        finally:
            self._observe_batch(
                len(batch), time.perf_counter() - started
            )

    def _execute_inner(self, batch: list[_Pending]) -> None:
        session = (
            self._session
            if self.batched
            # Naive baseline: a cold session over the same catalog.
            else Session(self._session.catalog)
        )
        now = time.monotonic()
        live: list[_Pending] = []
        for request in batch:
            if request.expired(now):
                self._record_timeout(request)
                request.future.set_exception(
                    RequestTimeoutError(
                        "request expired in the queue before execution"
                    )
                )
            else:
                self._maybe_degrade_at_execute(request, now)
                live.append(request)
        if not live:
            return
        if self._faults is not None:
            self._faults.delay("exec_delay")
            try:
                self._faults.raise_if("exec_error")
            except FaultInjectedError as exc:
                for request in live:
                    request.future.set_exception(exc)
                return
        if self.batched:
            # One planner pass for the whole group: fusable exact DPs
            # merge into a single shared sweep, everything else runs
            # per spec; per-request errors come back as values.
            results = session.execute_many(
                [request.spec for request in live],
                ops=[request.op for request in live],
                return_exceptions=True,
            )
            for request, result in zip(live, results):
                self._finish(session, request, result)
            return
        for request in live:
            try:
                if request.op == "distribution":
                    result: Any = session.distribution(request.spec)
                else:
                    result = session.execute(request.spec)
            except BaseException as exc:  # propagate to the waiter
                self._finish(session, request, exc)
            else:
                self._finish(session, request, result)

    def _maybe_degrade_at_execute(
        self, request: _Pending, now: float
    ) -> None:
        """Degrade a still-exact request whose budget the queue ate."""
        policy = self.degradation
        if (
            policy is None
            or request.degrade_reason is not None
            or request.op != "execute"
            or not request.allow_degraded
            or request.spec.algorithm == "mc"
            or request.deadline is None
        ):
            return
        remaining = request.deadline - now
        if remaining > policy.deadline_s:
            return
        request.spec = policy.degraded_spec(
            request.spec, max(remaining, 0.0)
        )
        request.degrade_reason = "deadline"
        if self._metrics is not None:
            self._metrics.record_degraded("deadline")

    def _finish(
        self, session: Session, request: _Pending, result: Any
    ) -> None:
        """Resolve one future: record the breaker outcome, wrap
        degraded answers with their confidence interval."""
        if isinstance(result, BaseException):
            if isinstance(result, RequestTimeoutError):
                self._record_timeout(request)
            request.future.set_exception(result)
            return
        if (
            self.breaker is not None
            and request.op == "execute"
            and request.degrade_reason is None
        ):
            self.breaker.record_success(
                (request.spec.table, request.spec.semantics)
            )
        if request.degrade_reason is not None:
            spec = request.spec
            try:
                interval = confidence_interval(session, spec)
            except Exception:  # the answer stands even bound-less
                interval = None
            result = DegradedAnswer(
                answer=result,
                reason=request.degrade_reason,
                epsilon=spec.epsilon or 0.0,
                confidence=spec.confidence,
                interval=interval,
            )
        request.future.set_result(result)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(
        self, *, timeout: float = 5.0, drain: bool = False
    ) -> None:
        """Stop the workers.

        ``drain=False`` (the hard path): pending requests fail with
        :class:`ServiceError` immediately.  ``drain=True`` (graceful
        shutdown): new submissions are refused, but everything already
        admitted executes to completion — the pool stops only once the
        queue is empty and no batch is in flight (bounded by
        ``timeout``; whatever is still pending after it fails as in
        the hard path).
        """
        with self._wakeup:
            if drain:
                self._draining = True
                self._wakeup.notify_all()
                self._wakeup.wait_for(
                    lambda: not self._pending and self._active == 0,
                    timeout=timeout,
                )
            self._stopping = True
            drained = self._pending
            self._pending = []
            self._wakeup.notify_all()
        for request in drained:
            request.future.set_exception(
                ServiceError("executor shut down before execution")
            )
        for thread in self._workers:
            thread.join(timeout)

    def __enter__(self) -> "BatchingExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
