"""Graceful degradation: exact work re-planned as bounded Monte-Carlo.

Under overload the pre-fault-tolerance service had exactly two
behaviors: reject (429) or time out (504).  The paper's own
Monte-Carlo machinery (:mod:`repro.mc`) offers a third that is almost
always preferable: a fast approximate answer with an *explicit* error
bound.  This module holds the policy that decides when to take it and
the wrapper that carries the bound back to the client.

A request degrades when any of three triggers fires (see
:class:`~repro.service.batching.BatchingExecutor`):

* **deadline** — the request's remaining time budget is below
  ``deadline_s`` (at submit, or later at execution after queueing ate
  the budget);
* **queue** — the pending queue is at least ``queue_depth`` deep at
  submit, so exact work would likely expire anyway;
* **breaker** — the :class:`~repro.service.breaker.CircuitBreaker`
  for the request's ``(table, semantics)`` is open after repeated
  exact-path timeouts.

Degradation replans the spec through the existing MC operator —
``spec.with_(algorithm="mc", epsilon=ε)`` with ε chosen from the
remaining budget by inverting the Hoeffding sample bound
``n(ε) = ln(2/(1-conf)) / (2ε²)`` against an assumed sampling
throughput — so a smaller remaining budget buys a wider (but honest)
interval.  The response contract:

* ``degraded: true`` plus the trigger under ``degrade_reason``;
* a ``confidence_interval`` document for the answer's head — the
  estimated top-k hit probability of the rank-1 prefix tuple with its
  ``[low, high]`` bound at the configured confidence (the MC engine's
  estimates all carry the same half-width, so this one interval is
  representative of the whole answer's error);
* clients that must never receive an approximation opt out per
  request with ``allow_degraded: false`` and get the old 504/429
  behavior instead.

Specs that already request ``algorithm="mc"`` are never rewritten or
marked degraded — an approximation the client asked for is not a
degradation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.api.session import Session
from repro.api.spec import QuerySpec
from repro.exceptions import ServiceError

#: Remaining-budget threshold (seconds) below which exact work degrades.
DEFAULT_DEADLINE_S = 0.5

#: Queue depth at submit beyond which new exact work degrades.
DEFAULT_QUEUE_DEPTH = 64

#: Epsilon clamp: never promise tighter (slower) than MIN or looser
#: (useless) than MAX.
MIN_EPSILON = 0.01
MAX_EPSILON = 0.2

#: Assumed MC sampling throughput (worlds/second) used to convert a
#: time budget into a sample budget.  Deliberately conservative; the
#: clamp above bounds the damage of a bad guess in either direction.
SAMPLES_PER_SECOND = 50_000.0


@dataclass(frozen=True)
class DegradedAnswer:
    """An approximate answer plus the bound that makes it honest.

    The executor returns this wrapper instead of the bare answer for
    degraded requests; the HTTP layer unwraps it into the response
    fields described in the module docstring.

    :ivar answer: the MC-evaluated answer, in the same shape the exact
        path would have produced for the same semantics.
    :ivar reason: which trigger degraded the request
        (``deadline`` / ``queue`` / ``breaker``).
    :ivar epsilon: the CI half-width the replanned spec targeted.
    :ivar confidence: the CI confidence level.
    :ivar interval: the representative confidence-interval document
        (None only when the table's prefix is empty).
    """

    answer: Any
    reason: str
    epsilon: float
    confidence: float
    interval: dict[str, Any] | None


class DegradationPolicy:
    """When to degrade, and what epsilon the remaining budget buys."""

    def __init__(
        self,
        *,
        deadline_s: float = DEFAULT_DEADLINE_S,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        samples_per_second: float = SAMPLES_PER_SECOND,
    ) -> None:
        if deadline_s <= 0:
            raise ServiceError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        if queue_depth < 1:
            raise ServiceError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if samples_per_second <= 0:
            raise ServiceError(
                "samples_per_second must be > 0, got "
                f"{samples_per_second}"
            )
        self.deadline_s = deadline_s
        self.queue_depth = queue_depth
        self.samples_per_second = samples_per_second

    def epsilon_for(
        self, remaining_s: float, confidence: float
    ) -> float:
        """The tightest half-width the remaining budget affords.

        Inverts Hoeffding — ``n(ε) = ln(2/(1-conf)) / (2ε²)`` — at the
        assumed throughput, clamped to ``[MIN_EPSILON, MAX_EPSILON]``.
        """
        budget = max(1.0, remaining_s * self.samples_per_second)
        epsilon = math.sqrt(
            math.log(2.0 / (1.0 - confidence)) / (2.0 * budget)
        )
        return min(MAX_EPSILON, max(MIN_EPSILON, epsilon))

    def degraded_spec(
        self, spec: QuerySpec, remaining_s: float
    ) -> QuerySpec:
        """The spec, replanned through the MC operator for the budget."""
        return spec.with_(
            algorithm="mc",
            epsilon=self.epsilon_for(remaining_s, spec.confidence),
            samples=None,
        )


def confidence_interval(
    session: Session, spec: QuerySpec
) -> dict[str, Any] | None:
    """The representative CI document for an executed MC spec.

    Pulls the ran engine back out of the MC engine cache (keyed by the
    session's scored prefix and the spec's MC knobs — both stages just
    ran, so this costs two cache lookups, no recomputation) and
    reports the rank-1 prefix tuple's estimated top-k hit probability
    with its bound.  Returns None for an empty prefix.
    """
    from repro.mc.engine import engine_from_spec

    prefix = session.scored_prefix(spec)
    if len(prefix) == 0:
        return None
    engine = engine_from_spec(prefix, spec)
    tid, estimate = engine.topk_probability_estimates()[0]
    return {
        "metric": "topk_hit_probability",
        "tid": tid,
        "estimate": estimate.value,
        "low": estimate.low,
        "high": estimate.high,
        "half_width": estimate.half_width,
        "confidence": estimate.confidence,
        "samples": estimate.samples,
    }
