"""The logical plan: one :class:`~repro.api.spec.QuerySpec`, normalized.

A :class:`LogicalPlan` is the planner's view of a request — the spec's
knobs reduced to hashable, canonical form, plus the stage DAG the
request flows through:

    resolve table ── score/rank/truncate ──┬── pmf ── semantics
                                           └────────  semantics
                                         (prefix-consuming semantics)

Every cache and grouping key in the system derives from this one
normalization, so the service's batch grouping and the Session's LRU
keys can never drift apart:

* :meth:`LogicalPlan.prefix_params` — the stage-1 key tail;
* :meth:`LogicalPlan.pmf_params` — the stage-2 key tail (the
  Monte-Carlo knobs participate exactly when the resolved algorithm
  is ``"mc"``, in one canonical order);
* :meth:`LogicalPlan.answer_params` — the stage-3 key tail;
* :meth:`LogicalPlan.batch_key` — the service's micro-batch grouping
  key (requests sharing it share pipeline stages);
* :meth:`LogicalPlan.fusion_key` — the multi-query fusion group: all
  requests over one ``(table, scorer, max_lines)`` whose exact DP can
  be served by a single shared-prefix sweep.

The Session composes these parameter tails with the resolved *objects*
(table, prefix, PMF — hashed by identity), which is what keeps cache
entries from leaking across re-registered tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.api.spec import QuerySpec
from repro.uncertain.table import UncertainTable


class ByIdentity:
    """Hashable identity wrapper for unhashable key components.

    Holds a strong reference, so the wrapped object cannot be
    collected and its ``id`` recycled while the key is alive.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: Any) -> None:
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ByIdentity) and other.obj is self.obj

    def __repr__(self) -> str:
        return f"ByIdentity({type(self.obj).__name__}@{id(self.obj):#x})"


def hashable(value: Any) -> Hashable:
    """``value`` if hashable, else an identity wrapper."""
    try:
        hash(value)
    except TypeError:
        return ByIdentity(value)
    return value


@dataclass(frozen=True)
class LogicalPlan:
    """A spec normalized into the planner's canonical form.

    :ivar spec: the originating (already validated) spec.
    :ivar table_key: hashable table reference — the catalog name, or
        an identity wrapper around an in-memory table.
    :ivar scorer_key: hashable scorer reference — the attribute name,
        or an identity wrapper around the callable.
    :ivar mc: the Monte-Carlo knobs in canonical order
        ``(epsilon, confidence, samples, seed)``.
    :ivar requires: the stage the semantics consumes (``"prefix"`` or
        ``"pmf"``), or ``None`` when the semantics is not registered
        (execution will raise; planning still describes the request).
    """

    spec: QuerySpec
    table_key: Hashable
    scorer_key: Hashable
    mc: tuple
    requires: str | None

    @classmethod
    def from_spec(cls, spec: QuerySpec) -> "LogicalPlan":
        """Normalize a spec (pure; no catalog access)."""
        table_key = (
            ByIdentity(spec.table)
            if isinstance(spec.table, UncertainTable)
            else spec.table
        )
        requires: str | None
        try:
            from repro.api.registry import get_semantics

            requires = get_semantics(spec.semantics).requires
        except Exception:
            requires = None
        return cls(
            spec=spec,
            table_key=table_key,
            scorer_key=hashable(spec.scorer),
            mc=(spec.epsilon, spec.confidence, spec.samples, spec.seed),
            requires=requires,
        )

    # ------------------------------------------------------------------
    # Stage DAG
    # ------------------------------------------------------------------
    def stages(self) -> tuple[str, ...]:
        """The pipeline stages this request flows through, in order."""
        if self.requires == "prefix":
            return ("resolve", "prefix", "semantics")
        return ("resolve", "prefix", "pmf", "semantics")

    def truncates(self, table_rows: int) -> bool:
        """Whether stage 1 can bound the scan below ``table_rows``.

        True when an explicit depth override cuts the table, or when
        ``p_tau > 0`` arms the Theorem-2 stopping condition.  This is
        the standing-query maintainer's first gate: a request that
        never truncates is touched by *every* mutation of its table,
        while a truncating request is only touched by mutations that
        reach into its depth prefix (see
        :func:`repro.standing.registry.classify_delta`).
        """
        spec = self.spec
        if spec.depth is not None:
            return spec.depth < table_rows
        return spec.p_tau > 0.0

    # ------------------------------------------------------------------
    # Key derivation (the single source shared by Session and service)
    # ------------------------------------------------------------------
    def mc_params(self, algorithm: str) -> tuple:
        """The MC knob tail: non-empty exactly under ``"mc"``.

        Exact-algorithm entries deliberately exclude the sampling
        knobs, so they are shared across specs differing only in a
        knob.
        """
        return self.mc if algorithm == "mc" else ()

    def prefix_params(self) -> tuple:
        """Stage-1 key tail (composed with the resolved table)."""
        spec = self.spec
        return (self.scorer_key, spec.k, spec.p_tau, spec.depth)

    def pmf_params(self, algorithm: str) -> tuple:
        """Stage-2 key tail (composed with the prefix object).

        :param algorithm: the *resolved* concrete algorithm.
        """
        spec = self.spec
        return (
            spec.k,
            algorithm,
            spec.max_lines,
            spec.p_tau,
        ) + self.mc_params(algorithm)

    def answer_params(self, algorithm: str) -> tuple:
        """Stage-3 key tail (composed with the consumed stage object)."""
        spec = self.spec
        return (
            algorithm,
            spec.semantics,
            spec.k,
            spec.c,
            spec.threshold,
        ) + self.mc_params(algorithm)

    def batch_key(self) -> Hashable:
        """The service grouping key: requests sharing it share stages.

        ``(table, p_tau, algorithm)`` plus — under ``"mc"`` — the
        sampling knobs in canonical order, since MC requests with
        different knobs share neither estimates nor cache entries.
        """
        spec = self.spec
        return (
            self.table_key,
            spec.p_tau,
            spec.algorithm,
        ) + self.mc_params(spec.algorithm)

    def fusion_key(self) -> Hashable:
        """The multi-query fusion group: requests over one table and
        scorer whose exact dynamic programs may merge into a single
        shared-prefix sweep (any mix of ``k``; the planner further
        splits by prefix shape and slice safety)."""
        spec = self.spec
        return (self.table_key, self.scorer_key, spec.max_lines)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """JSON-ready summary (the ``logical`` section of EXPLAIN)."""
        spec = self.spec
        document: dict[str, Any] = {
            "table": (
                spec.table
                if isinstance(spec.table, str)
                else (
                    f"<{getattr(spec.table, 'storage_kind', 'in-memory')}"
                    f" table {getattr(spec.table, 'name', '')!r}>"
                )
            ),
            "scorer": (
                spec.scorer
                if isinstance(spec.scorer, str)
                else f"<callable {getattr(spec.scorer, '__name__', '?')}>"
            ),
            "k": spec.k,
            "semantics": spec.semantics,
            "requires": self.requires,
            "stages": list(self.stages()),
            "p_tau": spec.p_tau,
            "max_lines": spec.max_lines,
            "algorithm": spec.algorithm,
        }
        if spec.depth is not None:
            document["depth"] = spec.depth
        if spec.semantics == "typical":
            document["c"] = spec.c
        if spec.semantics == "pt_k":
            document["threshold"] = spec.threshold
        if spec.algorithm == "mc":
            document["mc"] = {
                "epsilon": spec.epsilon,
                "confidence": spec.confidence,
                "samples": spec.samples,
                "seed": spec.seed,
            }
        return document
