"""The pluggable answer-semantics registry.

The paper's central observation is that one computed score
distribution (or one scored prefix) serves many *answer semantics*:
the paper's own c-Typical-Topk, and the rival semantics it compares
against (U-Topk, U-kRanks, PT-k, Global-Topk, expected ranks).  This
module gives them all one uniform shape so sessions, the CLI and the
query layer can dispatch by name:

    run(prefix: ScoredTable, spec: QuerySpec) -> Answer

Handlers declare which pipeline stage they consume:

* ``requires="prefix"`` — the handler works directly on the scored,
  truncated prefix (the marginal semantics and U-Topk);
* ``requires="pmf"`` — the handler consumes the top-k score
  distribution (typical answers, the distribution itself); a
  :class:`~repro.api.session.Session` hands such handlers its cached
  :class:`~repro.core.pmf.ScorePMF` so that e.g. changing only ``c``
  never re-runs the dynamic program.

Register your own semantics with the decorator::

    from repro.api import register_semantics

    @register_semantics("expected_score")
    def _expected_score(prefix, spec):
        ...

and any session (and the ``repro answer`` CLI command) can run it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable

#: The two pipeline stages a handler may consume.
_STAGES = ("prefix", "pmf")


@dataclass(frozen=True)
class SemanticsHandler:
    """One registered answer semantics.

    :ivar name: registry name (e.g. ``"typical"``).
    :ivar fn: the implementation; receives ``(prefix, spec)`` when
        ``requires == "prefix"`` and ``(pmf, spec)`` when
        ``requires == "pmf"``.
    :ivar requires: the pipeline stage consumed.
    :ivar description: one-line human description (CLI help).
    """

    name: str
    fn: Callable[..., Any]
    requires: str = "prefix"
    description: str = ""

    def run(
        self,
        prefix: ScoredTable,
        spec,
        *,
        pmf=None,
    ) -> Any:
        """Execute the semantics over a scored prefix.

        ``pmf`` lets a caller that already holds the prefix's score
        distribution (a session cache) pass it in; when the handler
        requires the PMF and none is given, it is computed on the fly.
        """
        if self.requires == "pmf":
            if pmf is None:
                from repro.api.plan import distribution_from_prefix

                pmf = distribution_from_prefix(prefix, spec)
            return self.fn(pmf, spec)
        return self.fn(prefix, spec)


_REGISTRY: dict[str, SemanticsHandler] = {}


def register_semantics(
    name: str,
    *,
    requires: str = "prefix",
    description: str = "",
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class-decorator factory registering an answer semantics.

    :param name: registry name; lookups are exact.
    :param requires: ``"prefix"`` or ``"pmf"`` (the stage consumed).
    :param description: one-line description shown by the CLI.
    :param replace: allow overwriting an existing registration.
    """
    if requires not in _STAGES:
        raise AlgorithmError(
            f"requires must be one of {_STAGES}, got {requires!r}"
        )
    if not isinstance(name, str) or not name:
        raise AlgorithmError(f"semantics name must be non-empty, got {name!r}")

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY and not replace:
            raise AlgorithmError(
                f"semantics {name!r} is already registered; pass "
                "replace=True to overwrite"
            )
        doc_line = description
        if not doc_line and fn.__doc__:
            doc_line = fn.__doc__.strip().splitlines()[0]
        _REGISTRY[name] = SemanticsHandler(
            name=name, fn=fn, requires=requires, description=doc_line
        )
        return fn

    return decorate


def get_semantics(name: str) -> SemanticsHandler:
    """Look up a handler; raises :class:`AlgorithmError` if missing."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise AlgorithmError(
            f"unknown semantics {name!r}; registered: {known}"
        ) from None


def available_semantics() -> tuple[str, ...]:
    """Registered semantics names, sorted."""
    return tuple(sorted(_REGISTRY))


def unregister_semantics(name: str) -> None:
    """Remove a registration (primarily for tests and plugins)."""
    _REGISTRY.pop(name, None)
