"""The pluggable answer-semantics registry.

The paper's central observation is that one computed score
distribution (or one scored prefix) serves many *answer semantics*:
the paper's own c-Typical-Topk, and the rival semantics it compares
against (U-Topk, U-kRanks, PT-k, Global-Topk, expected ranks).  This
module gives them all one uniform shape so sessions, the CLI and the
query layer can dispatch by name:

    run(prefix: ScoredTable, spec: QuerySpec) -> Answer

Handlers declare which pipeline stage they consume:

* ``requires="prefix"`` — the handler works directly on the scored,
  truncated prefix (the marginal semantics and U-Topk);
* ``requires="pmf"`` — the handler consumes the top-k score
  distribution (typical answers, the distribution itself); a
  :class:`~repro.api.session.Session` hands such handlers its cached
  :class:`~repro.core.pmf.ScorePMF` so that e.g. changing only ``c``
  never re-runs the dynamic program.

Register your own semantics with the decorator::

    from repro.api import register_semantics

    @register_semantics("expected_score")
    def _expected_score(prefix, spec):
        ...

and any session (and the ``repro answer`` CLI command) can run it.

A semantics may additionally register *algorithm variants*: an
implementation dispatched only when the session's planner resolves a
specific concrete algorithm.  The Monte-Carlo engine registers one for
every built-in prefix semantics under ``algorithm="mc"``
(:mod:`repro.mc.semantics`), so ``spec.with_(algorithm="mc")`` — or
the planner's own exact-cost escape hatch — transparently swaps the
exact implementations for sampled estimates::

    @register_semantics("u_topk", algorithm="mc")
    def _u_topk_mc(prefix, spec):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable

#: The two pipeline stages a handler may consume.
_STAGES = ("prefix", "pmf")


@dataclass(frozen=True)
class SemanticsHandler:
    """One registered answer semantics.

    :ivar name: registry name (e.g. ``"typical"``).
    :ivar fn: the implementation; receives ``(prefix, spec)`` when
        ``requires == "prefix"`` and ``(pmf, spec)`` when
        ``requires == "pmf"``.
    :ivar requires: the pipeline stage consumed.
    :ivar description: one-line human description (CLI help).
    :ivar algorithm: ``None`` for the default implementation, or the
        concrete algorithm name this variant is dispatched under.
    """

    name: str
    fn: Callable[..., Any]
    requires: str = "prefix"
    description: str = ""
    algorithm: str | None = None

    def run(
        self,
        prefix: ScoredTable,
        spec,
        *,
        pmf=None,
    ) -> Any:
        """Execute the semantics over a scored prefix.

        ``pmf`` lets a caller that already holds the prefix's score
        distribution (a session cache) pass it in; when the handler
        requires the PMF and none is given, it is computed on the fly.
        """
        if self.requires == "pmf":
            if pmf is None:
                from repro.api.plan import distribution_from_prefix

                pmf = distribution_from_prefix(prefix, spec)
            return self.fn(pmf, spec)
        return self.fn(prefix, spec)


_REGISTRY: dict[str, SemanticsHandler] = {}

#: Algorithm-specific variants, keyed by ``(name, algorithm)``.
_VARIANTS: dict[tuple[str, str], SemanticsHandler] = {}


def register_semantics(
    name: str,
    *,
    requires: str = "prefix",
    description: str = "",
    replace: bool = False,
    algorithm: str | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class-decorator factory registering an answer semantics.

    :param name: registry name; lookups are exact.
    :param requires: ``"prefix"`` or ``"pmf"`` (the stage consumed).
    :param description: one-line description shown by the CLI.
    :param replace: allow overwriting an existing registration.
    :param algorithm: register an *algorithm variant* instead of the
        default implementation; it is dispatched only when a session
        resolves that concrete algorithm for a spec.
    """
    if requires not in _STAGES:
        raise AlgorithmError(
            f"requires must be one of {_STAGES}, got {requires!r}"
        )
    if not isinstance(name, str) or not name:
        raise AlgorithmError(f"semantics name must be non-empty, got {name!r}")

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        doc_line = description
        if not doc_line and fn.__doc__:
            doc_line = fn.__doc__.strip().splitlines()[0]
        handler = SemanticsHandler(
            name=name,
            fn=fn,
            requires=requires,
            description=doc_line,
            algorithm=algorithm,
        )
        if algorithm is None:
            if name in _REGISTRY and not replace:
                raise AlgorithmError(
                    f"semantics {name!r} is already registered; pass "
                    "replace=True to overwrite"
                )
            _REGISTRY[name] = handler
        else:
            key = (name, algorithm)
            if key in _VARIANTS and not replace:
                raise AlgorithmError(
                    f"semantics {name!r} already has an {algorithm!r} "
                    "variant; pass replace=True to overwrite"
                )
            _VARIANTS[key] = handler
        return fn

    return decorate


def get_semantics(
    name: str, algorithm: str | None = None
) -> SemanticsHandler:
    """Look up a handler; raises :class:`AlgorithmError` if missing.

    :param algorithm: the resolved concrete algorithm; when a variant
        is registered for ``(name, algorithm)`` it wins, otherwise the
        default implementation is returned.
    """
    if algorithm is not None:
        variant = _VARIANTS.get((name, algorithm))
        if variant is not None:
            return variant
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise AlgorithmError(
            f"unknown semantics {name!r}; registered: {known}"
        ) from None


def available_semantics() -> tuple[str, ...]:
    """Registered semantics names, sorted."""
    return tuple(sorted(_REGISTRY))


def semantics_variants(name: str) -> tuple[str, ...]:
    """Algorithms with a registered variant of ``name``, sorted."""
    return tuple(
        sorted(alg for (base, alg) in _VARIANTS if base == name)
    )


def unregister_semantics(name: str, algorithm: str | None = None) -> None:
    """Remove a registration (primarily for tests and plugins).

    Without ``algorithm``, the default implementation *and* every
    variant of ``name`` are removed; with it, only that variant.
    """
    if algorithm is not None:
        _VARIANTS.pop((name, algorithm), None)
        return
    _REGISTRY.pop(name, None)
    for key in [k for k in _VARIANTS if k[0] == name]:
        _VARIANTS.pop(key, None)
