"""Physical operators: the executable lowering of a logical plan.

A :class:`PhysicalPlan` is an operator tree the
:class:`~repro.api.planner.Planner` produces from a
:class:`~repro.api.logical.LogicalPlan` once the stage-1 prefix shape
(``n``, ``k``, the mutual-exclusion member count ``m``) is known:

    ScorePrefixOp ── <pmf op> ── SemanticsOp

where the pmf operator is one of

* :class:`SharedPrefixDPOp` — the Section-3.3.3 forward sweep (the
  production exact engine; O(kmn));
* :class:`PerEndingDPOp` — the one-program-per-ending ablation;
* :class:`KComboOp` — exhaustive k-combination enumeration;
* :class:`StateExpansionOp` — the possible-states baseline;
* :class:`MCSampleOp` — the vectorized Monte-Carlo estimator;

or absent entirely for prefix-consuming semantics (U-Topk, PT-k, …).
:class:`FusedSweepOp` is the batch-fusion operator: one shared-prefix
sweep serving several ``(k, depth)`` slices
(:func:`repro.core.dp.dp_distribution_sliced`).

Operators execute through the stage-function namespace of
:mod:`repro.api.plan` (one patchable seam for tests and plugins), so a
plan's answers are byte-identical to the pre-planner engine.  Each
operator prices itself in machine-independent *cost units*; the
planner's :class:`~repro.api.calibration.CostModel` turns units into
per-machine time estimates for EXPLAIN.

Adding a new physical operator is three steps (see CONTRIBUTING.md):
subclass :class:`PhysicalOp` with ``run``/``cost_units``/``describe``,
map an algorithm name to it in ``PMF_OPERATORS``, and register the
algorithm in the spec layer so requests can ask for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.api.logical import LogicalPlan
from repro.core.pmf import ScorePMF
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable

#: Exponent cap for state-space unit counts (keeps them finite).
_MAX_STATE_EXPONENT = 60


@dataclass(frozen=True)
class PhysicalOp:
    """One executable operator of a physical plan."""

    name = "PhysicalOp"

    def cost_units(self) -> float:
        """Machine-independent work estimate (operator-family units)."""
        raise NotImplementedError

    def unit_ns(self, model) -> float:
        """The cost-model rate this operator's units are priced at."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        """JSON-ready parameters (the EXPLAIN node body)."""
        raise NotImplementedError

    def explain(self, model) -> dict[str, Any]:
        """The full EXPLAIN node: name, parameters, cost estimates."""
        units = self.cost_units()
        return {
            "op": self.name,
            "params": self.describe(),
            "cost_units": round(units, 1),
            "est_ms": model.est_ms(units, self.unit_ns(model)),
        }


@dataclass(frozen=True)
class ScorePrefixOp(PhysicalOp):
    """Stage 1: score, rank-order and Theorem-2-truncate the table.

    ``storage`` records where the rows come from: ``"ram"`` scores and
    sorts the resident relation (cost tracks ``rows_in``), ``"disk"``
    streams the pre-ranked prefix pages of a packed table (cost tracks
    ``rows_out`` — the scan-depth pushdown's whole point).
    """

    name = "ScorePrefixOp"
    k: int = 0
    p_tau: float = 0.0
    depth: int | None = None
    rows_in: int = 0
    rows_out: int = 0
    storage: str = "ram"

    def run(self, table: UncertainTable, spec) -> ScoredTable:
        from repro.api import plan as stages

        return stages.prepare_scored_prefix(
            table, spec.scorer, spec.k, p_tau=spec.p_tau, depth=spec.depth
        )

    def cost_units(self) -> float:
        if self.storage == "disk":
            return float(self.rows_out)
        return float(self.rows_in)

    def unit_ns(self, model) -> float:
        if self.storage == "disk":
            return model.storage_row_ns
        return model.prefix_row_ns

    def describe(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "k": self.k,
            "p_tau": self.p_tau,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
        }
        if self.depth is not None:
            document["depth"] = self.depth
        if self.storage != "ram":
            document["storage"] = self.storage
        return document


@dataclass(frozen=True)
class _PmfOp(PhysicalOp):
    """Shared shape of the stage-2 (score-distribution) operators."""

    k: int = 0
    n: int = 0
    max_lines: int = 0

    def run(self, prefix: ScoredTable, spec) -> ScorePMF:
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {"k": self.k, "n": self.n, "max_lines": self.max_lines}


@dataclass(frozen=True)
class SharedPrefixDPOp(_PmfOp):
    """The O(kmn) shared-prefix dynamic program (``algorithm="dp"``)."""

    name = "SharedPrefixDPOp"
    me_members: int = 0
    backend: str = "python"

    def run(self, prefix: ScoredTable, spec) -> ScorePMF:
        from repro.api import plan as stages

        return stages.dp_distribution(
            prefix, self.k, max_lines=self.max_lines, backend=self.backend
        )

    def cost_units(self) -> float:
        from repro.api.plan import exact_cost

        return float(exact_cost(self.n, self.k, self.me_members))

    def unit_ns(self, model) -> float:
        if self.backend == "native":
            return model.dp_native_unit_ns
        return model.dp_unit_ns

    def describe(self) -> dict[str, Any]:
        document = {**super().describe(), "me_members": self.me_members}
        if self.backend != "python":
            document["backend"] = self.backend
        return document


@dataclass(frozen=True)
class PerEndingDPOp(_PmfOp):
    """The per-ending ablation DP (``algorithm="dp_per_ending"``)."""

    name = "PerEndingDPOp"
    me_members: int = 0
    ending_units: int = 1
    backend: str = "python"
    workers: int = 1

    def run(self, prefix: ScoredTable, spec) -> ScorePMF:
        from repro.api import plan as stages

        return stages.dp_distribution_per_ending(
            prefix,
            self.k,
            max_lines=self.max_lines,
            backend=self.backend,
            workers=self.workers,
        )

    def cost_units(self) -> float:
        # One bottom-up O(kn) program per ending unit.
        return float(self.k * self.n * max(1, self.ending_units))

    def unit_ns(self, model) -> float:
        if self.backend == "native":
            return model.dp_native_unit_ns
        return model.dp_unit_ns

    def explain(self, model) -> dict[str, Any]:
        node = super().explain(model)
        if self.workers > 1:
            # Fan-out divides the serial estimate and pays one pool
            # spin-up; the estimate stays honest about both.
            serial = node["est_ms"]
            node["est_ms"] = round(
                serial / self.workers + model.parallel_spawn_ms, 4
            )
        return node

    def describe(self) -> dict[str, Any]:
        document = {
            **super().describe(),
            "me_members": self.me_members,
            "ending_units": self.ending_units,
        }
        if self.backend != "python":
            document["backend"] = self.backend
        if self.workers > 1:
            document["workers"] = self.workers
        return document


@dataclass(frozen=True)
class KComboOp(_PmfOp):
    """Exhaustive k-combination enumeration (``algorithm="k_combo"``)."""

    name = "KComboOp"

    def run(self, prefix: ScoredTable, spec) -> ScorePMF:
        from repro.api import plan as stages

        return stages.k_combo_distribution(
            prefix, self.k, max_lines=self.max_lines
        )

    def cost_units(self) -> float:
        if self.n < self.k:
            return 0.0
        # Capped: C(n, k) exceeds float range long before anyone would
        # actually run the enumeration, and EXPLAIN must not crash on
        # an explicitly-requested k_combo over a large prefix.
        return float(min(math.comb(self.n, self.k), 10**18))

    def unit_ns(self, model) -> float:
        return model.k_combo_unit_ns

    def describe(self) -> dict[str, Any]:
        return {
            **super().describe(),
            "combinations": int(self.cost_units()),
        }


@dataclass(frozen=True)
class StateExpansionOp(_PmfOp):
    """The possible-states baseline (``algorithm="state_expansion"``)."""

    name = "StateExpansionOp"
    p_tau: float = 0.0

    def run(self, prefix: ScoredTable, spec) -> ScorePMF:
        from repro.api import plan as stages

        return stages.state_expansion_distribution(
            prefix, self.k, p_tau=self.p_tau, max_lines=self.max_lines
        )

    def cost_units(self) -> float:
        return float(
            self.n * 2 ** min(self.n, _MAX_STATE_EXPONENT)
        )

    def unit_ns(self, model) -> float:
        return model.state_unit_ns

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "p_tau": self.p_tau}


@dataclass(frozen=True)
class MCSampleOp(_PmfOp):
    """The vectorized Monte-Carlo estimator (``algorithm="mc"``)."""

    name = "MCSampleOp"
    epsilon: float | None = None
    confidence: float = 0.95
    samples: int | None = None
    seed: int = 0

    def run(self, prefix: ScoredTable, spec) -> ScorePMF:
        from repro.api import plan as stages

        return stages.mc_distribution(prefix, spec)

    def planned_samples(self) -> int:
        """Worlds the engine will draw (fixed, or the a-priori cap)."""
        if self.samples is not None:
            return self.samples
        from repro.mc.confidence import hoeffding_sample_size
        from repro.mc.engine import DEFAULT_EPSILON, DEFAULT_MAX_SAMPLES

        epsilon = self.epsilon if self.epsilon is not None else DEFAULT_EPSILON
        split = 1.0 - (1.0 - self.confidence) / 2.0
        return min(
            DEFAULT_MAX_SAMPLES, hoeffding_sample_size(epsilon, split)
        )

    def cost_units(self) -> float:
        return float(self.planned_samples() * max(1, self.n))

    def unit_ns(self, model) -> float:
        return model.mc_world_row_ns

    def describe(self) -> dict[str, Any]:
        return {
            **super().describe(),
            "epsilon": self.epsilon,
            "confidence": self.confidence,
            "samples": self.samples,
            "planned_samples": self.planned_samples(),
            "seed": self.seed,
        }


@dataclass(frozen=True)
class FusedSweepOp(PhysicalOp):
    """One shared sweep serving several ``(k, depth)`` slices.

    The batch-fusion operator: requests over one table/scorer whose
    exact DP can be sliced byte-identically run as a single
    :func:`repro.core.dp.dp_distribution_sliced` call at the deepest
    prefix and largest ``k``.
    """

    name = "FusedSweepOp"
    requests: tuple[tuple[int, int], ...] = ()
    n: int = 0
    me_members: int = 0
    max_lines: int = 0
    backend: str = "python"

    def run(self, scored: ScoredTable) -> list[ScorePMF]:
        from repro.api import plan as stages

        return stages.dp_distribution_sliced(
            scored,
            self.requests,
            max_lines=self.max_lines,
            backend=self.backend,
        )

    def cost_units(self) -> float:
        from repro.api.plan import exact_cost

        k_max = max((k for k, _ in self.requests), default=1)
        return float(exact_cost(self.n, k_max, self.me_members))

    def unit_ns(self, model) -> float:
        if self.backend == "native":
            return model.dp_native_unit_ns
        return model.dp_unit_ns

    def describe(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "requests": [list(pair) for pair in self.requests],
            "n": self.n,
            "me_members": self.me_members,
            "max_lines": self.max_lines,
        }
        if self.backend != "python":
            document["backend"] = self.backend
        return document


@dataclass(frozen=True)
class SemanticsOp(PhysicalOp):
    """Stage 3: apply the registered answer semantics."""

    name = "SemanticsOp"
    semantics: str = ""
    algorithm: str = ""
    requires: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def run(self, prefix: ScoredTable, spec, *, pmf: ScorePMF | None) -> Any:
        from repro.api.registry import get_semantics

        return get_semantics(self.semantics, self.algorithm).run(
            prefix, spec, pmf=pmf
        )

    def cost_units(self) -> float:
        return 0.0

    def unit_ns(self, model) -> float:
        return 0.0

    def explain(self, model) -> dict[str, Any]:
        return {"op": self.name, "params": self.describe()}

    def describe(self) -> dict[str, Any]:
        return {
            "semantics": self.semantics,
            "algorithm": self.algorithm,
            "requires": self.requires,
            **dict(self.params),
        }


#: Stage-2 operator per concrete algorithm name.
PMF_OPERATORS: dict[str, type[_PmfOp]] = {
    "dp": SharedPrefixDPOp,
    "dp_per_ending": PerEndingDPOp,
    "k_combo": KComboOp,
    "state_expansion": StateExpansionOp,
    "mc": MCSampleOp,
}


@dataclass(frozen=True)
class PhysicalPlan:
    """A lowered, executable plan for one request.

    :ivar logical: the normalized request.
    :ivar algorithm: the resolved concrete algorithm.
    :ivar prefix_op: stage 1.
    :ivar pmf_op: stage 2, or ``None`` for prefix-consuming semantics.
    :ivar semantics_op: stage 3 (absent for raw ``distribution`` runs
        driven through :meth:`~repro.api.session.Session.distribution`).
    """

    logical: LogicalPlan
    algorithm: str
    prefix_op: ScorePrefixOp
    pmf_op: _PmfOp | None = None
    semantics_op: SemanticsOp | None = None
    notes: tuple[str, ...] = field(default=())

    def operators(self) -> Sequence[PhysicalOp]:
        ops: list[PhysicalOp] = [self.prefix_op]
        if self.pmf_op is not None:
            ops.append(self.pmf_op)
        if self.semantics_op is not None:
            ops.append(self.semantics_op)
        return ops

    def cost_units(self) -> float:
        return sum(op.cost_units() for op in self.operators())

    def explain(self, model) -> dict[str, Any]:
        """The ``physical`` section of an EXPLAIN document."""
        nodes = [op.explain(model) for op in self.operators()]
        total_ms = sum(node.get("est_ms", 0.0) for node in nodes)
        document: dict[str, Any] = {
            "algorithm": self.algorithm,
            "operators": nodes,
            "total_cost_units": round(self.cost_units(), 1),
            "total_est_ms": round(total_ms, 4),
        }
        if self.notes:
            document["notes"] = list(self.notes)
        return document
