"""Built-in answer semantics, registered under their canonical names.

The paper's own semantics plus every rival it evaluates against,
all reduced to the registry's uniform ``run(input, spec) -> Answer``
shape over the shared pipeline stages:

========================  ========  =====================================
name                      consumes  answer type
========================  ========  =====================================
``"distribution"``        pmf       :class:`~repro.core.pmf.ScorePMF`
``"typical"``             pmf       :class:`~repro.core.typical.TypicalResult`
``"u_topk"``              prefix    :class:`~repro.semantics.u_topk.UTopkResult` | None
``"pt_k"``                prefix    list of ``(tid, probability)``
``"u_kranks"``            prefix    list of :class:`~repro.semantics.u_kranks.URankAnswer`
``"global_topk"``         prefix    list of ``(tid, probability)``
``"expected_ranks"``      prefix    list of :class:`~repro.semantics.expected_ranks.ExpectedRankAnswer`
========================  ========  =====================================
"""

from __future__ import annotations

from repro.api.registry import register_semantics
from repro.core.typical import TypicalResult, select_typical_clamped
from repro.semantics.expected_ranks import expected_rank_topk_scored
from repro.semantics.global_topk import global_topk_scored
from repro.semantics.pt_k import pt_k_scored
from repro.semantics.u_kranks import u_kranks_scored
from repro.semantics.u_topk import u_topk_scored


@register_semantics(
    "distribution",
    requires="pmf",
    description="the top-k total-score distribution itself",
)
def _distribution(pmf, spec):
    return pmf


@register_semantics(
    "typical",
    requires="pmf",
    description="the paper's c-Typical-Topk answers (Section 4)",
)
def _typical(pmf, spec) -> TypicalResult:
    return select_typical_clamped(pmf, spec.c)


@register_semantics(
    "u_topk",
    description="most probable top-k vector (Soliman, Ilyas & Chang)",
)
def _u_topk(prefix, spec):
    return u_topk_scored(prefix, spec.k)


@register_semantics(
    "pt_k",
    description="tuples with top-k probability >= threshold (Hua et al.)",
)
def _pt_k(prefix, spec):
    return pt_k_scored(prefix, spec.k, spec.threshold)


@register_semantics(
    "u_kranks",
    description="most probable tuple per rank (Soliman, Ilyas & Chang)",
)
def _u_kranks(prefix, spec):
    return u_kranks_scored(prefix, spec.k)


@register_semantics(
    "global_topk",
    description="k tuples with highest top-k probability (Zhang & Chomicki)",
)
def _global_topk(prefix, spec):
    return global_topk_scored(prefix, spec.k)


@register_semantics(
    "expected_ranks",
    description="k tuples with smallest expected rank (Cormode, Li & Yi)",
)
def _expected_ranks(prefix, spec):
    return expected_rank_topk_scored(prefix, spec.k)
