"""Cost-model calibration: measured per-unit costs, persisted per machine.

The planner prices each physical operator in *cost units* — abstract,
machine-independent work counts (DP cell updates, enumerated
combinations, expanded states, sampled world-rows).  Turning units
into milliseconds — and deriving the ``auto`` thresholds — needs
per-machine unit costs, which is what ``repro calibrate`` measures:

* ``dp_unit_ns`` — one unit of the exact shared-prefix DP
  (:func:`~repro.api.plan.exact_cost` units, i.e. ``k·n·(m+1)``);
* ``k_combo_unit_ns`` — one enumerated k-combination;
* ``state_unit_ns`` — one expanded state row
  (``n · 2^n`` units for a depth-``n`` prefix);
* ``mc_world_row_ns`` — one sampled world-row of the Monte-Carlo
  engine (``worlds · n`` units);
* ``prefix_row_ns`` — scoring/sorting one table row (stage 1);
* ``storage_row_ns`` — materializing one prefix row from a packed
  on-disk table (stage 1 under scan-depth pushdown).

From those, the ``auto`` thresholds are derived instead of frozen:

* ``mc_cost_budget`` — the exact-DP unit count affordable within
  ``--target-ms`` (default 1000 ms, matching the intent of the frozen
  literal: "the exact sweep at the budget takes on the order of a
  second"); beyond it ``auto`` routes to the sampling estimator;
* ``k_combo_max_combinations`` — combinations affordable within
  ``--small-case-ms`` (default 0.5 ms: exhaustive enumeration is the
  cheapest plan only while it is effectively free);
* ``state_expansion_max_depth`` — the largest prefix depth whose
  ``n · 2^n`` state expansion fits the same small-case budget.

Without a calibration file the planner falls back to the builtin
:data:`DEFAULT_COST_MODEL`, whose thresholds are exactly the
pre-calibration frozen literals — so behavior (and every golden
answer) is unchanged until an operator opts in by running
``repro calibrate``.  The file lives at
``~/.cache/repro/calibration.json`` by default; the
``REPRO_CALIBRATION`` environment variable overrides the path (set it
to an empty string to disable loading entirely).
"""

from __future__ import annotations

import json
import math
import os
import platform
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Callable

#: ``auto`` threshold defaults — the pre-calibration frozen literals.
DEFAULT_K_COMBO_MAX_COMBINATIONS = 256
DEFAULT_STATE_EXPANSION_MAX_DEPTH = 12
DEFAULT_MC_COST_BUDGET = 5_000_000

#: Builtin per-unit costs (ns), used only for EXPLAIN time estimates
#: until a machine is calibrated; ballpark figures for a mid-range
#: x86 core.
DEFAULT_DP_UNIT_NS = 200.0
DEFAULT_DP_NATIVE_UNIT_NS = 60.0
DEFAULT_K_COMBO_UNIT_NS = 2_000.0
DEFAULT_STATE_UNIT_NS = 400.0
DEFAULT_MC_WORLD_ROW_NS = 30.0
DEFAULT_PREFIX_ROW_NS = 1_500.0
DEFAULT_STORAGE_ROW_NS = 2_500.0
DEFAULT_PARALLEL_SPAWN_MS = 150.0

#: Calibration knob defaults (milliseconds).
DEFAULT_TARGET_MS = 1_000.0
DEFAULT_SMALL_CASE_MS = 0.5

#: Persisted-file schema version.  Schema 2 added the kernel-backend
#: rates (``dp_native_unit_ns``, ``parallel_spawn_ms``) and the
#: ``backends`` report section; schema-1 files still load, with the
#: builtin defaults filling the new fields.
SCHEMA = 2
_ACCEPTED_SCHEMAS = (1, 2)


@dataclass(frozen=True)
class CostModel:
    """Planner constants: ``auto`` thresholds plus per-unit costs.

    ``source`` records provenance: ``"builtin"`` for the frozen
    defaults, else the path of the calibration file.
    """

    k_combo_max_combinations: int = DEFAULT_K_COMBO_MAX_COMBINATIONS
    state_expansion_max_depth: int = DEFAULT_STATE_EXPANSION_MAX_DEPTH
    mc_cost_budget: int = DEFAULT_MC_COST_BUDGET
    dp_unit_ns: float = DEFAULT_DP_UNIT_NS
    dp_native_unit_ns: float = DEFAULT_DP_NATIVE_UNIT_NS
    k_combo_unit_ns: float = DEFAULT_K_COMBO_UNIT_NS
    state_unit_ns: float = DEFAULT_STATE_UNIT_NS
    mc_world_row_ns: float = DEFAULT_MC_WORLD_ROW_NS
    prefix_row_ns: float = DEFAULT_PREFIX_ROW_NS
    storage_row_ns: float = DEFAULT_STORAGE_ROW_NS
    parallel_spawn_ms: float = DEFAULT_PARALLEL_SPAWN_MS
    source: str = "builtin"

    def est_ms(self, units: float, unit_ns: float) -> float:
        """``units`` of work at ``unit_ns`` each, in milliseconds."""
        return round(units * unit_ns / 1e6, 4)

    def describe(self) -> dict[str, Any]:
        """JSON-ready dump (the ``cost_model`` section of EXPLAIN)."""
        return asdict(self)


#: The frozen-literal model every planner starts from.
DEFAULT_COST_MODEL = CostModel()


def calibration_path() -> Path | None:
    """Where the persisted calibration lives on this machine.

    ``REPRO_CALIBRATION`` overrides the default
    ``~/.cache/repro/calibration.json``; an empty value disables
    calibration loading (``None`` is returned).
    """
    override = os.environ.get("REPRO_CALIBRATION")
    if override is not None:
        return Path(override).expanduser() if override else None
    return Path("~/.cache/repro/calibration.json").expanduser()


def load_cost_model(path: str | Path | None = None) -> CostModel:
    """The machine's cost model: calibrated when available.

    Falls back to :data:`DEFAULT_COST_MODEL` when the file is absent,
    unreadable, or from a different schema — calibration must never be
    able to break planning.
    """
    target = Path(path) if path is not None else calibration_path()
    if target is None or not target.is_file():
        return DEFAULT_COST_MODEL
    try:
        document = json.loads(target.read_text())
        if document.get("schema") not in _ACCEPTED_SCHEMAS:
            return DEFAULT_COST_MODEL
        constants = document["constants"]
        return replace(
            DEFAULT_COST_MODEL,
            k_combo_max_combinations=int(
                constants["k_combo_max_combinations"]
            ),
            state_expansion_max_depth=int(
                constants["state_expansion_max_depth"]
            ),
            mc_cost_budget=int(constants["mc_cost_budget"]),
            dp_unit_ns=float(constants["dp_unit_ns"]),
            k_combo_unit_ns=float(constants["k_combo_unit_ns"]),
            state_unit_ns=float(constants["state_unit_ns"]),
            mc_world_row_ns=float(constants["mc_world_row_ns"]),
            prefix_row_ns=float(constants["prefix_row_ns"]),
            # Added after schema 1 shipped: older calibration files
            # simply keep the builtin rates for fields they predate.
            storage_row_ns=float(
                constants.get("storage_row_ns", DEFAULT_STORAGE_ROW_NS)
            ),
            dp_native_unit_ns=float(
                constants.get("dp_native_unit_ns", DEFAULT_DP_NATIVE_UNIT_NS)
            ),
            parallel_spawn_ms=float(
                constants.get("parallel_spawn_ms", DEFAULT_PARALLEL_SPAWN_MS)
            ),
            source=str(target),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return DEFAULT_COST_MODEL


# ----------------------------------------------------------------------
# The micro-benchmark (``repro calibrate``)
# ----------------------------------------------------------------------
def _best_of(case: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall seconds of ``case()``."""
    import time

    best = math.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        case()
        best = min(best, time.perf_counter() - start)
    return best


def run_calibration(
    *,
    target_ms: float = DEFAULT_TARGET_MS,
    small_case_ms: float = DEFAULT_SMALL_CASE_MS,
    repeats: int = 3,
) -> dict[str, Any]:
    """Measure per-unit costs and derive the ``auto`` thresholds.

    Returns the JSON-ready calibration document (probes, derived
    constants, metadata); persist it with :func:`write_calibration`.
    """
    from repro.api.plan import exact_cost
    from repro.bench.workloads import synthetic_workload
    from repro.core.distribution import prepare_scored_prefix
    from repro.core.dp import dp_distribution
    from repro.core.k_combo import k_combo_distribution
    from repro.core.state_expansion import state_expansion_distribution
    from repro.mc.engine import MCEngine

    table = synthetic_workload(tuples=220, me_fraction=0.0, seed=7)

    # Stage 1: score + rank-order + truncate, per row.
    prefix_rows = 220
    prefix_s = _best_of(
        lambda: prepare_scored_prefix(table, "score", 8, p_tau=0.0),
        repeats,
    )

    # Exact DP, per exact_cost unit (independent shape; the ME factor
    # is already part of the unit count).
    dp_prefix = prepare_scored_prefix(table, "score", 8, p_tau=0.0)
    dp_prefix = dp_prefix.prefix(150)
    dp_units = exact_cost(len(dp_prefix), 8, 0)
    dp_s = _best_of(lambda: dp_distribution(dp_prefix, 8), repeats)

    # The same DP under the compiled kernel, when this machine has one
    # (and REPRO_BACKEND does not pin it off).
    from repro.core import kernels

    backends = kernels.backends_report()
    dp_native_s: float | None = None
    try:
        probe_native = kernels.resolve_backend(None) == "native"
    except Exception:
        probe_native = False
    if probe_native:
        dp_native_s = _best_of(
            lambda: dp_distribution(dp_prefix, 8, backend="native"),
            repeats,
        )

    # Process-pool spin-up: what one parallel per-ending fan-out pays
    # before any work happens (prices the planner's worker decision).
    spawn_s: float | None = None
    if (os.cpu_count() or 1) > 1:
        from concurrent.futures import ProcessPoolExecutor

        def spawn_case() -> object:
            with ProcessPoolExecutor(max_workers=2) as pool:
                return list(pool.map(int, (0, 1)))

        spawn_s = _best_of(spawn_case, max(1, repeats - 1))

    # k-Combo, per enumerated combination.
    combo_prefix = dp_prefix.prefix(12)
    combo_units = math.comb(12, 4)
    combo_s = _best_of(
        lambda: k_combo_distribution(combo_prefix, 4), repeats
    )

    # State expansion, per ``n · 2^n`` state-row unit.
    state_prefix = dp_prefix.prefix(12)
    state_units = 12 * 2**12
    state_s = _best_of(
        lambda: state_expansion_distribution(state_prefix, 4, p_tau=0.0),
        repeats,
    )

    # Monte-Carlo engine, per sampled world-row.
    mc_prefix = dp_prefix.prefix(128)
    mc_samples = 2_048
    mc_units = mc_samples * len(mc_prefix)

    def mc_case() -> object:
        return MCEngine(mc_prefix, 8, samples=mc_samples, seed=0).run()

    mc_s = _best_of(mc_case, repeats)

    # Packed-storage prefix materialization, per prefix row: pack a
    # small table to a scratch directory and time cold-cache prefix
    # reads through the page decoder.
    import shutil
    import tempfile

    from repro.storage import open_store, pack_table

    storage_dir = tempfile.mkdtemp(prefix="repro-calibrate-")
    try:
        pack_table(table, storage_dir, scorer="score", page_size=64)
        store = open_store(storage_dir)
        storage_rows = len(store)

        def storage_case() -> object:
            store.clear_page_cache()
            return store.prefix(storage_rows)

        storage_s = _best_of(storage_case, repeats)
    finally:
        shutil.rmtree(storage_dir, ignore_errors=True)

    dp_unit_ns = dp_s * 1e9 / dp_units
    k_combo_unit_ns = combo_s * 1e9 / combo_units
    state_unit_ns = state_s * 1e9 / state_units
    mc_world_row_ns = mc_s * 1e9 / mc_units
    prefix_row_ns = prefix_s * 1e9 / prefix_rows
    storage_row_ns = storage_s * 1e9 / storage_rows

    small_case_ns = small_case_ms * 1e6
    state_depth = 1
    while (
        state_depth < 24
        and (state_depth + 1) * 2 ** (state_depth + 1) * state_unit_ns
        <= small_case_ns
    ):
        state_depth += 1

    dp_native_unit_ns = (
        dp_native_s * 1e9 / dp_units
        if dp_native_s is not None
        else DEFAULT_DP_NATIVE_UNIT_NS
    )
    parallel_spawn_ms = (
        spawn_s * 1e3 if spawn_s is not None else DEFAULT_PARALLEL_SPAWN_MS
    )

    constants = {
        "mc_cost_budget": max(1, int(target_ms * 1e6 / dp_unit_ns)),
        "k_combo_max_combinations": max(
            1, int(small_case_ns / k_combo_unit_ns)
        ),
        "state_expansion_max_depth": state_depth,
        "dp_unit_ns": round(dp_unit_ns, 3),
        "dp_native_unit_ns": round(dp_native_unit_ns, 3),
        "k_combo_unit_ns": round(k_combo_unit_ns, 3),
        "state_unit_ns": round(state_unit_ns, 3),
        "mc_world_row_ns": round(mc_world_row_ns, 3),
        "prefix_row_ns": round(prefix_row_ns, 3),
        "storage_row_ns": round(storage_row_ns, 3),
        "parallel_spawn_ms": round(parallel_spawn_ms, 3),
    }
    probes = {
        "prefix_s": prefix_s,
        "dp_s": dp_s,
        "k_combo_s": combo_s,
        "state_expansion_s": state_s,
        "mc_s": mc_s,
        "storage_s": storage_s,
    }
    if dp_native_s is not None:
        probes["dp_native_s"] = dp_native_s
    if spawn_s is not None:
        probes["parallel_spawn_s"] = spawn_s
    return {
        "schema": SCHEMA,
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "repeats": repeats,
            "target_ms": target_ms,
            "small_case_ms": small_case_ms,
        },
        "probes": probes,
        "backends": backends,
        "constants": constants,
    }


def write_calibration(
    document: dict[str, Any], path: str | Path | None = None
) -> Path:
    """Persist a calibration document; returns the written path."""
    target = Path(path) if path is not None else calibration_path()
    if target is None:
        raise ValueError(
            "calibration persistence is disabled (REPRO_CALIBRATION is "
            "empty); pass an explicit path"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2) + "\n")
    return target
