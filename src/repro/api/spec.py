"""The :class:`QuerySpec`: one frozen value describing a top-k request.

Every knob the paper's algorithms expose — the table, the scoring
function, ``k``, the Theorem-2 threshold ``p_tau``, the coalescing
budget ``max_lines``, the Section-3 algorithm, an explicit scan-depth
override — plus the *answer semantics* to apply (c-Typical-Topk, or
any of the registered rival semantics) and its parameters (``c``,
PT-k's ``threshold``).

A spec validates itself on construction, so an invalid combination
fails fast and with the same exception types the underlying layers
raise.  Specs are immutable; derive variations with :meth:`~QuerySpec.with_`::

    spec = QuerySpec(table="soldiers", scorer="score", k=2, p_tau=0.0)
    spec5 = spec.with_(c=5)            # same plan, different c
    rival = spec.with_(semantics="u_topk")

Because a spec is a plain frozen value, the :class:`~repro.api.session.Session`
can derive *stage keys* from it: two specs that differ only in ``c``
share a score-distribution cache entry, and two that differ only in
``semantics`` share a scored-prefix entry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Union

from repro.core.distribution import ALGORITHMS, DEFAULT_P_TAU, ScorerLike
from repro.core.dp import DEFAULT_MAX_LINES
from repro.exceptions import AlgorithmError, InvalidProbabilityError
from repro.uncertain.table import UncertainTable

#: Algorithm names accepted by a spec: the Section-3 exact algorithms,
#: the Monte-Carlo estimator ``"mc"``, and ``"auto"``, which lets the
#: planner pick from the problem shape (including the exact-cost
#: escape hatch to ``"mc"``).
SPEC_ALGORITHMS = ("auto", "mc") + ALGORITHMS

#: Default number of typical answers (matches the query layer's
#: ``WITH TYPICAL`` default and the paper's running ``c = 3``).
DEFAULT_C = 3

#: Default PT-k membership threshold.
DEFAULT_THRESHOLD = 0.5

#: Default Monte-Carlo CI confidence level.
DEFAULT_MC_CONFIDENCE = 0.95

#: A table reference: a catalog name, or an in-memory table directly.
TableRef = Union[str, UncertainTable]


@dataclass(frozen=True)
class QuerySpec:
    """A complete, validated description of one top-k request.

    :ivar table: catalog table name, or an :class:`UncertainTable`.
    :ivar scorer: scoring callable or numeric attribute name.
    :ivar k: top-k size (>= 1).
    :ivar semantics: registered answer semantics name
        (see :mod:`repro.api.registry`); default ``"typical"``.
    :ivar c: number of typical answers for ``"typical"`` (>= 1).
    :ivar threshold: membership threshold for ``"pt_k"``, in (0, 1].
    :ivar p_tau: Theorem-2 truncation threshold, in [0, 1); 0 scans
        the full table.
    :ivar max_lines: line-coalescing budget (>= 1).
    :ivar algorithm: ``"auto"``, ``"mc"`` or one of the Section-3
        algorithms.
    :ivar depth: explicit scan-depth override (``None`` = Theorem 2).
    :ivar epsilon: MC target CI half-width ±ε (``None`` = the engine
        default); only consulted when ``"mc"`` runs.
    :ivar confidence: MC confidence level, in (0, 1).
    :ivar samples: explicit MC world count (disables adaptive
        sample-size control); ``None`` = adaptive.
    :ivar seed: MC sampling seed (estimates are deterministic per seed).
    """

    table: TableRef
    scorer: ScorerLike
    k: int
    semantics: str = "typical"
    c: int = DEFAULT_C
    threshold: float = DEFAULT_THRESHOLD
    p_tau: float = DEFAULT_P_TAU
    max_lines: int = DEFAULT_MAX_LINES
    algorithm: str = "auto"
    depth: int | None = None
    epsilon: float | None = None
    confidence: float = DEFAULT_MC_CONFIDENCE
    samples: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.table, UncertainTable) and not (
            isinstance(self.table, str) and self.table
        ):
            raise AlgorithmError(
                "table must be a non-empty catalog name or an "
                f"UncertainTable, got {self.table!r}"
            )
        if not callable(self.scorer) and not isinstance(self.scorer, str):
            raise AlgorithmError(
                "scorer must be callable or an attribute name, got "
                f"{self.scorer!r}"
            )
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 1:
            raise AlgorithmError(f"k must be an integer >= 1, got {self.k!r}")
        if not isinstance(self.semantics, str) or not self.semantics:
            raise AlgorithmError(
                f"semantics must be a non-empty name, got {self.semantics!r}"
            )
        if not isinstance(self.c, int) or isinstance(self.c, bool) or self.c < 1:
            raise AlgorithmError(f"c must be an integer >= 1, got {self.c!r}")
        if not 0.0 < self.threshold <= 1.0:
            raise InvalidProbabilityError(
                f"threshold must be in (0, 1], got {self.threshold!r}"
            )
        if not 0.0 <= self.p_tau < 1.0:
            raise InvalidProbabilityError(
                f"p_tau must be in [0, 1), got {self.p_tau!r}"
            )
        if not isinstance(self.max_lines, int) or self.max_lines < 1:
            raise AlgorithmError(
                f"max_lines must be an integer >= 1, got {self.max_lines!r}"
            )
        if self.algorithm not in SPEC_ALGORITHMS:
            raise AlgorithmError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{SPEC_ALGORITHMS}"
            )
        if self.depth is not None and (
            not isinstance(self.depth, int) or self.depth < 0
        ):
            raise AlgorithmError(
                f"depth must be None or an integer >= 0, got {self.depth!r}"
            )
        if self.epsilon is not None and not self.epsilon > 0.0:
            raise AlgorithmError(
                f"epsilon must be None or > 0, got {self.epsilon!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise InvalidProbabilityError(
                f"confidence must be in (0, 1), got {self.confidence!r}"
            )
        if self.samples is not None and (
            not isinstance(self.samples, int)
            or isinstance(self.samples, bool)
            or self.samples < 1
        ):
            raise AlgorithmError(
                f"samples must be None or an integer >= 1, got "
                f"{self.samples!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise AlgorithmError(
                f"seed must be an integer, got {self.seed!r}"
            )

    def with_(self, **changes) -> "QuerySpec":
        """A copy with ``changes`` applied (and re-validated).

        >>> base = QuerySpec(table="t", scorer="score", k=2)
        >>> base.with_(c=5).c
        5
        >>> base.with_(c=5) == base
        False
        >>> base.with_() == base
        True
        """
        return dataclasses.replace(self, **changes)

    def to_jsonable(self) -> dict:
        """The spec as a JSON-ready field mapping (defaults omitted).

        Only representable for *named* specs — a catalog-name table
        and an attribute-name scorer — which is exactly what service
        clients submit; the durable subscription manifest
        round-trips these through :meth:`from_jsonable`.
        """
        if not isinstance(self.table, str):
            raise AlgorithmError(
                "only specs over a named catalog table are serializable"
            )
        if not isinstance(self.scorer, str):
            raise AlgorithmError(
                "only specs with an attribute-name scorer are serializable"
            )
        document = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if (
                field.default is not dataclasses.MISSING
                and value == field.default
            ):
                continue
            document[field.name] = value
        return document

    @classmethod
    def from_jsonable(cls, document: dict) -> "QuerySpec":
        """Rebuild a spec serialized by :meth:`to_jsonable`."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise AlgorithmError(f"unknown spec fields: {unknown}")
        return cls(**document)

    # ------------------------------------------------------------------
    # Stage parameter tuples (legacy accessors)
    # ------------------------------------------------------------------
    # Batch/cache *keys* derive from the normalized
    # :class:`repro.api.logical.LogicalPlan` — the single source shared
    # by the Session's LRUs and the service's batch grouping.  These
    # accessors remain for callers that only need the raw knob tuples
    # (e.g. the MC engine's per-prefix sample cache) and must stay
    # ordered consistently with ``LogicalPlan.mc``.
    def prefix_params(self) -> tuple:
        """Parameters that determine the scored, truncated prefix."""
        return (self.k, self.p_tau, self.depth)

    def pmf_params(self) -> tuple:
        """Parameters (beyond the prefix) that determine the PMF.

        The MC knobs are deliberately excluded: the Session appends
        :meth:`mc_params` only when the resolved algorithm is
        ``"mc"``, so exact-DP cache entries are shared across specs
        that differ only in a sampling knob.
        """
        return (self.max_lines, self.p_tau)

    def mc_params(self) -> tuple:
        """The Monte-Carlo estimation knobs."""
        return (self.epsilon, self.confidence, self.samples, self.seed)

    def semantics_params(self) -> tuple:
        """Parameters (beyond the prefix/PMF) of the answer semantics."""
        return (self.semantics, self.k, self.c, self.threshold)
