"""Unified Session/QuerySpec API over an explicit plan layer.

The package-level surface:

* :class:`~repro.api.spec.QuerySpec` — one frozen value describing a
  top-k request (table, scorer, k, semantics, and every tuning knob);
* :mod:`~repro.api.registry` — the pluggable answer-semantics
  registry (``@register_semantics``) with the paper's semantics and
  all rival baselines pre-registered (:mod:`repro.api.builtin`);
* the **logical→physical plan layer** — specs normalize into a
  :class:`~repro.api.logical.LogicalPlan` (the single source of every
  batch/cache key), which the cost-calibrated
  :class:`~repro.api.planner.Planner` lowers into a
  :class:`~repro.api.physical.PhysicalPlan` of executable operators;
  ``repro calibrate`` (:mod:`repro.api.calibration`) prices the cost
  model per machine;
* :class:`~repro.api.session.Session` — executes plans with every
  stage memoized, so one computed distribution serves typical answers
  at any ``c``, histograms at any precision, and comparisons across
  semantics without recomputation; :meth:`Session.execute_many` fuses
  a mixed-``k`` batch into one shared DP sweep, and
  :meth:`Session.explain` renders any request's operator tree with
  cost estimates and predicted cache hits.

Quickstart::

    from repro.api import QuerySpec, Session
    from repro.datasets.soldier import soldier_table

    session = Session({"soldiers": soldier_table()})
    spec = QuerySpec(table="soldiers", scorer="score", k=2, p_tau=0.0)

    result = session.execute(spec)                 # c-Typical-Topk
    pmf = session.distribution(spec)               # cached PMF
    more = session.execute(spec.with_(c=5))        # no dp re-run
    rival = session.execute(spec.with_(semantics="u_topk"))
"""

from repro.api.calibration import (
    CostModel,
    load_cost_model,
    run_calibration,
    write_calibration,
)
from repro.api.logical import LogicalPlan
from repro.api.physical import PhysicalPlan
from repro.api.plan import (
    AUTO_MC_COST_BUDGET,
    choose_algorithm,
    distribution_from_prefix,
    exact_cost,
    resolve_algorithm,
    scored_prefix_for,
)
from repro.api.planner import DEFAULT_PLANNER, Planner
from repro.api.registry import (
    SemanticsHandler,
    available_semantics,
    get_semantics,
    register_semantics,
    semantics_variants,
    unregister_semantics,
)
from repro.api import builtin as _builtin  # noqa: F401  (registers built-ins)
from repro.mc import semantics as _mc_semantics  # noqa: F401  (mc variants)
from repro.api.session import DEFAULT_CACHE_SIZE, Session
from repro.api.spec import (
    DEFAULT_C,
    DEFAULT_MC_CONFIDENCE,
    DEFAULT_THRESHOLD,
    SPEC_ALGORITHMS,
    QuerySpec,
)

__all__ = [
    "QuerySpec",
    "Session",
    "LogicalPlan",
    "PhysicalPlan",
    "Planner",
    "DEFAULT_PLANNER",
    "CostModel",
    "load_cost_model",
    "run_calibration",
    "write_calibration",
    "SemanticsHandler",
    "register_semantics",
    "unregister_semantics",
    "get_semantics",
    "available_semantics",
    "semantics_variants",
    "choose_algorithm",
    "resolve_algorithm",
    "exact_cost",
    "scored_prefix_for",
    "distribution_from_prefix",
    "AUTO_MC_COST_BUDGET",
    "SPEC_ALGORITHMS",
    "DEFAULT_C",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MC_CONFIDENCE",
    "DEFAULT_CACHE_SIZE",
]
