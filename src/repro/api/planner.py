"""The cost-based planner: logical → physical lowering and fusion.

The planner owns three decisions:

1. **Algorithm choice** (``algorithm="auto"``): pick the cheapest
   stage-2 operator from the problem shape, using the machine's
   :class:`~repro.api.calibration.CostModel` thresholds — exhaustive
   k-Combo while the combination count is trivial, StateExpansion on
   very short prefixes, the O(kmn) shared-prefix DP everywhere else,
   and the Monte-Carlo estimator once the exact-cost model exceeds
   the sampling budget (Figure 10's crossover, priced per machine).
2. **Lowering**: produce the :class:`~repro.api.physical.PhysicalPlan`
   operator tree — with per-operator cost estimates — that
   ``Session.execute``/``distribution`` run and ``EXPLAIN`` renders.
3. **Multi-query fusion** (:meth:`Planner.fuse`): given a batch of
   in-flight requests, merge the exact-DP requests over one
   ``(table, scorer, max_lines)`` into a single
   :class:`~repro.api.physical.FusedSweepOp` at the deepest prefix
   and largest ``k``, whose per-``(k, depth)`` slices are
   byte-identical to dedicated runs (see
   :func:`repro.core.dp.dp_distribution_sliced`).  Fusion is strictly
   opportunistic: a request joins a group only when slicing is
   *provably* byte-identical — same depth for independent prefixes,
   :func:`repro.core.dp.sliceable_depth` for mutual-exclusion
   prefixes — and everything else falls back to the ordinary
   per-request path.  Answers therefore never depend on what a
   request happened to be batched with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.api.calibration import CostModel, load_cost_model
from repro.api.logical import LogicalPlan
from repro.api.physical import (
    FusedSweepOp,
    MCSampleOp,
    PerEndingDPOp,
    PhysicalPlan,
    PMF_OPERATORS,
    ScorePrefixOp,
    SemanticsOp,
    SharedPrefixDPOp,
    StateExpansionOp,
    _PmfOp,
)
from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable


@dataclass(frozen=True)
class FusionCandidate:
    """One batch request the planner may fuse.

    :ivar index: the request's position in the submitted batch.
    :ivar fusion_key: :meth:`LogicalPlan.fusion_key` of the request.
    :ivar prefix: the request's own resolved stage-1 prefix.
    :ivar k: the request's top-k size.
    :ivar depth: ``len(prefix)`` (the request's own scan depth).
    :ivar has_me: whether the request's own prefix carries mutual
        exclusion (routes it to the forward sweep; independent
        prefixes use the bottom-up program and fuse per depth).
    """

    index: int
    fusion_key: Hashable
    prefix: ScoredTable
    k: int
    depth: int
    has_me: bool
    max_lines: int


@dataclass(frozen=True)
class FusionGroup:
    """Several batch requests served by one shared sweep."""

    anchor: ScoredTable
    op: FusedSweepOp
    members: tuple[FusionCandidate, ...]


class Planner:
    """Cost-calibrated logical→physical planner.

    :param cost_model: explicit constants; ``None`` loads the
        machine's persisted calibration (or the builtin defaults).
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self._model = cost_model

    @property
    def cost_model(self) -> CostModel:
        model = self._model
        if model is None:
            model = load_cost_model()
            self._model = model
        return model

    # ------------------------------------------------------------------
    # Algorithm choice
    # ------------------------------------------------------------------
    def choose_algorithm(
        self, n: int, k: int, depth: int | None = None, *, me_members: int = 0
    ) -> str:
        """Pick a concrete algorithm from the problem shape.

        ``n`` is the scanned prefix length (the effective input size
        after Theorem-2 truncation or an explicit ``depth`` override).
        The baselines are exponential in general but cheapest on tiny
        inputs (Figure 10): exhaustive k-Combo when there are only a
        handful of k-combinations, StateExpansion on very short
        prefixes, and the O(kn) dynamic program everywhere else —
        unless the exact-cost model exceeds the cost model's MC
        budget, in which case the Monte-Carlo estimator (sampled
        answers with confidence bounds) takes over.
        """
        model = self.cost_model
        size = n if depth is None else min(n, depth)
        if size < k:
            return "dp"  # no full vector exists; dp returns the empty PMF
        if math.comb(size, k) <= model.k_combo_max_combinations:
            return "k_combo"
        if size <= model.state_expansion_max_depth:
            return "state_expansion"
        if exact_cost(size, k, me_members) > model.mc_cost_budget:
            return "mc"
        # "dp" is the shared-prefix engine: on mutual-exclusion inputs
        # it realizes the Section-3.3.3 O(kmn) bound; the per-ending
        # ablation ("dp_per_ending") is never auto-selected.
        return "dp"

    def resolve_algorithm(self, spec, n: int, *, me_members: int = 0) -> str:
        """The concrete algorithm a spec runs over a length-``n`` prefix."""
        if spec.algorithm == "auto":
            return self.choose_algorithm(
                n, spec.k, spec.depth, me_members=me_members
            )
        return spec.algorithm

    def choose_backend(self, max_lines: int) -> str:
        """Pick the DP kernel backend for this machine and line budget.

        ``native`` whenever the compiled kernel is loadable and the
        line budget fits its slab preallocation; the ``REPRO_BACKEND``
        environment variable overrides (and forcing ``native`` on a
        machine without the kernel raises
        :class:`~repro.exceptions.KernelBackendError` at plan time —
        fail fast, not mid-execution).  Backends are byte-identical,
        so this only ever trades wall-clock.
        """
        from repro.core import kernels

        backend = kernels.resolve_backend(None)
        if backend == "native" and max_lines > kernels.NATIVE_MAX_LINES:
            return "python"
        return backend

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def lower(
        self,
        logical: LogicalPlan,
        prefix: ScoredTable,
        *,
        table_rows: int,
        include_semantics: bool = True,
        algorithm: str | None = None,
        storage: str = "ram",
    ) -> PhysicalPlan:
        """Lower a logical plan over a resolved stage-1 prefix.

        :param table_rows: the unresolved table's row count (stage-1
            cost input).
        :param include_semantics: ``False`` for raw ``distribution``
            runs, which stop after stage 2.
        :param algorithm: concrete-algorithm override; ``None``
            resolves from the spec (including ``"auto"``).
        :param storage: where stage 1 reads from — ``"ram"`` (score
            and sort the resident relation) or ``"disk"`` (stream the
            pre-ranked prefix of a packed table); prices the prefix
            operator accordingly.
        """
        spec = logical.spec
        n = len(prefix)
        me_members = prefix.me_member_count()
        if algorithm is None:
            algorithm = self.resolve_algorithm(
                spec, n, me_members=me_members
            )
        prefix_op = ScorePrefixOp(
            k=spec.k,
            p_tau=spec.p_tau,
            depth=spec.depth,
            rows_in=table_rows,
            rows_out=n,
            storage=storage,
        )
        requires = logical.requires
        if include_semantics:
            # Variant-aware: an algorithm variant of the semantics may
            # consume a different stage than the default registration.
            from repro.api.registry import get_semantics

            requires = get_semantics(spec.semantics, algorithm).requires
        needs_pmf = not include_semantics or requires != "prefix"
        pmf_op: _PmfOp | None = None
        backend: str | None = None
        if needs_pmf:
            op_type = PMF_OPERATORS.get(algorithm)
            if op_type is None:
                raise AlgorithmError(f"unknown algorithm {algorithm!r}")
            common = {"k": spec.k, "n": n, "max_lines": spec.max_lines}
            if op_type is SharedPrefixDPOp:
                backend = self.choose_backend(spec.max_lines)
                pmf_op = SharedPrefixDPOp(
                    **common, me_members=me_members, backend=backend
                )
            elif op_type is PerEndingDPOp:
                backend = self.choose_backend(spec.max_lines)
                units = ending_unit_count(prefix)
                pmf_op = PerEndingDPOp(
                    **common,
                    me_members=me_members,
                    ending_units=units,
                    backend=backend,
                )
                pmf_op = self._with_workers(pmf_op, units)
            elif op_type is StateExpansionOp:
                pmf_op = StateExpansionOp(**common, p_tau=spec.p_tau)
            elif op_type is MCSampleOp:
                pmf_op = MCSampleOp(
                    **common,
                    epsilon=spec.epsilon,
                    confidence=spec.confidence,
                    samples=spec.samples,
                    seed=spec.seed,
                )
            else:
                pmf_op = op_type(**common)
        semantics_op = None
        if include_semantics:
            params: tuple[tuple[str, object], ...] = ()
            if spec.semantics == "typical":
                params = (("c", spec.c),)
            elif spec.semantics == "pt_k":
                params = (("threshold", spec.threshold),)
            semantics_op = SemanticsOp(
                semantics=spec.semantics,
                algorithm=algorithm,
                requires=requires,
                params=params,
            )
        notes: tuple[str, ...] = ()
        if spec.algorithm == "auto":
            notes = (f"algorithm resolved by cost model: {algorithm}",)
        if backend == "native":
            notes += ("dp backend: native (compiled kernel)",)
        workers = getattr(pmf_op, "workers", 1)
        if workers > 1:
            notes += (f"per-ending fan-out: {workers} workers",)
        return PhysicalPlan(
            logical=logical,
            algorithm=algorithm,
            prefix_op=prefix_op,
            pmf_op=pmf_op,
            semantics_op=semantics_op,
            notes=notes,
        )

    def _with_workers(self, op: PerEndingDPOp, units: int) -> PerEndingDPOp:
        """Size the per-ending process fan-out from the cost model."""
        from dataclasses import replace

        from repro.core.kernels.parallel import default_workers

        model = self.cost_model
        est_serial_ms = model.est_ms(op.cost_units(), op.unit_ns(model))
        workers = default_workers(
            units, est_serial_ms, model.parallel_spawn_ms
        )
        if workers <= 1:
            return op
        return replace(op, workers=workers)

    # ------------------------------------------------------------------
    # Multi-query fusion
    # ------------------------------------------------------------------
    def fuse(
        self, candidates: Sequence[FusionCandidate]
    ) -> list[FusionGroup]:
        """Merge fusable exact-DP requests into shared sweeps.

        Candidates must already resolve to ``algorithm="dp"`` with an
        uncached PMF (the caller filters).  Returns only groups that
        actually save work (two or more distinct ``(k, depth)``
        slices, or several requests sharing one slice).
        """
        from repro.core.dp import sliceable_depth

        buckets: dict[Hashable, list[FusionCandidate]] = {}
        for candidate in candidates:
            buckets.setdefault(candidate.fusion_key, []).append(candidate)

        groups: list[FusionGroup] = []
        for bucket in buckets.values():
            me = [c for c in bucket if c.has_me]
            independent = [c for c in bucket if not c.has_me]

            # Independent prefixes: the bottom-up program slices per
            # column, so only equal-depth requests share a sweep.
            by_depth: dict[int, list[FusionCandidate]] = {}
            for candidate in independent:
                by_depth.setdefault(candidate.depth, []).append(candidate)
            for same_depth in by_depth.values():
                self._emit(groups, same_depth[0].prefix, same_depth)

            # Mutual-exclusion prefixes: the forward sweep slices any
            # (k, depth) whose prefix sees the same rule-tuple
            # structure; anchor at the deepest, regroup the rest.
            remaining = sorted(me, key=lambda c: -c.depth)
            while remaining:
                anchor = remaining[0]
                taken = [
                    c
                    for c in remaining
                    if c.depth == anchor.depth
                    or sliceable_depth(anchor.prefix, c.depth)
                ]
                remaining = [c for c in remaining if c not in taken]
                self._emit(groups, anchor.prefix, taken)
        return groups

    def _emit(
        self,
        groups: list[FusionGroup],
        anchor: ScoredTable,
        members: list[FusionCandidate],
    ) -> None:
        requests = tuple(
            sorted({(c.k, c.depth) for c in members})
        )
        if len(requests) < 2:
            # A single distinct slice gains nothing over the ordinary
            # path (duplicates already share its cache entry).
            return
        op = FusedSweepOp(
            requests=requests,
            n=len(anchor),
            me_members=anchor.me_member_count(),
            max_lines=members[0].max_lines,
            backend=self.choose_backend(members[0].max_lines),
        )
        groups.append(
            FusionGroup(anchor=anchor, op=op, members=tuple(members))
        )


def exact_cost(n: int, k: int, me_members: int = 0) -> int:
    """Cost-model units of the exact shared-prefix DP: O(k·n·(m+1)).

    ``m`` is the number of tuples sharing an ME group with another
    tuple (the Section-3.3.3 bound); independent prefixes cost O(kn).
    """
    return k * n * (me_members + 1)


def ending_unit_count(scored: ScoredTable) -> int:
    """Ending units of a prefix (the ``E`` of the per-ending ablation)."""
    from repro.core.dp import _ending_units

    return len(_ending_units(scored))


#: The process-wide planner (lazy calibration load).  Sessions may be
#: built with their own planner/cost model; everything else shares
#: this one.
DEFAULT_PLANNER = Planner()
