"""Stage primitives of the query pipeline.

The pipeline a :class:`~repro.api.session.Session` plans — and that
the legacy free functions execute one-shot — has three stages:

1. **prefix** — score, rank-order and Theorem-2-truncate the table
   (:func:`scored_prefix_for`);
2. **pmf** — run a Section-3 algorithm over the prefix to obtain the
   top-k score distribution (:func:`distribution_from_prefix`);
3. **semantics** — apply the requested answer semantics (dispatched
   through :mod:`repro.api.registry`).

This module owns stages 1–2 plus the ``algorithm="auto"`` choice; it
is deliberately stateless so the Session can memoize each stage under
keys derived from the :class:`~repro.api.spec.QuerySpec`.
"""

from __future__ import annotations

import math

from repro.core.distribution import prepare_scored_prefix
from repro.core.dp import dp_distribution, dp_distribution_per_ending
from repro.core.k_combo import k_combo_distribution
from repro.core.pmf import ScorePMF
from repro.core.state_expansion import state_expansion_distribution
from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable

#: ``algorithm="auto"``: use k-Combo when the full combination count
#: is below this (exhaustive enumeration is then cheapest).
AUTO_K_COMBO_MAX_COMBINATIONS = 256

#: ``algorithm="auto"``: use StateExpansion for prefixes at most this
#: deep (its 2^n state space stays trivial there).
AUTO_STATE_EXPANSION_MAX_DEPTH = 12

#: ``algorithm="auto"``: fall back to the Monte-Carlo estimator when
#: the exact-cost model (:func:`exact_cost` units) exceeds this.  The
#: exact sweep at the budget takes on the order of a second of pure
#: Python/numpy; beyond it sampling with explicit ±ε bounds is the
#: better trade.
AUTO_MC_COST_BUDGET = 5_000_000


def exact_cost(n: int, k: int, me_members: int = 0) -> int:
    """Cost-model units of the exact shared-prefix DP: O(k·n·(m+1)).

    ``m`` is the number of tuples sharing an ME group with another
    tuple (the Section-3.3.3 bound); independent prefixes cost O(kn).
    """
    return k * n * (me_members + 1)


def choose_algorithm(
    n: int, k: int, depth: int | None = None, *, me_members: int = 0
) -> str:
    """Pick an algorithm from the problem shape.

    ``n`` is the scanned prefix length (the effective input size after
    Theorem-2 truncation or an explicit ``depth`` override).  The
    baselines are exponential in general but cheapest on tiny inputs
    (Figure 10): exhaustive k-Combo when there are only a handful of
    k-combinations, StateExpansion on very short prefixes, and the
    O(kn) dynamic program everywhere else — unless the exact-cost
    model exceeds :data:`AUTO_MC_COST_BUDGET`, in which case the
    Monte-Carlo estimator (sampled answers with confidence bounds)
    takes over.

    :param me_members: the prefix's mutual-exclusion member count
        (``ScoredTable.me_member_count()``); drives the exact-cost
        escape hatch to ``"mc"``.
    """
    size = n if depth is None else min(n, depth)
    if size < k:
        return "dp"  # no full vector exists; dp returns the empty PMF
    if math.comb(size, k) <= AUTO_K_COMBO_MAX_COMBINATIONS:
        return "k_combo"
    if size <= AUTO_STATE_EXPANSION_MAX_DEPTH:
        return "state_expansion"
    if exact_cost(size, k, me_members) > AUTO_MC_COST_BUDGET:
        return "mc"
    # "dp" is the shared-prefix engine: on mutual-exclusion inputs it
    # realizes the Section-3.3.3 O(kmn) bound; the per-ending ablation
    # ("dp_per_ending") is never auto-selected.
    return "dp"


def resolve_algorithm(spec, n: int, *, me_members: int = 0) -> str:
    """The concrete algorithm a spec runs over a length-``n`` prefix."""
    if spec.algorithm == "auto":
        return choose_algorithm(n, spec.k, spec.depth, me_members=me_members)
    return spec.algorithm


def scored_prefix_for(table: UncertainTable, spec) -> ScoredTable:
    """Stage 1: the scored, rank-ordered, truncated prefix."""
    return prepare_scored_prefix(
        table, spec.scorer, spec.k, p_tau=spec.p_tau, depth=spec.depth
    )


def distribution_from_prefix(
    prefix: ScoredTable, spec, *, algorithm: str | None = None
) -> ScorePMF:
    """Stage 2: the top-k score distribution of a prepared prefix.

    :param algorithm: concrete algorithm override; when ``None`` it is
        resolved from the spec (including ``"auto"``).
    """
    if algorithm is None:
        algorithm = resolve_algorithm(
            spec, len(prefix), me_members=prefix.me_member_count()
        )
    if algorithm == "mc":
        # Imported lazily: repro.mc builds on this package's spec.
        from repro.mc.engine import mc_distribution

        return mc_distribution(prefix, spec)
    if algorithm == "dp":
        return dp_distribution(prefix, spec.k, max_lines=spec.max_lines)
    if algorithm == "dp_per_ending":
        return dp_distribution_per_ending(
            prefix, spec.k, max_lines=spec.max_lines
        )
    if algorithm == "state_expansion":
        return state_expansion_distribution(
            prefix, spec.k, p_tau=spec.p_tau, max_lines=spec.max_lines
        )
    if algorithm == "k_combo":
        return k_combo_distribution(prefix, spec.k, max_lines=spec.max_lines)
    raise AlgorithmError(f"unknown algorithm {algorithm!r}")
