"""Stage functions and planning shims of the query pipeline.

The pipeline a :class:`~repro.api.session.Session` plans — and that
the legacy free functions execute one-shot — has three stages:

1. **prefix** — score, rank-order and Theorem-2-truncate the table
   (:func:`scored_prefix_for`);
2. **pmf** — run a Section-3 algorithm over the prefix to obtain the
   top-k score distribution (:func:`distribution_from_prefix`);
3. **semantics** — apply the requested answer semantics (dispatched
   through :mod:`repro.api.registry`).

Planning itself lives in the explicit logical→physical layer:
:mod:`repro.api.logical` normalizes a spec,
:mod:`repro.api.planner` chooses the concrete algorithm from the
machine's cost model and lowers it to the executable operators of
:mod:`repro.api.physical`.  This module remains the *stage-function
namespace* those operators execute through — one patchable seam for
tests and plugins — plus backward-compatible wrappers
(:func:`choose_algorithm`, :func:`resolve_algorithm`,
:func:`exact_cost`) that delegate to the process-wide planner.

The ``AUTO_*`` constants below are the planner's builtin (frozen)
thresholds; a machine calibrated with ``repro calibrate`` overrides
them through :mod:`repro.api.calibration` without touching this
module.
"""

from __future__ import annotations

from repro.api.calibration import (
    DEFAULT_K_COMBO_MAX_COMBINATIONS,
    DEFAULT_MC_COST_BUDGET,
    DEFAULT_STATE_EXPANSION_MAX_DEPTH,
)
from repro.api.logical import LogicalPlan
from repro.api.planner import DEFAULT_PLANNER, exact_cost
from repro.core.distribution import prepare_scored_prefix
from repro.core.dp import (  # noqa: F401  (stage-function namespace)
    dp_distribution,
    dp_distribution_per_ending,
    dp_distribution_sliced,
)
from repro.core.k_combo import k_combo_distribution  # noqa: F401
from repro.core.pmf import ScorePMF
from repro.core.state_expansion import (  # noqa: F401
    state_expansion_distribution,
)
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable

__all__ = [
    "AUTO_K_COMBO_MAX_COMBINATIONS",
    "AUTO_STATE_EXPANSION_MAX_DEPTH",
    "AUTO_MC_COST_BUDGET",
    "exact_cost",
    "choose_algorithm",
    "resolve_algorithm",
    "scored_prefix_for",
    "distribution_from_prefix",
    "mc_distribution",
]

#: ``algorithm="auto"`` builtin threshold: use k-Combo when the full
#: combination count is below this (exhaustive enumeration is then
#: cheapest).  Calibration may override per machine.
AUTO_K_COMBO_MAX_COMBINATIONS = DEFAULT_K_COMBO_MAX_COMBINATIONS

#: ``algorithm="auto"`` builtin threshold: use StateExpansion for
#: prefixes at most this deep (its 2^n state space stays trivial
#: there).
AUTO_STATE_EXPANSION_MAX_DEPTH = DEFAULT_STATE_EXPANSION_MAX_DEPTH

#: ``algorithm="auto"`` builtin threshold: fall back to the
#: Monte-Carlo estimator when the exact-cost model
#: (:func:`exact_cost` units) exceeds this.  The exact sweep at the
#: budget takes on the order of a second of pure Python/numpy; beyond
#: it sampling with explicit ±ε bounds is the better trade.
AUTO_MC_COST_BUDGET = DEFAULT_MC_COST_BUDGET


def choose_algorithm(
    n: int, k: int, depth: int | None = None, *, me_members: int = 0
) -> str:
    """Pick an algorithm from the problem shape.

    Delegates to the process-wide :data:`~repro.api.planner.DEFAULT_PLANNER`
    (cost-model thresholds; the builtin model reproduces the frozen
    ``AUTO_*`` literals exactly).

    :param me_members: the prefix's mutual-exclusion member count
        (``ScoredTable.me_member_count()``); drives the exact-cost
        escape hatch to ``"mc"``.
    """
    return DEFAULT_PLANNER.choose_algorithm(
        n, k, depth, me_members=me_members
    )


def resolve_algorithm(spec, n: int, *, me_members: int = 0) -> str:
    """The concrete algorithm a spec runs over a length-``n`` prefix."""
    return DEFAULT_PLANNER.resolve_algorithm(spec, n, me_members=me_members)


def scored_prefix_for(table: UncertainTable, spec) -> ScoredTable:
    """Stage 1: the scored, rank-ordered, truncated prefix."""
    return prepare_scored_prefix(
        table, spec.scorer, spec.k, p_tau=spec.p_tau, depth=spec.depth
    )


def mc_distribution(prefix: ScoredTable, spec) -> ScorePMF:
    """Stage 2 under ``algorithm="mc"`` (lazy import: :mod:`repro.mc`
    builds on this package's spec)."""
    from repro.mc.engine import mc_distribution as run_mc

    return run_mc(prefix, spec)


def distribution_from_prefix(
    prefix: ScoredTable, spec, *, algorithm: str | None = None
) -> ScorePMF:
    """Stage 2: the top-k score distribution of a prepared prefix.

    Lowers the request through the planner and runs the resulting
    stage-2 physical operator (which executes back through this
    module's stage functions, so patched stage functions are honored).

    :param algorithm: concrete algorithm override; when ``None`` it is
        resolved from the spec (including ``"auto"``).
    """
    physical = DEFAULT_PLANNER.lower(
        LogicalPlan.from_spec(spec),
        prefix,
        table_rows=len(prefix),
        include_semantics=False,
        algorithm=algorithm,
    )
    assert physical.pmf_op is not None
    return physical.pmf_op.run(prefix, spec)
