"""The :class:`Session`: plan, cache and dispatch top-k requests.

A session wraps a :class:`~repro.query.engine.Catalog` and executes
:class:`~repro.api.spec.QuerySpec` values through the explicit
logical→physical plan layer: each spec is normalized into a
:class:`~repro.api.logical.LogicalPlan`, lowered by the cost-based
:class:`~repro.api.planner.Planner` into a
:class:`~repro.api.physical.PhysicalPlan` of executable operators, and
run with every stage memoized in a keyed LRU:

* **scored cache** — keyed by ``(table, scorer)``: the fully scored,
  rank-ordered table the fused batch path slices prefixes from;
* **prefix cache** — keyed by ``(table, scorer, k, p_tau, depth)``:
  changing only the semantics (or ``c``, ``max_lines``, the
  algorithm) reuses the scored, Theorem-2-truncated prefix;
* **pmf cache** — keyed by the prefix plus ``(algorithm, max_lines,
  p_tau)``: changing only ``c`` (or the answer semantics consuming
  the PMF) reuses the computed :class:`~repro.core.pmf.ScorePMF` —
  the paper's own end-of-Section-4 observation that re-selecting
  typical answers at a new ``c`` costs O(cn), not a re-run of the
  dynamic program;
* **answer cache** — keyed by the consumed stage plus the semantics
  parameters, so hot repeated requests are pure lookups.

Every key's parameter tail derives from the request's
:class:`~repro.api.logical.LogicalPlan` — the same normalization the
service's batch grouping uses — so grouping and caching can never
drift.  Cache keys hold the resolved table (and prefix) *objects*,
which are immutable and hashed by identity: re-registering a name in
the catalog therefore invalidates naturally — the next ``execute``
resolves a different object and misses.  ``cache_info()`` exposes
hit/miss counters per stage.

**Multi-query fusion**: :meth:`Session.execute_many` hands the whole
batch to the planner, which merges exact-DP requests over one table
and scorer into a single shared-prefix sweep at the largest ``k`` and
deepest prefix (:class:`~repro.api.physical.FusedSweepOp`), slices the
per-request distributions out, and seeds the ordinary stage caches —
so a mixed-``k`` batch pays one DP instead of one per ``(k,
algorithm)`` group, while every answer stays byte-identical to a
dedicated :meth:`execute`.  ``fusion_info()`` counts the sweeps saved.

**Inspection**: :meth:`Session.explain` renders a request's plan —
normalized spec, operator tree with cost estimates from the machine's
calibrated cost model, and predicted cache hits — without running the
expensive stages.

Sessions are safe to share across threads: each stage cache holds its
own lock, answers are deterministic pure functions of the cache key,
and the hit/miss counters stay consistent under concurrency — the
property the :mod:`repro.service` batching executor relies on.

>>> from repro.datasets.soldier import soldier_table
>>> from repro.api.spec import QuerySpec
>>> session = Session({"soldiers": soldier_table()})
>>> spec = QuerySpec(table="soldiers", scorer="score", k=2, p_tau=0.0)
>>> [round(a.score) for a in session.execute(spec).answers]
[118, 183, 235]
>>> pmf = session.distribution(spec)          # cached: no recompute
>>> session.execute(spec.with_(c=5)) is not None
True
>>> session.cache_info()["pmf"]["misses"]
1
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Literal, Mapping, Sequence

from repro.api.logical import ByIdentity, LogicalPlan, hashable
from repro.api.planner import (
    DEFAULT_PLANNER,
    FusionCandidate,
    FusionGroup,
    Planner,
)
from repro.api.spec import QuerySpec
from repro.core.pmf import ScorePMF
from repro.core.scan_depth import scan_depth
from repro.exceptions import AlgorithmError
from repro.query.engine import Catalog
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable

#: Default per-stage LRU capacity.
DEFAULT_CACHE_SIZE = 64

#: Backward-compatible aliases (pre-planner private names).
_ByIdentity = ByIdentity
_hashable = hashable

#: The operation a batch entry runs.
BatchOp = Literal["execute", "distribution"]


class _LRU:
    """A small least-recently-used map with hit/miss counters.

    Thread-safe: every operation holds the cache's own lock, so a
    :class:`Session` may be shared across service worker threads.
    Counters stay consistent (``hits + misses`` equals the number of
    ``get`` calls); concurrent misses on one key may each compute and
    ``put`` the value, which is benign because stage computations are
    deterministic pure functions of the key.

    Capacity is bounded two ways: ``maxsize`` entries always, and —
    when ``max_bytes`` is set — a byte budget over the sizes callers
    declare via ``put(..., nbytes=...)``.  Entries stored without a
    size count zero bytes (session-stage values are heterogeneous
    Python objects; the byte budget exists for the storage page
    caches, whose page sizes are known exactly).  Capacity evictions
    are counted separately from explicit invalidation.
    """

    __slots__ = (
        "maxsize",
        "max_bytes",
        "hits",
        "misses",
        "evictions",
        "capacity_evictions",
        "current_bytes",
        "_data",
        "_sizes",
        "_lock",
    )

    def __init__(self, maxsize: int, max_bytes: int | None = None) -> None:
        if maxsize < 1:
            raise AlgorithmError(f"cache size must be >= 1, got {maxsize}")
        if max_bytes is not None and max_bytes < 1:
            raise AlgorithmError(
                f"cache byte budget must be >= 1, got {max_bytes}"
            )
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.capacity_evictions = 0
        self.current_bytes = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any, nbytes: int = 0) -> None:
        with self._lock:
            if key in self._data:
                self.current_bytes -= self._sizes.get(key, 0)
            self._data[key] = value
            self._data.move_to_end(key)
            if nbytes:
                self._sizes[key] = nbytes
            else:
                self._sizes.pop(key, None)
            self.current_bytes += nbytes
            self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        # Never evict the entry just inserted, even when it alone
        # exceeds the byte budget — a cache that cannot hold the
        # working item would thrash to zero hits.
        while len(self._data) > self.maxsize or (
            self.max_bytes is not None
            and self.current_bytes > self.max_bytes
            and len(self._data) > 1
        ):
            key, _ = self._data.popitem(last=False)
            self.current_bytes -= self._sizes.pop(key, 0)
            self.capacity_evictions += 1

    def contains(self, key: Hashable) -> bool:
        """Counter-free membership probe (EXPLAIN's predicted hits)."""
        with self._lock:
            return key in self._data

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Counter-free, order-preserving lookup."""
        with self._lock:
            return self._data.get(key, default)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self.current_bytes = 0

    def evict_where(self, predicate: Any) -> list[Any]:
        """Remove entries whose ``predicate(key, value)`` is true.

        Returns the evicted *values* (explicit invalidation, e.g. a
        catalog table reload) and counts them in ``evictions``.
        """
        with self._lock:
            doomed = [
                key
                for key, value in self._data.items()
                if predicate(key, value)
            ]
            values = [self._data.pop(key) for key in doomed]
            for key in doomed:
                self.current_bytes -= self._sizes.pop(key, 0)
            self.evictions += len(values)
            return values

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def info(self) -> dict[str, int]:
        with self._lock:
            document = {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._data),
                "maxsize": self.maxsize,
                "evictions": self.evictions,
            }
            if self.max_bytes is not None:
                document["capacity_evictions"] = self.capacity_evictions
                document["current_bytes"] = self.current_bytes
                document["max_bytes"] = self.max_bytes
            return document


#: Sentinel distinguishing "absent" from cached ``None`` answers
#: (U-Topk legitimately returns ``None`` on short prefixes).
_MISSING = object()


class Session:
    """A planning, caching façade over a catalog of uncertain tables.

    :param tables: a :class:`Catalog`, a ``name -> table`` mapping, or
        ``None`` for an empty catalog.
    :param cache_size: per-stage LRU capacity.
    :param planner: the logical→physical planner; ``None`` shares the
        process-wide (calibration-loading) planner.
    """

    def __init__(
        self,
        tables: Catalog | Mapping[str, UncertainTable] | None = None,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        planner: Planner | None = None,
    ) -> None:
        self._catalog = (
            tables if isinstance(tables, Catalog) else Catalog(tables)
        )
        self._planner = planner if planner is not None else DEFAULT_PLANNER
        self._scored = _LRU(cache_size)
        self._prefixes = _LRU(cache_size)
        self._pmfs = _LRU(cache_size)
        self._answers = _LRU(cache_size)
        self._fusion_lock = threading.Lock()
        self._fusion = {
            "batches": 0,
            "groups": 0,
            "fused_specs": 0,
            "sweeps_saved": 0,
        }

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        """The underlying catalog."""
        return self._catalog

    @property
    def planner(self) -> Planner:
        """The logical→physical planner this session lowers through."""
        return self._planner

    def register(self, name: str, table: UncertainTable) -> None:
        """Add (or replace) a table; cached stages for a replaced name
        are naturally orphaned because keys hold the old object."""
        self._catalog.register(name, table)

    def tables(self) -> tuple[str, ...]:
        """Registered table names, sorted."""
        return self._catalog.names()

    def resolve(self, spec: QuerySpec) -> UncertainTable:
        """The concrete table a spec refers to."""
        if isinstance(spec.table, UncertainTable):
            return spec.table
        return self._catalog.resolve(spec.table)

    # ------------------------------------------------------------------
    # Staged execution
    # ------------------------------------------------------------------
    def _prefix_key(
        self, table: UncertainTable, logical: LogicalPlan
    ) -> Hashable:
        # The *data version* participates alongside the table identity:
        # tables that mutate in place (repro.standing) bump their
        # version, so a cached stage computed before a mutation can
        # never be served after it — downstream stages chain off the
        # prefix object's identity and miss transitively.
        return (table, table.version) + logical.prefix_params()

    @staticmethod
    def _storage_kind(table: UncertainTable, logical: LogicalPlan) -> str:
        """``"disk"`` when the request is served by scan-depth pushdown
        (the table is packed on the request's scorer), else ``"ram"``
        — the planner's stage-1 pricing input."""
        from repro.core.distribution import storage_pushdown_view

        view = storage_pushdown_view(table, logical.spec.scorer)
        return "ram" if view is None else "disk"

    def _prefix_for(
        self, table: UncertainTable, logical: LogicalPlan
    ) -> ScoredTable:
        """Stage 1 get-or-compute (the one population point of the
        prefix cache besides the batch path's shared-sort slicing)."""
        key = self._prefix_key(table, logical)
        prefix = self._prefixes.get(key)
        if prefix is None:
            from repro.api import plan

            prefix = plan.scored_prefix_for(table, logical.spec)
            self._prefixes.put(key, prefix)
        return prefix

    def scored_prefix(self, spec: QuerySpec) -> ScoredTable:
        """Stage 1 (cached): the scored, truncated prefix."""
        logical = LogicalPlan.from_spec(spec)
        return self._prefix_for(self.resolve(spec), logical)

    def seed_prefix(self, spec: QuerySpec, prefix: ScoredTable) -> None:
        """Install ``prefix`` as the stage-1 entry for ``spec`` at the
        table's *current* version.

        This is the standing-query maintainer's patch point: after a
        mutation that provably cannot change the prefix (or whose new
        prefix was rebuilt incrementally from segment state), seeding
        keeps the downstream PMF/answer chain warm — the PMF cache is
        keyed by the prefix *object*, so re-seeding the same object
        under the new version preserves every downstream entry.  The
        caller guarantees the seeded prefix is byte-identical to what
        stage 1 would compute cold; nothing here can check that.
        """
        logical = LogicalPlan.from_spec(spec)
        table = self.resolve(spec)
        self._prefixes.put(self._prefix_key(table, logical), prefix)

    def invalidate_table(self, table: UncertainTable) -> int:
        """Evict every cached stage derived from ``table``.

        Version-keyed stage keys already guarantee correctness when a
        table mutates in place or is re-registered — old entries can
        never be *hit* again — so this is about promptly releasing the
        resident state (and the table itself, which its keys pin) on a
        catalog (re)load.  Eviction chains through the stages: scored
        tables and prefixes match on the table in their key, PMFs on
        an evicted prefix, answers on an evicted prefix or PMF.
        Returns the number of entries evicted (also counted per stage
        in :meth:`cache_info`).
        """
        evicted = self._scored.evict_where(
            lambda key, _value: key[0] is table
        )
        prefixes = self._prefixes.evict_where(
            lambda key, _value: key[0] is table
        )
        stale = {id(value) for value in prefixes}
        pmfs = self._pmfs.evict_where(
            lambda key, _value: id(key[0]) in stale
        )
        stale.update(id(value) for value in pmfs)
        answers = self._answers.evict_where(
            lambda key, _value: isinstance(key[0], ByIdentity)
            and id(key[0].obj) in stale
        )
        return len(evicted) + len(prefixes) + len(pmfs) + len(answers)

    def distribution(self, spec: QuerySpec) -> ScorePMF:
        """Stage 2 (cached): the top-k total-score distribution."""
        logical = LogicalPlan.from_spec(spec)
        table = self.resolve(spec)
        prefix = self._prefix_for(table, logical)
        physical = self._planner.lower(
            logical,
            prefix,
            table_rows=len(table),
            include_semantics=False,
            storage=self._storage_kind(table, logical),
        )
        # The sampling knobs only shape MC estimates; exact-algorithm
        # entries stay shared across specs differing in a knob only.
        key = (prefix,) + logical.pmf_params(physical.algorithm)
        pmf = self._pmfs.get(key)
        if pmf is None:
            assert physical.pmf_op is not None
            pmf = physical.pmf_op.run(prefix, spec)
            self._pmfs.put(key, pmf)
        return pmf

    def execute(self, spec: QuerySpec) -> Any:
        """Stage 3 (cached): the answer under ``spec.semantics``.

        The return type is whatever the registered semantics produces
        (see :mod:`repro.api.builtin` for the built-in table).  When
        the planner resolves ``"mc"`` — explicitly or through the
        exact-cost escape hatch — and the semantics has a registered
        MC variant (:mod:`repro.mc.semantics`), the variant runs
        instead of the exact implementation.
        """
        logical = LogicalPlan.from_spec(spec)
        table = self.resolve(spec)
        prefix = self._prefix_for(table, logical)
        physical = self._planner.lower(
            logical,
            prefix,
            table_rows=len(table),
            storage=self._storage_kind(table, logical),
        )
        semantics_op = physical.semantics_op
        assert semantics_op is not None
        pmf: ScorePMF | None = None
        if semantics_op.requires == "pmf":
            pmf = self.distribution(spec)
            source: Any = pmf
        else:
            source = prefix
        # Keyed by *identity*, like the other stages: ScorePMF compares
        # by (scores, probs) only, so value-equal distributions from
        # different tables must not share an answer entry.  The
        # resolved algorithm participates, plus the MC knobs when an
        # MC variant's answer depends on them.
        key = (ByIdentity(source),) + logical.answer_params(
            physical.algorithm
        )
        answer = self._answers.get(key, _MISSING)
        if answer is _MISSING:
            answer = semantics_op.run(prefix, spec, pmf=pmf)
            self._answers.put(key, answer)
        return answer

    def typical(self, spec: QuerySpec, c: int | None = None):
        """Convenience: the c-Typical-Topk answers for ``spec``.

        Reuses the cached PMF across calls with different ``c`` — the
        end-of-Section-4 access pattern.
        """
        changes: dict[str, Any] = {"semantics": "typical"}
        if c is not None:
            changes["c"] = c
        return self.execute(spec.with_(**changes))

    # ------------------------------------------------------------------
    # Batch execution with multi-query fusion
    # ------------------------------------------------------------------
    def _scored_table(
        self, table: UncertainTable, logical: LogicalPlan
    ) -> ScoredTable:
        """The fully scored, rank-ordered table (cached; fusion only).

        Disk-backed tables packed on the request's scorer return the
        lazy rank-ordered view instead: the batch path's scan-depth
        and prefix slicing consume the same surface, so pushdown
        I/O stays bounded by the deepest prefix in the batch.
        """
        from repro.core.distribution import (
            resolve_scorer,
            storage_pushdown_view,
        )

        key = (table, table.version, logical.scorer_key)
        scored = self._scored.get(key)
        if scored is None:
            scored = storage_pushdown_view(table, logical.spec.scorer)
            if scored is None:
                scored = ScoredTable.from_table(
                    table, resolve_scorer(logical.spec.scorer)
                )
            self._scored.put(key, scored)
        return scored

    def _batch_prefix(
        self, table: UncertainTable, logical: LogicalPlan
    ) -> ScoredTable:
        """Stage 1 for the batch path: slice from the shared scored
        table (byte-identical to :func:`prepare_scored_prefix`, which
        sorts then truncates the same way), so one sort serves every
        ``(k, p_tau, depth)`` in the batch."""
        key = self._prefix_key(table, logical)
        prefix = self._prefixes.get(key)
        if prefix is not None:
            return prefix
        spec = logical.spec
        scored = self._scored_table(table, logical)
        depth = spec.depth
        if depth is None:
            depth = (
                scan_depth(scored, spec.k, spec.p_tau)
                if spec.p_tau > 0.0
                else len(scored)
            )
        prefix = scored.prefix(min(depth, len(scored)))
        self._prefixes.put(key, prefix)
        return prefix

    def execute_many(
        self,
        specs: Sequence[QuerySpec],
        *,
        ops: Sequence[BatchOp] | None = None,
        return_exceptions: bool = False,
    ) -> list[Any]:
        """Execute a batch of specs with multi-query plan fusion.

        The batch is handed to the planner, which merges fusable
        exact-DP requests (same table, scorer and line budget; any mix
        of ``k``) into single shared-prefix sweeps; every other
        request runs through the ordinary per-spec path.  Answers are
        byte-identical to per-spec :meth:`execute` calls — fused
        distributions are sliced with
        :func:`repro.core.dp.dp_distribution_sliced`, seeded into the
        stage caches, and consumed by the exact same stage-3 code.

        :param ops: per-spec operation (``"execute"`` default, or
            ``"distribution"`` for the raw PMF).
        :param return_exceptions: per-spec exceptions are returned in
            the result list instead of raised (the service executor's
            isolation mode).
        """
        batch_ops: list[BatchOp] = (
            ["execute"] * len(specs) if ops is None else list(ops)
        )
        if len(batch_ops) != len(specs):
            raise AlgorithmError(
                f"ops length {len(batch_ops)} != specs length {len(specs)}"
            )
        with self._fusion_lock:
            self._fusion["batches"] += 1
        self._fuse_batch(specs, batch_ops)
        results: list[Any] = []
        for spec, op in zip(specs, batch_ops):
            try:
                if op == "distribution":
                    results.append(self.distribution(spec))
                else:
                    results.append(self.execute(spec))
            except Exception as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
        return results

    def _fuse_batch(
        self, specs: Sequence[QuerySpec], ops: Sequence[BatchOp]
    ) -> None:
        """Run fused sweeps for the batch and seed the stage caches.

        Best-effort by design: any planning failure simply leaves the
        caches unseeded and the ordinary per-spec path takes over (so
        fusion can never break an answer — only speed it up).
        """
        candidates: list[FusionCandidate] = []
        seen_pmf_keys: set[Hashable] = set()
        keyed: dict[int, Hashable] = {}
        for index, (spec, op) in enumerate(zip(specs, ops)):
            try:
                logical = LogicalPlan.from_spec(spec)
                needs_pmf = op == "distribution" or logical.requires == "pmf"
                if not needs_pmf:
                    continue
                table = self.resolve(spec)
                prefix = self._batch_prefix(table, logical)
                algorithm = self._planner.resolve_algorithm(
                    spec, len(prefix), me_members=prefix.me_member_count()
                )
                if algorithm != "dp":
                    continue
                pmf_key = (prefix,) + logical.pmf_params(algorithm)
                if self._pmfs.contains(key=pmf_key):
                    continue
                if pmf_key in seen_pmf_keys:
                    continue  # duplicate slice; first one seeds it
                seen_pmf_keys.add(pmf_key)
                keyed[index] = pmf_key
                candidates.append(
                    FusionCandidate(
                        index=index,
                        fusion_key=(
                            ByIdentity(table),
                            logical.scorer_key,
                            spec.max_lines,
                        ),
                        prefix=prefix,
                        k=spec.k,
                        depth=len(prefix),
                        has_me=prefix.me_member_count() > 0,
                        max_lines=spec.max_lines,
                    )
                )
            except Exception:
                continue  # the per-spec path will surface the error
        if not candidates:
            return
        groups = self._planner.fuse(candidates)
        for group in groups:
            self._run_fused(group, keyed)

    def _run_fused(
        self, group: FusionGroup, keyed: Mapping[int, Hashable]
    ) -> None:
        try:
            sliced = group.op.run(group.anchor)
        except Exception:
            return  # fall back to per-spec execution
        by_request = dict(zip(group.op.requests, sliced))
        seeded = 0
        for member in group.members:
            pmf = by_request.get((member.k, member.depth))
            key = keyed.get(member.index)
            if pmf is None or key is None:
                continue
            self._pmfs.put(key, pmf)
            seeded += 1
        with self._fusion_lock:
            self._fusion["groups"] += 1
            self._fusion["fused_specs"] += seeded
            self._fusion["sweeps_saved"] += max(
                0, len(group.op.requests) - 1
            )

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------
    def explain(self, spec: QuerySpec) -> dict[str, Any]:
        """The request's plan as a JSON-ready document.

        Renders the normalized logical plan, the lowered operator tree
        with cost estimates (from the planner's — possibly
        calibrated — cost model), and the predicted cache outcome per
        stage.  Stage 1 (score + rank + truncate) *is* executed when
        not already cached, because the algorithm choice depends on
        the truncated prefix's shape; the expensive stages (DP,
        sampling, semantics) are never run.
        """
        logical = LogicalPlan.from_spec(spec)
        table = self.resolve(spec)
        prefix_key = self._prefix_key(table, logical)
        prefix_hit = self._prefixes.contains(prefix_key)
        prefix = self.scored_prefix(spec)
        physical = self._planner.lower(
            logical,
            prefix,
            table_rows=len(table),
            storage=self._storage_kind(table, logical),
        )
        algorithm = physical.algorithm
        pmf_key = (prefix,) + logical.pmf_params(algorithm)
        pmf = self._pmfs.peek(pmf_key)
        cache: dict[str, str] = {
            "prefix": "hit" if prefix_hit else "miss",
        }
        semantics_op = physical.semantics_op
        if semantics_op is not None and semantics_op.requires == "prefix":
            cache["pmf"] = "not required"
            source: Any = prefix
        else:
            cache["pmf"] = "hit" if pmf is not None else "miss"
            source = pmf
        if source is None:
            cache["answer"] = "miss"
        else:
            answer_key = (ByIdentity(source),) + logical.answer_params(
                algorithm
            )
            cache["answer"] = (
                "hit" if self._answers.contains(answer_key) else "miss"
            )
        model = self._planner.cost_model
        return {
            "spec": logical.describe(),
            "logical": {
                "stages": list(logical.stages()),
                "batch_key": repr(logical.batch_key()),
                "fusion_key": repr(logical.fusion_key()),
            },
            "physical": physical.explain(model),
            "cache": cache,
            "cost_model": {
                "source": model.source,
                "k_combo_max_combinations": model.k_combo_max_combinations,
                "state_expansion_max_depth": model.state_expansion_max_depth,
                "mc_cost_budget": model.mc_cost_budget,
            },
        }

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size counters per pipeline stage."""
        return {
            "scored": self._scored.info(),
            "prefix": self._prefixes.info(),
            "pmf": self._pmfs.info(),
            "answer": self._answers.info(),
        }

    def fusion_info(self) -> dict[str, int]:
        """Multi-query fusion counters (see :meth:`execute_many`)."""
        with self._fusion_lock:
            return dict(self._fusion)

    def clear_cache(self) -> None:
        """Drop every cached stage (counters are kept)."""
        self._scored.clear()
        self._prefixes.clear()
        self._pmfs.clear()
        self._answers.clear()

    def __repr__(self) -> str:
        return (
            f"Session(tables={len(self._catalog.names())}, "
            f"cached_prefixes={len(self._prefixes)}, "
            f"cached_pmfs={len(self._pmfs)})"
        )
