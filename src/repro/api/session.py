"""The :class:`Session`: plan, cache and dispatch top-k requests.

A session wraps a :class:`~repro.query.engine.Catalog` and executes
:class:`~repro.api.spec.QuerySpec` values through the staged pipeline
of :mod:`repro.api.plan`, memoizing every stage in a keyed LRU:

* **prefix cache** — keyed by ``(table, scorer, k, p_tau, depth)``:
  changing only the semantics (or ``c``, ``max_lines``, the
  algorithm) reuses the scored, Theorem-2-truncated prefix;
* **pmf cache** — keyed by the prefix plus ``(algorithm, max_lines,
  p_tau)``: changing only ``c`` (or the answer semantics consuming
  the PMF) reuses the computed :class:`~repro.core.pmf.ScorePMF` —
  the paper's own end-of-Section-4 observation that re-selecting
  typical answers at a new ``c`` costs O(cn), not a re-run of the
  dynamic program;
* **answer cache** — keyed by the consumed stage plus the semantics
  parameters, so hot repeated requests are pure lookups.

Cache keys hold the resolved table (and prefix) *objects*, which are
immutable and hashed by identity: re-registering a name in the catalog
therefore invalidates naturally — the next ``execute`` resolves a
different object and misses.  ``cache_info()`` exposes hit/miss
counters per stage.

Sessions are safe to share across threads: each stage cache holds its
own lock, answers are deterministic pure functions of the cache key,
and the hit/miss counters stay consistent under concurrency — the
property the :mod:`repro.service` batching executor relies on.

>>> from repro.datasets.soldier import soldier_table
>>> from repro.api.spec import QuerySpec
>>> session = Session({"soldiers": soldier_table()})
>>> spec = QuerySpec(table="soldiers", scorer="score", k=2, p_tau=0.0)
>>> [round(a.score) for a in session.execute(spec).answers]
[118, 183, 235]
>>> pmf = session.distribution(spec)          # cached: no recompute
>>> session.execute(spec.with_(c=5)) is not None
True
>>> session.cache_info()["pmf"]["misses"]
1
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Mapping

from repro.api import plan
from repro.api.registry import get_semantics
from repro.api.spec import QuerySpec
from repro.core.pmf import ScorePMF
from repro.exceptions import AlgorithmError
from repro.query.engine import Catalog
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable

#: Default per-stage LRU capacity.
DEFAULT_CACHE_SIZE = 64


class _ByIdentity:
    """Hashable identity wrapper for unhashable key components.

    Holds a strong reference, so the wrapped object cannot be
    collected and its ``id`` recycled while the key is alive.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: Any) -> None:
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ByIdentity) and other.obj is self.obj


def _hashable(value: Any) -> Hashable:
    """``value`` if hashable, else an identity wrapper."""
    try:
        hash(value)
    except TypeError:
        return _ByIdentity(value)
    return value


class _LRU:
    """A small least-recently-used map with hit/miss counters.

    Thread-safe: every operation holds the cache's own lock, so a
    :class:`Session` may be shared across service worker threads.
    Counters stay consistent (``hits + misses`` equals the number of
    ``get`` calls); concurrent misses on one key may each compute and
    ``put`` the value, which is benign because stage computations are
    deterministic pure functions of the key.
    """

    __slots__ = ("maxsize", "hits", "misses", "_data", "_lock")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise AlgorithmError(f"cache size must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def info(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }


#: Sentinel distinguishing "absent" from cached ``None`` answers
#: (U-Topk legitimately returns ``None`` on short prefixes).
_MISSING = object()


class Session:
    """A planning, caching façade over a catalog of uncertain tables.

    :param tables: a :class:`Catalog`, a ``name -> table`` mapping, or
        ``None`` for an empty catalog.
    :param cache_size: per-stage LRU capacity.
    """

    def __init__(
        self,
        tables: Catalog | Mapping[str, UncertainTable] | None = None,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self._catalog = (
            tables if isinstance(tables, Catalog) else Catalog(tables)
        )
        self._prefixes = _LRU(cache_size)
        self._pmfs = _LRU(cache_size)
        self._answers = _LRU(cache_size)

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        """The underlying catalog."""
        return self._catalog

    def register(self, name: str, table: UncertainTable) -> None:
        """Add (or replace) a table; cached stages for a replaced name
        are naturally orphaned because keys hold the old object."""
        self._catalog.register(name, table)

    def tables(self) -> tuple[str, ...]:
        """Registered table names, sorted."""
        return self._catalog.names()

    def resolve(self, spec: QuerySpec) -> UncertainTable:
        """The concrete table a spec refers to."""
        if isinstance(spec.table, UncertainTable):
            return spec.table
        return self._catalog.resolve(spec.table)

    # ------------------------------------------------------------------
    # Staged execution
    # ------------------------------------------------------------------
    def scored_prefix(self, spec: QuerySpec) -> ScoredTable:
        """Stage 1 (cached): the scored, truncated prefix."""
        table = self.resolve(spec)
        key = (table, _hashable(spec.scorer)) + spec.prefix_params()
        prefix = self._prefixes.get(key)
        if prefix is None:
            prefix = plan.scored_prefix_for(table, spec)
            self._prefixes.put(key, prefix)
        return prefix

    def distribution(self, spec: QuerySpec) -> ScorePMF:
        """Stage 2 (cached): the top-k total-score distribution."""
        prefix = self.scored_prefix(spec)
        algorithm = plan.resolve_algorithm(
            spec, len(prefix), me_members=prefix.me_member_count()
        )
        # The sampling knobs only shape MC estimates; exact-algorithm
        # entries stay shared across specs differing in a knob only.
        mc_key = spec.mc_params() if algorithm == "mc" else ()
        key = (prefix, spec.k, algorithm) + spec.pmf_params() + mc_key
        pmf = self._pmfs.get(key)
        if pmf is None:
            pmf = plan.distribution_from_prefix(
                prefix, spec, algorithm=algorithm
            )
            self._pmfs.put(key, pmf)
        return pmf

    def execute(self, spec: QuerySpec) -> Any:
        """Stage 3 (cached): the answer under ``spec.semantics``.

        The return type is whatever the registered semantics produces
        (see :mod:`repro.api.builtin` for the built-in table).  When
        the planner resolves ``"mc"`` — explicitly or through the
        exact-cost escape hatch — and the semantics has a registered
        MC variant (:mod:`repro.mc.semantics`), the variant runs
        instead of the exact implementation.
        """
        prefix = self.scored_prefix(spec)
        algorithm = plan.resolve_algorithm(
            spec, len(prefix), me_members=prefix.me_member_count()
        )
        handler = get_semantics(spec.semantics, algorithm)
        pmf: ScorePMF | None = None
        if handler.requires == "pmf":
            pmf = self.distribution(spec)
            source: Any = pmf
        else:
            source = prefix
        # Keyed by *identity*, like the other stages: ScorePMF compares
        # by (scores, probs) only, so value-equal distributions from
        # different tables must not share an answer entry.  The
        # resolved algorithm participates, plus the MC knobs when an
        # MC variant's answer depends on them.
        key = (
            (_ByIdentity(source), algorithm)
            + spec.semantics_params()
            + (spec.mc_params() if algorithm == "mc" else ())
        )
        answer = self._answers.get(key, _MISSING)
        if answer is _MISSING:
            answer = handler.run(prefix, spec, pmf=pmf)
            self._answers.put(key, answer)
        return answer

    def typical(self, spec: QuerySpec, c: int | None = None):
        """Convenience: the c-Typical-Topk answers for ``spec``.

        Reuses the cached PMF across calls with different ``c`` — the
        end-of-Section-4 access pattern.
        """
        changes: dict[str, Any] = {"semantics": "typical"}
        if c is not None:
            changes["c"] = c
        return self.execute(spec.with_(**changes))

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size counters per pipeline stage."""
        return {
            "prefix": self._prefixes.info(),
            "pmf": self._pmfs.info(),
            "answer": self._answers.info(),
        }

    def clear_cache(self) -> None:
        """Drop every cached stage (counters are kept)."""
        self._prefixes.clear()
        self._pmfs.clear()
        self._answers.clear()

    def __repr__(self) -> str:
        return (
            f"Session(tables={len(self._catalog.names())}, "
            f"cached_prefixes={len(self._prefixes)}, "
            f"cached_pmfs={len(self._pmfs)})"
        )
