"""Scoring functions and the rank-ordered algorithm input.

All algorithms in :mod:`repro.core` and :mod:`repro.semantics` operate
on a :class:`ScoredTable`: the tuples of an uncertain table with their
scores, sorted in the canonical order required by the paper's
algorithms — descending by ``(score, probability)`` (Section 3.4;
probability-descending inside a tie group is what makes Theorem 3
hold), with the stable original order breaking remaining ties.

Scoring functions may be *non-injective* (ties allowed); the sorted
table exposes the resulting *tie groups* (Section 2.3) and the
mutual-exclusion structure in positional form (*lead tuples* and *lead
tuple regions*, Section 3.3.3).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator, NamedTuple, Sequence

import numpy as np

from repro.exceptions import ScoringError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable

#: A scoring function maps an uncertain tuple to a real number.
Scorer = Callable[[UncertainTuple], float]


def attribute_scorer(name: str) -> Scorer:
    """Score tuples by a single numeric attribute.

    >>> s = attribute_scorer("score")
    >>> s(UncertainTuple("t", {"score": 49}, 0.4))
    49.0
    """

    def score(t: UncertainTuple) -> float:
        try:
            return float(t[name])
        except KeyError:
            raise ScoringError(
                f"tuple {t.tid!r} has no attribute {name!r}"
            ) from None
        except (TypeError, ValueError):
            raise ScoringError(
                f"attribute {name!r} of tuple {t.tid!r} is not numeric: "
                f"{t[name]!r}"
            ) from None

    score.__name__ = f"attribute_scorer[{name}]"
    return score


def expression_scorer(expression: str) -> Scorer:
    """Score tuples by an arithmetic expression over their attributes.

    The expression uses the query layer's grammar, e.g.
    ``"speed_limit / (length / delay)"`` — the congestion score of the
    paper's CarTel experiment (Section 5.2).
    """
    # Imported lazily: the query layer depends on this module.
    from repro.query.parser import parse_expression

    node = parse_expression(expression)

    def score(t: UncertainTuple) -> float:
        value = node.evaluate(t)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ScoringError(
                f"expression {expression!r} returned non-numeric "
                f"{value!r} for tuple {t.tid!r}"
            )
        return float(value)

    score.__name__ = f"expression_scorer[{expression}]"
    return score


class ScoredItem(NamedTuple):
    """One scored tuple in canonical rank order.

    :ivar tid: tuple id in the originating table.
    :ivar score: the tuple's score ``s(t)``.
    :ivar prob: membership probability.
    :ivar group: dense ME-group id from the originating table.
    """

    tid: Any
    score: float
    prob: float
    group: int


class ScoredTable:
    """Rank-ordered scored tuples plus positional ME/tie structure.

    Positions are 0-based indices into the canonical sort order
    (descending ``(score, prob)``).  The class pre-computes everything
    the dynamic-programming algorithms need:

    * :meth:`group_positions` — positions of an ME group's members;
    * :meth:`is_lead` — whether the tuple at a position is a *lead
      tuple* (the highest-ranked member of its group);
    * :meth:`lead_regions` — maximal contiguous runs of lead tuples;
    * :meth:`tie_ranges` — maximal runs of equal score (tie groups).
    """

    def __init__(self, items: Sequence[ScoredItem]) -> None:
        self._items = tuple(items)
        self._positions_by_group: dict[int, list[int]] = {}
        for pos, item in enumerate(self._items):
            self._positions_by_group.setdefault(item.group, []).append(pos)
        self._is_lead = [
            self._positions_by_group[item.group][0] == pos
            for pos, item in enumerate(self._items)
        ]
        # Cached numeric columns (read-only): the algorithms and the
        # streaming layer consume scores/probabilities as arrays, so
        # they are materialized once instead of per call.
        self._score_column = np.array(
            [item.score for item in self._items], dtype=np.float64
        )
        self._prob_column = np.array(
            [item.prob for item in self._items], dtype=np.float64
        )
        self._score_column.setflags(write=False)
        self._prob_column.setflags(write=False)
        # Tie structure, precomputed once: tie_range_end() is queried
        # per position by the scan-depth logic, and tie_ranges() /
        # has_ties() by the tie-aware algorithms.
        self._tie_ranges: tuple[tuple[int, int], ...] = tuple(
            self._compute_tie_ranges()
        )
        self._tie_end = [0] * len(self._items)
        for start, end in self._tie_ranges:
            for pos in range(start, end):
                self._tie_end[pos] = end
        self._has_ties = any(
            end - start > 1 for start, end in self._tie_ranges
        )

    def _compute_tie_ranges(self) -> Iterator[tuple[int, int]]:
        i = 0
        n = len(self._items)
        while i < n:
            j = i + 1
            while j < n and self._items[j].score == self._items[i].score:
                j += 1
            yield (i, j)
            i = j

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls, table: UncertainTable, scorer: Scorer
    ) -> "ScoredTable":
        """Score and sort every tuple of ``table``.

        Raises :class:`~repro.exceptions.ScoringError` when the scorer
        returns NaN (NaN scores cannot be ranked).
        """
        items = []
        for t in table:
            s = float(scorer(t))
            if math.isnan(s):
                raise ScoringError(f"score of tuple {t.tid!r} is NaN")
            items.append(
                ScoredItem(t.tid, s, t.probability, table.group_of(t.tid))
            )
        items.sort(key=lambda it: (-it.score, -it.prob))
        return cls(items)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[ScoredItem]:
        return iter(self._items)

    def __getitem__(self, pos: int) -> ScoredItem:
        return self._items[pos]

    @property
    def items(self) -> tuple[ScoredItem, ...]:
        """All items in canonical rank order."""
        return self._items

    def prefix(self, n: int) -> "ScoredTable":
        """The first ``n`` items as a new scored table.

        Groups keep their original ids, so a group may be *reduced* (a
        prefix cuts off low-ranked members) — exactly the truncation
        semantics of Section 3.3.2.
        """
        return ScoredTable(self._items[:n])

    # ------------------------------------------------------------------
    # Scores / probabilities as columns
    # ------------------------------------------------------------------
    @property
    def score_column(self) -> np.ndarray:
        """Scores in rank order as a cached read-only float64 array."""
        return self._score_column

    @property
    def prob_column(self) -> np.ndarray:
        """Probabilities in rank order as a cached read-only array."""
        return self._prob_column

    def scores(self) -> list[float]:
        """Scores in rank order (non-increasing)."""
        return self._score_column.tolist()

    def probabilities(self) -> list[float]:
        """Membership probabilities in rank order."""
        return self._prob_column.tolist()

    def max_top_k_score(self, k: int) -> float:
        """Largest possible top-k total score (sum of the k best)."""
        return float(self._score_column[:k].sum())

    def min_top_k_score(self, k: int) -> float:
        """Smallest possible top-k total score among the scanned items
        (sum of the k worst) — the ``s_min`` of Section 3.2.1."""
        return float(self._score_column[-k:].sum())

    # ------------------------------------------------------------------
    # Mutual-exclusion structure
    # ------------------------------------------------------------------
    def group_positions(self, group: int) -> Sequence[int]:
        """Positions (ascending) of the group's members in this table."""
        return tuple(self._positions_by_group.get(group, ()))

    def groups(self) -> Sequence[int]:
        """Group ids present, in order of their highest-ranked member."""
        seen: dict[int, None] = {}
        for item in self._items:
            seen.setdefault(item.group, None)
        return tuple(seen)

    def is_lead(self, pos: int) -> bool:
        """True when the tuple at ``pos`` is the first of its ME group."""
        return self._is_lead[pos]

    def lead_regions(self) -> list[tuple[int, int]]:
        """Maximal contiguous lead-tuple runs as ``(start, end)`` spans.

        Spans are half-open 0-based ``[start, end)``.  Section 3.3.3:
        one dynamic program per region (instead of per tuple) suffices
        because region tuples behave independently.
        """
        regions: list[tuple[int, int]] = []
        start: int | None = None
        for pos, lead in enumerate(self._is_lead):
            if lead and start is None:
                start = pos
            elif not lead and start is not None:
                regions.append((start, pos))
                start = None
        if start is not None:
            regions.append((start, len(self._items)))
        return regions

    def me_member_count(self) -> int:
        """Number of tuples sharing an ME group with another tuple
        (the ``m`` of the O(kmn) bound in Section 3.3.3)."""
        return sum(
            len(positions)
            for positions in self._positions_by_group.values()
            if len(positions) > 1
        )

    # ------------------------------------------------------------------
    # Tie structure
    # ------------------------------------------------------------------
    def tie_ranges(self) -> list[tuple[int, int]]:
        """Maximal equal-score runs as half-open ``(start, end)`` spans
        (precomputed at construction)."""
        return list(self._tie_ranges)

    def has_ties(self) -> bool:
        """True when the scoring function was non-injective here
        (precomputed at construction)."""
        return self._has_ties

    def tie_range_end(self, pos: int) -> int:
        """End (exclusive) of the tie group containing position ``pos``.

        Used by the scan-depth logic: the scan must stop at a tie-group
        boundary (Section 3.1, remark after Theorem 2).  O(1): the tie
        structure is precomputed at construction.
        """
        return self._tie_end[pos]

    def __repr__(self) -> str:
        return f"ScoredTable(items={len(self._items)})"
