"""Discretizing repeated measurements into ME groups.

The paper's CarTel preprocessing (Section 5.2) turns a road segment's
repeated delay measurements into a discrete distribution: "we bin the
samples and collect the statistics of the frequencies of the bins and
obtain a discrete distribution, in which each bin is assigned a value
that is the average of the samples within the bin.  Bins in a
distribution are mutually exclusive."

This module generalizes that preprocessing into reusable strategies:

* :func:`equal_width_bins` — the paper's strategy;
* :func:`equal_depth_bins` — quantile bins (equal sample counts);
* :func:`k_medians_bins` — optimal 1-D k-medians binning, reusing the
  c-Typical-Topk dynamic program of Section 4 (the two problems are
  the same: pick c representative values minimizing expected absolute
  deviation);
* :func:`measurements_to_table` — apply a strategy per entity and
  build the uncertain table with one ME group per entity.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, NamedTuple, Sequence

import numpy as np

from repro.core.pmf import ScorePMF
from repro.core.typical import select_typical
from repro.exceptions import DatasetError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable


class Bin(NamedTuple):
    """One discretized outcome.

    :ivar value: representative value (bin mean or median).
    :ivar probability: relative sample frequency.
    """

    value: float
    probability: float


#: A binning strategy maps raw samples to bins.
BinningStrategy = Callable[[Sequence[float], int], list[Bin]]


def _validate(samples: Sequence[float], bins: int) -> np.ndarray:
    if bins < 1:
        raise DatasetError(f"bins must be >= 1, got {bins}")
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise DatasetError("cannot bin an empty sample list")
    if np.isnan(values).any():
        raise DatasetError("samples contain NaN")
    return values


def equal_width_bins(samples: Sequence[float], bins: int) -> list[Bin]:
    """The paper's strategy: equi-width bins over the sample range.

    Empty bins are dropped; the bin value is the mean of its samples.

    >>> equal_width_bins([1.0, 2.0, 9.0, 10.0], 2)
    [Bin(value=1.5, probability=0.5), Bin(value=9.5, probability=0.5)]
    """
    values = _validate(samples, bins)
    if values.min() == values.max() or bins == 1:
        return [Bin(float(values.mean()), 1.0)]
    edges = np.linspace(values.min(), values.max(), bins + 1)
    indices = np.clip(np.digitize(values, edges[1:-1]), 0, bins - 1)
    out: list[Bin] = []
    for b in range(bins):
        mask = indices == b
        count = int(mask.sum())
        if count:
            out.append(
                Bin(float(values[mask].mean()), count / values.size)
            )
    return out


def equal_depth_bins(samples: Sequence[float], bins: int) -> list[Bin]:
    """Quantile bins: (roughly) the same number of samples per bin.

    More robust than equal width under heavy-tailed measurements —
    a single outlier cannot hog ``bins - 1`` empty bins.
    """
    values = np.sort(_validate(samples, bins))
    if values[0] == values[-1] or bins == 1:
        return [Bin(float(values.mean()), 1.0)]
    splits = np.array_split(values, min(bins, values.size))
    merged: dict[float, int] = {}
    for chunk in splits:
        if chunk.size == 0:
            continue
        value = float(chunk.mean())
        merged[value] = merged.get(value, 0) + int(chunk.size)
    return [
        Bin(value, count / values.size)
        for value, count in sorted(merged.items())
    ]


def k_medians_bins(samples: Sequence[float], bins: int) -> list[Bin]:
    """Optimal 1-D k-medians binning via the Section-4 dynamic program.

    Choosing ``bins`` representative values that minimize the expected
    absolute deviation of a random sample is *exactly* the
    c-Typical-Topk optimization (Definition 1) applied to the sample
    distribution — so we reuse :func:`repro.core.typical.select_typical`
    and assign each sample to its nearest representative.
    """
    values = _validate(samples, bins)
    unique, counts = np.unique(values, return_counts=True)
    pmf = ScorePMF(
        (float(v), float(c) / values.size, None)
        for v, c in zip(unique, counts)
    )
    result = select_typical(pmf, min(bins, len(pmf)))
    anchors = np.array([answer.score for answer in result.answers])
    nearest = np.abs(values[:, None] - anchors[None, :]).argmin(axis=1)
    out: list[Bin] = []
    for index in range(len(anchors)):
        mask = nearest == index
        count = int(mask.sum())
        if count:
            out.append(
                Bin(float(values[mask].mean()), count / values.size)
            )
    return out


#: Strategy registry for CLI/config-driven use.
STRATEGIES: dict[str, BinningStrategy] = {
    "equal_width": equal_width_bins,
    "equal_depth": equal_depth_bins,
    "k_medians": k_medians_bins,
}


def measurements_to_table(
    measurements: Mapping[Any, Sequence[float]],
    *,
    bins: int = 4,
    strategy: str | BinningStrategy = "equal_width",
    value_attribute: str = "value",
    entity_attribute: str = "entity",
    extra_attributes: Mapping[Any, Mapping[str, Any]] | None = None,
    name: str = "measurements",
) -> UncertainTable:
    """Bin per-entity samples into an uncertain table.

    Each entity's non-empty bins become tuples in one ME group (bin
    probabilities sum to 1, so the group is saturated: some outcome is
    always true — exactly the paper's CarTel setup).

    :param measurements: entity -> raw samples.
    :param bins: bin budget per entity.
    :param strategy: name from :data:`STRATEGIES` or a callable.
    :param value_attribute: attribute name for the bin value.
    :param entity_attribute: attribute name for the entity key.
    :param extra_attributes: optional per-entity constant attributes
        copied onto each of the entity's tuples.
    :param name: table name.
    """
    if isinstance(strategy, str):
        try:
            strategy_fn = STRATEGIES[strategy]
        except KeyError:
            raise DatasetError(
                f"unknown binning strategy {strategy!r}; "
                f"known: {sorted(STRATEGIES)}"
            ) from None
    else:
        strategy_fn = strategy
    extras = extra_attributes or {}
    tuples: list[UncertainTuple] = []
    rules: list[tuple[str, ...]] = []
    for entity, samples in measurements.items():
        produced = strategy_fn(samples, bins)
        total = sum(b.probability for b in produced)
        if abs(total - 1.0) > 1e-9:
            raise DatasetError(
                f"strategy returned probabilities summing to {total!r} "
                f"for entity {entity!r}"
            )
        members: list[str] = []
        for index, b in enumerate(produced):
            tid = f"{entity}#{index}"
            attributes = {
                entity_attribute: entity,
                value_attribute: b.value,
            }
            attributes.update(extras.get(entity, {}))
            tuples.append(UncertainTuple(tid, attributes, b.probability))
            members.append(tid)
        if len(members) > 1:
            rules.append(tuple(members))
    return UncertainTable(tuples, rules, name=name)
