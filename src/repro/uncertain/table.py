"""The uncertain table (x-relation) with mutual-exclusion rules.

An :class:`UncertainTable` holds :class:`~repro.uncertain.model.UncertainTuple`
rows plus a set of *mutual exclusion rules*.  Each rule names a set of
tuples (an *ME group*) of which at most one can appear in a possible
world; the probabilities inside one group must sum to at most 1
(Section 2.1 of the paper).  Tuples not named by any rule form implicit
singleton groups.  Groups are independent of each other.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import DataModelError, MutualExclusionError
from repro.uncertain.model import PROBABILITY_EPSILON, UncertainTuple

#: Tolerance for the "group mass <= 1" constraint.
GROUP_MASS_EPSILON = 1e-9


class UncertainTable:
    """An uncertain relation: tuples + mutual-exclusion rules.

    :param tuples: the uncertain tuples; tids must be unique.
    :param rules: iterable of tid collections, each naming one ME group.
        Groups must be disjoint, reference existing tids, contain at
        least two tuples (singletons are implicit), and have total
        probability mass at most 1.
    :param name: optional table name (used by the query layer).

    >>> t = UncertainTable(
    ...     [UncertainTuple("a", {"x": 1}, 0.5),
    ...      UncertainTuple("b", {"x": 2}, 0.5)],
    ...     rules=[("a", "b")],
    ... )
    >>> t.group_of("a") == t.group_of("b")
    True
    """

    def __init__(
        self,
        tuples: Iterable[UncertainTuple],
        rules: Iterable[Sequence[Any]] = (),
        *,
        name: str = "uncertain",
    ) -> None:
        self._version: int = getattr(self, "_version", 0)
        self._tuples: list[UncertainTuple] = list(tuples)
        self._name = name
        self._by_tid: dict[Any, UncertainTuple] = {}
        for t in self._tuples:
            if t.tid in self._by_tid:
                raise DataModelError(f"duplicate tuple id {t.tid!r}")
            self._by_tid[t.tid] = t

        # Group ids are dense integers; explicit rules first, then
        # implicit singletons in table order.
        self._group_of: dict[Any, int] = {}
        self._groups: list[tuple[Any, ...]] = []
        for rule in rules:
            members = tuple(rule)
            if len(members) < 2:
                raise MutualExclusionError(
                    f"ME rule {members!r} must name at least two tuples"
                )
            gid = len(self._groups)
            mass = 0.0
            for tid in members:
                if tid not in self._by_tid:
                    raise MutualExclusionError(
                        f"ME rule references unknown tuple id {tid!r}"
                    )
                if tid in self._group_of:
                    raise MutualExclusionError(
                        f"tuple id {tid!r} appears in more than one ME rule"
                    )
                self._group_of[tid] = gid
                mass += self._by_tid[tid].probability
            if mass > 1.0 + GROUP_MASS_EPSILON:
                raise MutualExclusionError(
                    f"ME rule {members!r} has total probability {mass:.6f} > 1"
                )
            self._groups.append(members)
        for t in self._tuples:
            if t.tid not in self._group_of:
                gid = len(self._groups)
                self._group_of[t.tid] = gid
                self._groups.append((t.tid,))

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The table name (used by the query layer)."""
        return self._name

    @property
    def version(self) -> int:
        """Monotonic data version; 0 for immutable tables.

        Mutable subclasses (:class:`repro.standing.changelog.
        MutableUncertainTable`) bump it on every in-place mutation.
        The :class:`~repro.api.session.Session` keys every cached
        stage by ``(table, table.version, ...)``, so a bumped version
        can never be served a stale prefix/PMF/answer entry.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[UncertainTuple]:
        return iter(self._tuples)

    def __getitem__(self, tid: Any) -> UncertainTuple:
        return self._by_tid[tid]

    def __contains__(self, tid: Any) -> bool:
        return tid in self._by_tid

    @property
    def tuples(self) -> Sequence[UncertainTuple]:
        """The tuples, in insertion order."""
        return tuple(self._tuples)

    @property
    def tids(self) -> Sequence[Any]:
        """Tuple ids, in insertion order."""
        return tuple(t.tid for t in self._tuples)

    # ------------------------------------------------------------------
    # Mutual exclusion structure
    # ------------------------------------------------------------------
    @property
    def groups(self) -> Sequence[tuple[Any, ...]]:
        """All ME groups (explicit rules first, singletons after)."""
        return tuple(self._groups)

    @property
    def explicit_rules(self) -> Sequence[tuple[Any, ...]]:
        """Only the explicit multi-tuple ME rules."""
        return tuple(g for g in self._groups if len(g) > 1)

    def group_of(self, tid: Any) -> int:
        """The dense integer group id of tuple ``tid``."""
        return self._group_of[tid]

    def group_members(self, gid: int) -> tuple[Any, ...]:
        """The tids belonging to group ``gid``."""
        return self._groups[gid]

    def group_mass(self, gid: int) -> float:
        """Total membership probability of the group (<= 1)."""
        return sum(self._by_tid[tid].probability for tid in self._groups[gid])

    def me_tuple_fraction(self) -> float:
        """Fraction of tuples that are mutually exclusive with others.

        This is the quantity varied in Figure 11 of the paper.
        """
        if not self._tuples:
            return 0.0
        in_rules = sum(len(g) for g in self._groups if len(g) > 1)
        return in_rules / len(self._tuples)

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def subset(self, tids: Iterable[Any], *, name: str | None = None) -> "UncertainTable":
        """A new table restricted to ``tids``; ME rules are reduced.

        Rules that retain at least two members survive (with their
        remaining members); rules reduced to 0/1 member disappear.
        """
        keep = set(tids)
        unknown = keep - set(self._by_tid)
        if unknown:
            raise DataModelError(f"unknown tuple ids in subset: {sorted(map(repr, unknown))}")
        tuples = [t for t in self._tuples if t.tid in keep]
        rules = []
        for g in self._groups:
            reduced = tuple(tid for tid in g if tid in keep)
            if len(reduced) >= 2:
                rules.append(reduced)
        return UncertainTable(tuples, rules, name=name or self._name)

    def map_attributes(
        self, fn, *, name: str | None = None
    ) -> "UncertainTable":
        """Apply ``fn(tuple) -> Mapping`` to every tuple's attributes."""
        tuples = [
            UncertainTuple(t.tid, fn(t), t.probability) for t in self._tuples
        ]
        rules = [g for g in self._groups if len(g) > 1]
        return UncertainTable(tuples, rules, name=name or self._name)

    def attribute_names(self) -> tuple[str, ...]:
        """Union of attribute names across tuples, in first-seen order."""
        seen: dict[str, None] = {}
        for t in self._tuples:
            for key in t.attributes:
                seen.setdefault(key, None)
        return tuple(seen)

    def total_expected_tuples(self) -> float:
        """Expected number of existing tuples (sum of probabilities)."""
        return sum(t.probability for t in self._tuples)

    def validate(self) -> None:
        """Re-check all invariants; raises on violation.

        Construction already validates, but generators that mutate
        tuples in place may call this as a final sanity pass.
        """
        for g in self._groups:
            mass = self.group_mass(self.group_of(g[0]))
            if mass > 1.0 + GROUP_MASS_EPSILON:
                raise MutualExclusionError(
                    f"group {g!r} has probability mass {mass:.6f} > 1"
                )
        for t in self._tuples:
            if not (0.0 < t.probability <= 1.0 + PROBABILITY_EPSILON):
                raise DataModelError(
                    f"tuple {t.tid!r} has invalid probability {t.probability}"
                )

    def __repr__(self) -> str:
        n_rules = len(self.explicit_rules)
        return (
            f"UncertainTable(name={self._name!r}, tuples={len(self._tuples)}, "
            f"rules={n_rules})"
        )


def table_from_rows(
    rows: Iterable[Mapping[str, Any]],
    *,
    probability_key: str = "probability",
    tid_key: str | None = None,
    group_key: str | None = None,
    name: str = "uncertain",
) -> UncertainTable:
    """Build an :class:`UncertainTable` from plain dict rows.

    :param rows: mappings; one becomes one tuple.
    :param probability_key: key holding the membership probability
        (removed from the attributes).
    :param tid_key: key holding the tuple id; when ``None`` sequential
        integer ids are assigned.
    :param group_key: optional key holding an ME-group label; rows that
        share a label (other than ``None``) become one ME group.
    :param name: table name.
    """
    tuples: list[UncertainTuple] = []
    groups: dict[Any, list[Any]] = {}
    for index, row in enumerate(rows):
        attrs = dict(row)
        try:
            prob = attrs.pop(probability_key)
        except KeyError:
            raise DataModelError(
                f"row {index} is missing probability key {probability_key!r}"
            ) from None
        tid = attrs.pop(tid_key) if tid_key else index
        label = attrs.pop(group_key, None) if group_key else None
        tuples.append(UncertainTuple(tid, attrs, prob))
        if label is not None:
            groups.setdefault(label, []).append(tid)
    rules = [tuple(members) for members in groups.values() if len(members) > 1]
    return UncertainTable(tuples, rules, name=name)
