"""Probabilistic-relation substrate.

This subpackage implements the tuple-level uncertain data model of the
paper (Section 2.1): tables whose tuples carry a membership probability
and may participate in *mutual exclusion* (ME) rules, the possible-
worlds semantics used throughout the paper, and scoring functions
(including non-injective ones, i.e. ties).

Public entry points:

* :class:`~repro.uncertain.model.UncertainTuple` — one uncertain tuple.
* :class:`~repro.uncertain.table.UncertainTable` — an x-relation.
* :class:`~repro.uncertain.scoring.ScoredTable` — the canonical,
  rank-ordered algorithm input produced by applying a scoring function.
* :mod:`~repro.uncertain.worlds` — exact possible-world enumeration.
* :mod:`~repro.uncertain.sampling` — Monte-Carlo world sampling.
"""

from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable
from repro.uncertain.scoring import (
    ScoredItem,
    ScoredTable,
    attribute_scorer,
    expression_scorer,
)
from repro.uncertain.worlds import (
    PossibleWorld,
    enumerate_worlds,
    world_count,
    top_k_of_world,
    top_k_vectors_of_world,
    score_distribution_by_enumeration,
)
from repro.uncertain.sampling import WorldSampler, sample_score_distribution
from repro.uncertain.discretize import (
    Bin,
    equal_depth_bins,
    equal_width_bins,
    k_medians_bins,
    measurements_to_table,
)

__all__ = [
    "UncertainTuple",
    "UncertainTable",
    "ScoredItem",
    "ScoredTable",
    "attribute_scorer",
    "expression_scorer",
    "PossibleWorld",
    "enumerate_worlds",
    "world_count",
    "top_k_of_world",
    "top_k_vectors_of_world",
    "score_distribution_by_enumeration",
    "WorldSampler",
    "sample_score_distribution",
    "Bin",
    "equal_width_bins",
    "equal_depth_bins",
    "k_medians_bins",
    "measurements_to_table",
]
