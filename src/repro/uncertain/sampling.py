"""Monte-Carlo possible-world sampling.

For tables too large to enumerate, :class:`WorldSampler` draws worlds
i.i.d. from the possible-worlds distribution.  The sampled top-k score
histogram converges to the exact distribution computed by
:mod:`repro.core`; integration tests use this as an independent,
randomized cross-check of the dynamic-programming algorithms at sizes
where exact enumeration is infeasible.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable, Scorer
from repro.uncertain.table import UncertainTable
from repro.uncertain.worlds import top_k_of_world


class WorldSampler:
    """Draws possible worlds from an uncertain table.

    Each ME group is an independent categorical distribution over its
    members plus the empty outcome.  Sampling one world costs
    O(#groups).

    :param table: the uncertain table.
    :param seed: seed or :class:`numpy.random.Generator` for
        reproducible sampling.
    """

    def __init__(
        self, table: UncertainTable, seed: int | np.random.Generator | None = None
    ) -> None:
        self._table = table
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        # Pre-compute, per group, the member tids and the cumulative
        # probability vector (last entry < 1 leaves room for "none").
        self._group_tids: list[tuple[Any, ...]] = []
        self._group_cumprobs: list[np.ndarray] = []
        for members in table.groups:
            probs = np.array(
                [table[tid].probability for tid in members], dtype=float
            )
            self._group_tids.append(tuple(members))
            self._group_cumprobs.append(np.cumsum(probs))

    @property
    def table(self) -> UncertainTable:
        """The table being sampled."""
        return self._table

    def sample_world(self) -> frozenset:
        """Draw one possible world (set of existing tuple ids)."""
        tids = []
        draws = self._rng.random(len(self._group_tids))
        for members, cum, u in zip(
            self._group_tids, self._group_cumprobs, draws
        ):
            index = int(np.searchsorted(cum, u, side="right"))
            if index < len(members):
                tids.append(members[index])
        return frozenset(tids)

    def sample_worlds(self, count: int) -> Iterator[frozenset]:
        """Yield ``count`` independent worlds."""
        for _ in range(count):
            yield self.sample_world()


def sample_score_distribution(
    table: UncertainTable,
    scorer: Scorer,
    k: int,
    samples: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> dict[float, float]:
    """Monte-Carlo estimate of the top-k total-score distribution.

    Worlds with fewer than ``k`` tuples are skipped (matching the
    convention of the exact algorithms), so the returned masses sum to
    the empirical probability of having at least ``k`` tuples.

    :returns: mapping ``total score -> estimated probability``.
    """
    if samples <= 0:
        raise AlgorithmError(f"samples must be positive, got {samples}")
    scored = ScoredTable.from_table(table, scorer)
    sampler = WorldSampler(table, seed)
    counts: dict[float, int] = {}
    for world in sampler.sample_worlds(samples):
        total = top_k_of_world(scored, world, k)
        if total is None:
            continue
        counts[total] = counts.get(total, 0) + 1
    return {score: n / samples for score, n in counts.items()}
