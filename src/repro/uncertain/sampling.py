"""Monte-Carlo possible-world sampling.

For tables too large to enumerate, :class:`WorldSampler` draws worlds
i.i.d. from the possible-worlds distribution.  The sampled top-k score
histogram converges to the exact distribution computed by
:mod:`repro.core`; integration tests use this as an independent,
randomized cross-check of the dynamic-programming algorithms at sizes
where exact enumeration is infeasible.

Since the Monte-Carlo answer engine landed, this module is a thin
iterator-API wrapper over the *batched* sampler
(:class:`repro.mc.sampler.BatchWorldSampler`): worlds are drawn as
vectorized (chunk × groups) categorical draws and buffered, instead of
one Python-level categorical loop per world.  Draws for a given seed
are deterministic but **not byte-identical** to the pre-batched
implementation (the uniforms are consumed in a different order);
statistical equivalence is what is promised — and tested.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable, Scorer
from repro.uncertain.table import UncertainTable

#: Buffered-chunk bounds of the iterator API: the first refill is
#: small (a caller wanting one world of a wide table should not pay
#: for 1024), then chunks grow geometrically toward the cap.
_CHUNK_START = 16
_CHUNK_MAX = 1024


class WorldSampler:
    """Draws possible worlds from an uncertain table.

    Each ME group is an independent categorical distribution over its
    members plus the empty outcome.  Worlds are drawn in vectorized
    chunks (growing from :data:`_CHUNK_START` to :data:`_CHUNK_MAX`)
    and handed out one at a time, so the amortized per-world cost is a
    few numpy operations over the chunk rather than O(#groups) Python
    work, while a single draw stays cheap on wide tables.

    :param table: the uncertain table.
    :param seed: seed or :class:`numpy.random.Generator` for
        reproducible sampling.
    """

    def __init__(
        self, table: UncertainTable, seed: int | np.random.Generator | None = None
    ) -> None:
        # Imported lazily: repro.mc builds on this package.
        from repro.mc.sampler import BatchWorldSampler

        self._table = table
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._batch = BatchWorldSampler.from_table(table, self._rng)
        self._buffer: list[frozenset] = []
        self._chunk = _CHUNK_START

    @property
    def table(self) -> UncertainTable:
        """The table being sampled."""
        return self._table

    def sample_world(self) -> frozenset:
        """Draw one possible world (set of existing tuple ids)."""
        if not self._buffer:
            exists = self._batch.sample(self._chunk)
            self._chunk = min(self._chunk * 2, _CHUNK_MAX)
            # Reversed so pop() hands worlds out in draw order.
            self._buffer = self._batch.world_sets(exists)[::-1]
        return self._buffer.pop()

    def sample_worlds(self, count: int) -> Iterator[frozenset]:
        """Yield ``count`` independent worlds."""
        for _ in range(count):
            yield self.sample_world()

    def sample_existence(self, count: int) -> np.ndarray:
        """Draw ``count`` worlds at once as a boolean existence matrix.

        Columns follow the table's tuple order (``table.tids``).  This
        is the fast path the Monte-Carlo engine uses; the iterator API
        above is sugar over it.
        """
        return self._batch.sample(count)


def sample_score_distribution(
    table: UncertainTable,
    scorer: Scorer,
    k: int,
    samples: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> dict[float, float]:
    """Monte-Carlo estimate of the top-k total-score distribution.

    Worlds with fewer than ``k`` tuples are skipped (matching the
    convention of the exact algorithms), so the returned masses sum to
    the empirical probability of having at least ``k`` tuples.

    A thin wrapper over :class:`repro.mc.engine.MCEngine` with a fixed
    sample count — one batched pass, no per-world Python loop.

    :returns: mapping ``total score -> estimated probability``.
    """
    if samples <= 0:
        raise AlgorithmError(f"samples must be positive, got {samples}")
    from repro.mc.engine import MCEngine

    scored = ScoredTable.from_table(table, scorer)
    engine = MCEngine(scored, k, samples=samples, seed=seed).run()
    return engine.distribution().to_dict()
