"""Exact possible-worlds semantics (the test oracle).

A *possible world* is obtained by letting every ME group independently
produce either one of its members (with that member's probability) or
nothing (with probability ``1 - group mass``).  The probability of a
world is the product of its groups' outcomes (Section 2.1; Figure 2 of
the paper shows the 18 worlds of the motivating example).

Enumeration is exponential in the number of groups and is intended for
small inputs: verifying the dynamic-programming algorithms, unit tests,
and pedagogical examples.  The production path is :mod:`repro.core`.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, NamedTuple, Sequence

from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable, Scorer
from repro.uncertain.table import UncertainTable

#: Group outcomes with probability below this threshold are dropped
#: (e.g. the "no member" outcome of a fully saturated ME group).
_NEGLIGIBLE = 1e-12


class PossibleWorld(NamedTuple):
    """One possible world: the set of existing tuple ids + probability."""

    tids: frozenset
    probability: float


def world_count(table: UncertainTable) -> int:
    """Number of possible worlds with non-zero probability.

    Each group contributes ``len(group)`` member outcomes plus the
    empty outcome when its mass is below 1.
    """
    count = 1
    for gid, members in enumerate(table.groups):
        outcomes = len(members)
        if 1.0 - table.group_mass(gid) > _NEGLIGIBLE:
            outcomes += 1
        count *= outcomes
    return count


def enumerate_worlds(table: UncertainTable) -> Iterator[PossibleWorld]:
    """Yield every possible world of ``table`` with its probability.

    The sum of the yielded probabilities is 1 (up to the negligible
    outcomes dropped for saturated groups).
    """
    group_outcomes: list[list[tuple[Any, float]]] = []
    for gid, members in enumerate(table.groups):
        outcomes: list[tuple[Any, float]] = [
            (tid, table[tid].probability) for tid in members
        ]
        none_prob = 1.0 - table.group_mass(gid)
        if none_prob > _NEGLIGIBLE:
            outcomes.append((None, none_prob))
        group_outcomes.append(outcomes)

    for combo in itertools.product(*group_outcomes):
        prob = 1.0
        tids = []
        for tid, p in combo:
            prob *= p
            if tid is not None:
                tids.append(tid)
        yield PossibleWorld(frozenset(tids), prob)


def _existing_in_rank_order(
    scored: ScoredTable, world: frozenset
) -> list[int]:
    """Positions of the world's tuples, in canonical rank order."""
    return [pos for pos, item in enumerate(scored) if item.tid in world]


def top_k_of_world(
    scored: ScoredTable, world: frozenset, k: int
) -> float | None:
    """Total score of the top-k of a world, or ``None`` if < k tuples.

    With ties there can be several top-k tuple vectors, but they all
    share the same total score (Section 2.3), so the score is well
    defined.
    """
    if k <= 0:
        raise AlgorithmError(f"k must be positive, got {k}")
    existing = _existing_in_rank_order(scored, world)
    if len(existing) < k:
        return None
    return sum(scored[pos].score for pos in existing[:k])


def top_k_vectors_of_world(
    scored: ScoredTable, world: frozenset, k: int
) -> list[tuple[Any, ...]]:
    """All top-k tuple vectors of a world (multiple only under ties).

    Implements Theorem 1: every vector contains the same fully
    contained tie groups and partially reaches at most one tie group
    ``g``, contributing the same number ``m`` of tuples, giving
    ``C(|g|, m)`` vectors.  Vectors are tuples of tids in rank order.
    """
    if k <= 0:
        raise AlgorithmError(f"k must be positive, got {k}")
    existing = _existing_in_rank_order(scored, world)
    if len(existing) < k:
        return []
    head = existing[:k]
    boundary_score = scored[head[-1]].score
    # Tuples strictly above the boundary tie group are in every vector.
    fixed = [pos for pos in head if scored[pos].score != boundary_score]
    # The boundary tie group inside this world:
    tie_members = [
        pos for pos in existing if scored[pos].score == boundary_score
    ]
    m = k - len(fixed)
    if m == len(tie_members):
        return [tuple(scored[pos].tid for pos in sorted(fixed + tie_members))]
    vectors = []
    for chosen in itertools.combinations(tie_members, m):
        positions = sorted(fixed + list(chosen))
        vectors.append(tuple(scored[pos].tid for pos in positions))
    return vectors


def score_distribution_by_enumeration(
    table: UncertainTable,
    scorer: Scorer,
    k: int,
) -> tuple[dict[float, float], dict[float, tuple[tuple[Any, ...], float]]]:
    """Exact top-k score distribution + best vector per score.

    Returns ``(pmf, best_vectors)`` where ``pmf`` maps each achievable
    total score to its probability (over worlds with at least ``k``
    tuples), and ``best_vectors`` maps each score to
    ``(vector, probability)`` — the most probable tuple vector among
    those attaining the score, with its probability of being *a* top-k
    vector.

    This is the ground-truth oracle for all Section 3 algorithms.
    """
    scored = ScoredTable.from_table(table, scorer)
    pmf: dict[float, float] = {}
    vector_prob: dict[float, dict[tuple[Any, ...], float]] = {}
    for world in enumerate_worlds(table):
        total = top_k_of_world(scored, world.tids, k)
        if total is None:
            continue
        pmf[total] = pmf.get(total, 0.0) + world.probability
        per_score = vector_prob.setdefault(total, {})
        for vector in top_k_vectors_of_world(scored, world.tids, k):
            per_score[vector] = per_score.get(vector, 0.0) + world.probability
    best_vectors = {
        score: max(candidates.items(), key=lambda item: item[1])
        for score, candidates in vector_prob.items()
    }
    return pmf, best_vectors


def vector_probability(
    table: UncertainTable,
    scorer: Scorer,
    vector: Sequence[Any],
) -> float:
    """Probability that ``vector`` is a top-k vector (k = len(vector)).

    Brute force over all worlds; oracle for the closed-form computation
    in :mod:`repro.semantics.u_topk`.
    """
    scored = ScoredTable.from_table(table, scorer)
    k = len(vector)
    target = tuple(sorted(vector, key=lambda tid: str(tid)))
    prob = 0.0
    for world in enumerate_worlds(table):
        for candidate in top_k_vectors_of_world(scored, world.tids, k):
            if tuple(sorted(candidate, key=lambda tid: str(tid))) == target:
                prob += world.probability
                break
    return prob
