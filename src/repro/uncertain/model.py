"""Core data-model objects: the uncertain tuple.

The paper's data model (Section 2.1) is the widely used tuple
independent/disjoint model from the probabilistic-database literature:
each tuple carries a *membership probability* ``p`` with ``0 < p <= 1``
and may belong to a *mutual exclusion* (ME) group, of which at most one
member appears in any possible world.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Iterator, Mapping

from repro.exceptions import InvalidProbabilityError

#: Tolerance used when validating probabilities and group masses.  The
#: generators in :mod:`repro.datasets` produce probabilities via floating
#: point arithmetic; tiny overshoots above 1 are clamped rather than
#: rejected.
PROBABILITY_EPSILON = 1e-9


def validate_probability(value: float, *, context: str = "tuple") -> float:
    """Validate a membership probability, returning it as ``float``.

    Values within :data:`PROBABILITY_EPSILON` above 1 are clamped to 1;
    anything else outside ``(0, 1]`` raises
    :class:`~repro.exceptions.InvalidProbabilityError`.

    :param value: candidate probability.
    :param context: short label used in the error message.
    """
    p = float(value)
    if p != p:  # NaN check without importing math
        raise InvalidProbabilityError(f"{context}: probability is NaN")
    if p > 1.0:
        if p <= 1.0 + PROBABILITY_EPSILON:
            return 1.0
        raise InvalidProbabilityError(f"{context}: probability {p!r} > 1")
    if p <= 0.0:
        raise InvalidProbabilityError(f"{context}: probability {p!r} <= 0")
    return p


class UncertainTuple:
    """A single uncertain tuple: attributes plus a membership probability.

    Instances are immutable and hashable; identity is carried by ``tid``
    (the tuple identifier, unique within a table).  Attribute values are
    exposed both through :meth:`__getitem__` and the read-only
    :attr:`attributes` mapping.

    >>> t = UncertainTuple("T1", {"soldier": 1, "score": 49}, 0.4)
    >>> t["score"]
    49
    >>> t.probability
    0.4
    """

    __slots__ = ("_tid", "_attributes", "_probability")

    def __init__(
        self,
        tid: Any,
        attributes: Mapping[str, Any],
        probability: float,
    ) -> None:
        self._tid = tid
        self._attributes = MappingProxyType(dict(attributes))
        self._probability = validate_probability(
            probability, context=f"tuple {tid!r}"
        )

    @property
    def tid(self) -> Any:
        """The tuple identifier (unique within its table)."""
        return self._tid

    @property
    def attributes(self) -> Mapping[str, Any]:
        """Read-only view of the attribute mapping."""
        return self._attributes

    @property
    def probability(self) -> float:
        """Membership probability ``p`` with ``0 < p <= 1``."""
        return self._probability

    def __getitem__(self, name: str) -> Any:
        return self._attributes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def get(self, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` or ``default`` when missing."""
        return self._attributes.get(name, default)

    def keys(self) -> Iterator[str]:
        """Iterate over attribute names."""
        return iter(self._attributes.keys())

    def with_probability(self, probability: float) -> "UncertainTuple":
        """Return a copy of this tuple with a different probability."""
        return UncertainTuple(self._tid, self._attributes, probability)

    def with_attributes(self, **updates: Any) -> "UncertainTuple":
        """Return a copy with some attribute values replaced or added."""
        merged = dict(self._attributes)
        merged.update(updates)
        return UncertainTuple(self._tid, merged, self._probability)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainTuple):
            return NotImplemented
        return (
            self._tid == other._tid
            and self._probability == other._probability
            and dict(self._attributes) == dict(other._attributes)
        )

    def __hash__(self) -> int:
        return hash((self._tid, self._probability))

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in self._attributes.items())
        return (
            f"UncertainTuple({self._tid!r}, {{{attrs}}}, "
            f"p={self._probability:g})"
        )
