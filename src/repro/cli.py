"""Command-line interface.

Usage (``python -m repro <command> ...``)::

    repro distribution table.csv --score score -k 5 --histogram 12
    repro typical table.csv --score score -k 5 -c 3
    repro answer table.csv --score score -k 5 --semantics pt_k --threshold 0.4
    repro answer table.csv --score score -k 5 --semantics typical \\
        --algorithm mc --epsilon 0.005 --confidence 0.99
    repro query "SELECT * FROM t ORDER BY score DESC LIMIT 3" --table t=table.csv
    repro generate cartel --out area.csv --seed 11 --segments 100
    repro pack table.csv --out packed/       # out-of-core scored table
    repro answer packed/ --score score -k 5  # served by prefix pushdown
    repro figures fig03 fig09
    repro bench --json                  # writes BENCH_core.json
    repro bench --tiny --check BENCH_core.json   # CI perf smoke
    repro serve --table demo=synthetic:tuples=400,me=0.9 --port 8000
    repro serve --table demo=... --data-dir state/   # durable + recoverable
    repro loadgen --url http://127.0.0.1:8000 --requests 200 --expect-ok
    repro chaos --verbose              # crash-recovery differential check

Every query command routes through a :class:`~repro.api.session.Session`
and a :class:`~repro.api.spec.QuerySpec`, so one scored prefix (and one
computed distribution) serves all the outputs of a single invocation.

Tables load from ``.csv`` (the reserved-column layout of
:mod:`repro.io.csv_io`) or ``.json`` (:mod:`repro.io.json_io`).
Scores are an attribute name, or any query-layer expression when the
text is not a bare identifier.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.api import (
    DEFAULT_MC_CONFIDENCE,
    QuerySpec,
    SPEC_ALGORITHMS,
    Session,
    available_semantics,
)
from repro.core.distribution import DEFAULT_P_TAU
from repro.core.pmf import ScorePMF
from repro.core.dp import DEFAULT_MAX_LINES
from repro.exceptions import ReproError
from repro.io import load_table_file
from repro.io.csv_io import write_table_csv
from repro.io.json_io import answer_to_jsonable, pmf_to_json, write_table_json
from repro.query.engine import execute_query
from repro.stats.histogram import render_pmf
from repro.uncertain.scoring import expression_scorer
from repro.uncertain.table import UncertainTable


def load_table(path: str | Path) -> UncertainTable:
    """Load an uncertain table from a ``.csv`` or ``.json`` file."""
    return load_table_file(path)


def save_table(table: UncertainTable, path: str | Path) -> None:
    """Write ``table`` as ``.csv`` or ``.json`` based on the suffix."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        write_table_json(table, path)
    else:
        write_table_csv(table, path)


def resolve_cli_scorer(text: str):
    """The scorer spec of ``--score``: attribute name or expression.

    Bare identifiers stay *strings* (the engine resolves them to
    attribute scorers): string equality against the packing scorer is
    what lets a packed table serve the query lazily, so wrapping the
    name in a callable here would defeat the storage pushdown.
    """
    if text.replace("_", "a").isalnum() and not text[0].isdigit():
        return text
    return expression_scorer(text)


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--p-tau",
        type=float,
        default=DEFAULT_P_TAU,
        help="Theorem-2 truncation threshold (0 scans everything; "
        f"default {DEFAULT_P_TAU})",
    )
    parser.add_argument(
        "--max-lines",
        type=int,
        default=DEFAULT_MAX_LINES,
        help=f"line-coalescing budget (default {DEFAULT_MAX_LINES})",
    )
    parser.add_argument(
        "--algorithm",
        choices=SPEC_ALGORITHMS,
        # None = not specified (resolves to "dp"); the sentinel keeps
        # an *explicit* --algorithm dp distinguishable, so it can
        # override an algorithm named in query text.
        default=None,
        help="which algorithm to run: a Section-3 exact algorithm, "
        "the Monte-Carlo estimator (mc), or auto to pick from the "
        "problem shape (default dp)",
    )
    group = parser.add_argument_group(
        "Monte-Carlo options (--algorithm mc)"
    )
    group.add_argument(
        "--epsilon",
        type=float,
        default=None,
        metavar="EPS",
        help="target confidence-interval half-width ±ε of the "
        "adaptive sample-size control (default: engine default)",
    )
    group.add_argument(
        "--confidence",
        type=float,
        default=DEFAULT_MC_CONFIDENCE,
        help="confidence level of the reported intervals "
        f"(default {DEFAULT_MC_CONFIDENCE})",
    )
    group.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="S",
        help="draw exactly S worlds instead of adapting to ±ε",
    )
    group.add_argument(
        "--seed",
        type=int,
        default=0,
        help="sampling seed; estimates are deterministic per seed "
        "(default 0)",
    )


def spec_from_args(args: argparse.Namespace, table: UncertainTable) -> QuerySpec:
    """The :class:`QuerySpec` of a table-file command invocation."""
    return QuerySpec(
        table=table,
        scorer=resolve_cli_scorer(args.score),
        k=args.k,
        p_tau=args.p_tau,
        max_lines=args.max_lines,
        algorithm=args.algorithm or "dp",
        epsilon=args.epsilon,
        confidence=args.confidence,
        samples=args.samples,
        seed=args.seed,
    )


def cmd_distribution(args: argparse.Namespace) -> int:
    """``repro distribution``: print a top-k score distribution."""
    session = Session()
    spec = spec_from_args(args, load_table(args.table))
    pmf = session.distribution(spec)
    if args.json:
        print(pmf_to_json(pmf))
        return 0
    print(pmf.summary())
    markers = []
    if args.u_topk:
        best = session.execute(spec.with_(semantics="u_topk"))
        if best is not None:
            print(
                f"U-Top{args.k}: score {best.total_score:.4g} "
                f"(p={best.probability:.4g}) vector {best.vector}"
            )
            markers.append((best.total_score, "U-Topk"))
    if args.histogram:
        print(render_pmf(pmf, buckets=args.histogram, markers=markers))
    else:
        for line in pmf:
            print(f"  {line.score:12.4f}  {line.prob:10.6f}")
    return 0


def cmd_typical(args: argparse.Namespace) -> int:
    """``repro typical``: print c-Typical-Topk answers."""
    session = Session()
    spec = spec_from_args(args, load_table(args.table)).with_(
        semantics="typical", c=args.c
    )
    result = session.execute(spec)
    print(
        f"{args.c}-Typical-Top{args.k} "
        f"(expected distance {result.expected_distance:.4g}):"
    )
    for answer in result.answers:
        vector = ",".join(str(t) for t in answer.vector or ())
        print(f"  score {answer.score:12.4f}  p={answer.prob:.6f}  "
              f"[{vector}]")
    return 0


def cmd_answer(args: argparse.Namespace) -> int:
    """``repro answer``: run any registered answer semantics."""
    session = Session()
    spec = spec_from_args(args, load_table(args.table)).with_(
        semantics=args.semantics, c=args.c, threshold=args.threshold
    )
    answer = session.execute(spec)
    if args.json:
        if isinstance(answer, ScorePMF):
            # The exact pmf document shape: round-trips through
            # repro.io.json_io.pmf_from_json (vector-less lines too).
            print(pmf_to_json(answer))
        else:
            print(json.dumps(answer_to_jsonable(answer), default=str))
        return 0
    print(f"semantics {args.semantics} (k={args.k}):")
    if answer is None:
        print("  (no answer)")
    elif hasattr(answer, "summary"):  # the raw distribution
        print(answer.summary())
    elif isinstance(answer, list):  # marginal semantics: one row each
        for entry in answer:
            print(f"  {entry}")
    else:
        print(f"  {answer}")
    return 0


def _render_explain(document: dict) -> str:
    """Human-readable EXPLAIN tree (the ``--json`` flag gives the raw
    document)."""
    spec = document["spec"]
    physical = document["physical"]
    lines = [
        f"plan: {spec['semantics']} top-{spec['k']} over "
        f"{spec['table']} (algorithm {physical['algorithm']})"
    ]
    for note in physical.get("notes", ()):
        lines.append(f"  note: {note}")
    for op in physical["operators"]:
        params = " ".join(
            f"{key}={value}" for key, value in op["params"].items()
        )
        cost = (
            f"  ~{op['cost_units']:.0f} units, est {op['est_ms']} ms"
            if "cost_units" in op
            else ""
        )
        lines.append(f"  -> {op['op']}  {params}{cost}")
    lines.append(
        "  total: ~{0:.0f} units, est {1} ms".format(
            physical["total_cost_units"], physical["total_est_ms"]
        )
    )
    cache = document["cache"]
    lines.append(
        "cache: "
        + " ".join(f"{stage}={state}" for stage, state in cache.items())
    )
    model = document["cost_model"]
    lines.append(
        f"cost model: {model['source']} "
        f"(k_combo<={model['k_combo_max_combinations']}, "
        f"state_depth<={model['state_expansion_max_depth']}, "
        f"mc_budget={model['mc_cost_budget']})"
    )
    return "\n".join(lines)


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: show a request's physical plan, not answers."""
    session = Session()
    spec = spec_from_args(args, load_table(args.table)).with_(
        semantics=args.semantics, c=args.c, threshold=args.threshold
    )
    document = session.explain(spec)
    if args.json:
        print(json.dumps(document, indent=2, default=str))
    else:
        print(_render_explain(document))
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """``repro calibrate``: measure per-unit costs, persist constants."""
    from repro.api.calibration import run_calibration, write_calibration

    document = run_calibration(
        target_ms=args.target_ms,
        small_case_ms=args.small_case_ms,
        repeats=args.repeats,
    )
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        for name, value in document["constants"].items():
            print(f"{name:28s} {value}")
        native = document["backends"]["native"]
        if native["available"]:
            print(
                "native kernel: available "
                f"({native['strategy']}, {native['path']})"
            )
        else:
            print(f"native kernel: unavailable ({native['error']})")
    if args.dry_run:
        print("dry run: nothing persisted")
        return 0
    path = write_calibration(document, args.out)
    print(f"wrote {path} (planners pick it up on next start; "
          "REPRO_CALIBRATION overrides the path)")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: execute a SQL-like top-k query."""
    session = Session()
    for binding in args.table:
        name, _, path = binding.partition("=")
        if not path:
            raise ReproError(
                f"--table expects name=path, got {binding!r}"
            )
        session.register(name, load_table(path))
    result = execute_query(
        args.sql,
        session,
        p_tau=args.p_tau,
        max_lines=args.max_lines,
        algorithm=args.algorithm,
        epsilon=args.epsilon,
        confidence=args.confidence,
        samples=args.samples,
        seed=args.seed,
    )
    print(result.pmf.summary())
    if result.u_topk is not None:
        print(
            f"U-Topk: score {result.u_topk.total_score:.4g} "
            f"(p={result.u_topk.probability:.4g})"
        )
    for row in result.answers:
        print(f"typical score {row.score:.4f} (p={row.probability:.6f}):")
        for t in row.tuples:
            print(f"    {json.dumps(t, default=str)}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a synthetic dataset to disk."""
    if args.dataset == "soldier":
        from repro.datasets.soldier import (
            generate_soldier_table,
            soldier_table,
        )

        table = (
            soldier_table()
            if args.size is None
            else generate_soldier_table(args.size, seed=args.seed)
        )
    elif args.dataset == "cartel":
        from repro.datasets.cartel import CartelConfig, generate_cartel_area

        config = CartelConfig(segments=args.size or 120)
        table = generate_cartel_area(config=config, seed=args.seed)
    else:
        from repro.datasets.synthetic import (
            SyntheticConfig,
            generate_synthetic_table,
        )

        config = SyntheticConfig(tuples=args.size or 300)
        table = generate_synthetic_table(config, seed=args.seed)
    save_table(table, args.out)
    print(
        f"wrote {len(table)} tuples "
        f"({len(table.explicit_rules)} ME rules) to {args.out}"
    )
    return 0


def cmd_pack(args: argparse.Namespace) -> int:
    """``repro pack``: convert a table source to the on-disk format."""
    from repro.datasets.specs import generate_from_spec, is_generator_spec
    from repro.storage import pack_table

    if is_generator_spec(args.source):
        table = generate_from_spec(args.source)
    else:
        table = load_table(args.source)
    summary = pack_table(
        table, args.out, scorer=args.scorer, page_size=args.page_size
    )
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"packed {summary['tuples']} tuples "
            f"({summary['explicit_rules']} ME rules, "
            f"{summary['pages']} pages of {summary['page_size']}, "
            f"{summary['bytes']} bytes) into {summary['path']}"
        )
        print(
            f"serve it with --table name=disk:{summary['path']} or "
            f"query it directly: repro answer {summary['path']} "
            f"--score {summary['scorer']} -k 5"
        )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: run the paper-figure experiments."""
    from repro.bench.figures import main as figures_main

    return figures_main(args.names)


def _serve_until_signalled(server: Any, drain_timeout: float) -> None:
    """Run the accept loop until SIGTERM/SIGINT, then drain gracefully.

    The handler only flips a flag (``Event.set`` from a signal handler
    can deadlock against a main thread blocked in ``Event.wait``); the
    main thread polls it in an interruptible sleep.  On signal: stop
    accepting, finish every admitted request, flush and close the WALs
    — the durable tail then holds exactly the acknowledged writes.
    """
    import signal
    import threading
    import time as time_module

    stop_flags: list[int] = []

    def _on_signal(signum: int, frame: Any) -> None:
        stop_flags.append(signum)

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    accept_thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    accept_thread.start()
    try:
        while not stop_flags:
            time_module.sleep(0.1)
        name = signal.Signals(stop_flags[0]).name
        print(
            f"repro serve: {name} received, draining "
            f"(timeout {drain_timeout:g}s)...",
            flush=True,
        )
        server.graceful_shutdown(timeout=drain_timeout)
        accept_thread.join(timeout=5.0)
        print("repro serve: drained, WALs closed", flush=True)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the batching concurrent query service.

    ``--workers 1`` (the default) serves in process; ``--workers N``
    forks N worker processes, each owning a consistent-hash shard of
    the ``(table, p_tau)`` space (see :mod:`repro.service.router`).
    """
    from repro.service import (
        DatasetCatalog,
        DegradationPolicy,
        FaultInjector,
        load_catalog_file,
        make_server,
        make_sharded_server,
        parse_binding,
    )
    from repro.standing import DurableStore

    bindings: dict[str, str] = {}
    if args.catalog:
        bindings.update(load_catalog_file(args.catalog))
    for binding in args.table:
        name, source = parse_binding(binding)
        bindings[name] = source
    mode = "unbatched (naive per-request)" if args.unbatched else "batched"
    if args.workers > 1:
        server = make_sharded_server(
            bindings,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            workers=args.workers,
            cache_size=args.cache_size,
            threads=args.threads,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            batched=not args.unbatched,
            request_timeout_s=args.request_timeout,
            degrade=not args.no_degrade,
            degrade_deadline_s=args.degrade_deadline,
            degrade_queue_depth=args.degrade_queue,
            data_dir=args.data_dir,
            snapshot_every=args.snapshot_every,
            warm=args.warm,
        )
        host, port = server.server_address[:2]
        print(
            f"repro serve: listening on http://{host}:{port} "
            f"({mode}, {args.workers} worker processes)"
        )
        sharded = server.service
        for document in sharded.pool.boot_documents:
            index = document["worker"]
            print(
                f"  worker w{index}: replicates "
                f"{len(document['tables'])} tables, owns WAL for "
                f"{document['wal_tables'] or 'none'}"
            )
            for name, info in sorted(
                document.get("recovery", {}).items()
            ):
                print(
                    f"    recovered {name}: version {info['version']} "
                    f"(snapshot {info['snapshot_version']} + "
                    f"{info['replayed']} WAL records)"
                )
            for sid in document["restored_subscriptions"]:
                print(f"    restored subscription {sid}")
            for sid, reason in sorted(
                document["failed_subscriptions"].items()
            ):
                print(
                    f"    FAILED to restore subscription {sid}: {reason}",
                    file=sys.stderr,
                )
        print("endpoints: POST /v1/answer /v1/distribution /v1/typical "
              "/v1/mutate /v1/subscribe /v1/unsubscribe /v1/reload; "
              "GET /v1/watch /healthz /metrics", flush=True)
        _serve_until_signalled(server, args.drain_timeout)
        return 0
    # Injected faults crash the *process* (like a power cut), so the
    # chaos harness can assert real recovery — not a caught exception.
    faults = FaultInjector.from_env(crash_mode="exit")
    store = None
    if args.data_dir is not None:
        store = DurableStore(
            args.data_dir,
            snapshot_every=args.snapshot_every,
            faults=faults,
        )
    catalog = DatasetCatalog(
        bindings, cache_size=args.cache_size, store=store
    )
    if args.warm is not None:
        catalog.warm(args.warm)
    degradation = None
    if not args.no_degrade:
        degradation = DegradationPolicy(
            deadline_s=args.degrade_deadline,
            queue_depth=args.degrade_queue,
        )
    server = make_server(
        catalog,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        workers=args.threads,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batched=not args.unbatched,
        request_timeout_s=args.request_timeout,
        degrade=not args.no_degrade,
        degradation=degradation,
        faults=faults,
    )
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} ({mode})")
    for name, info in catalog.describe().items():
        print(
            f"  table {name}: {info['tuples']} tuples "
            f"({info['me_rules']} ME rules) from {info['source']}"
        )
    if store is not None:
        for name, info in sorted(store.recovery_info.items()):
            print(
                f"  recovered {name}: version {info['version']} "
                f"(snapshot {info['snapshot_version']} + "
                f"{info['replayed']} WAL records, "
                f"{info['truncated_bytes']} torn bytes truncated)"
            )
        service = server.service
        for sid in service.restored_subscriptions:
            print(f"  restored subscription {sid}")
        for sid, reason in sorted(service.failed_subscriptions.items()):
            print(f"  FAILED to restore subscription {sid}: {reason}",
                  file=sys.stderr)
    if faults:
        print(f"  fault injection armed: {faults.describe()}")
    print("endpoints: POST /v1/answer /v1/distribution /v1/typical "
          "/v1/mutate /v1/subscribe /v1/unsubscribe /v1/reload; "
          "GET /v1/watch /healthz /metrics", flush=True)
    _serve_until_signalled(server, args.drain_timeout)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro loadgen``: drive a running service with mixed traffic."""
    from repro.service import run_loadgen

    result = run_loadgen(
        args.url,
        requests=args.requests,
        concurrency=args.concurrency,
        tables=args.table or None,
        scorer=args.score,
        seed=args.seed,
        timeout=args.timeout,
        processes=args.processes,
    )
    print(json.dumps(result.summary(), indent=2))
    if args.expect_ok and result.ok != result.requests:
        print(
            f"error: only {result.ok}/{result.requests} requests "
            "returned 200",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_mutate(args: argparse.Namespace) -> int:
    """``repro mutate``: apply one mutation to a served table."""
    import urllib.error
    import urllib.request

    payload: dict[str, Any] = {
        "table": args.table,
        "op": args.op,
        "tid": args.tid,
    }
    if args.probability is not None:
        payload["probability"] = args.probability
    if args.attr:
        attributes: dict[str, Any] = {}
        for item in args.attr:
            name, sep, value = item.partition("=")
            if not sep or not name:
                print(f"error: --attr must be name=value, got {item!r}",
                      file=sys.stderr)
                return 2
            try:
                attributes[name] = float(value)
            except ValueError:
                attributes[name] = value
        payload["attributes"] = attributes
    if args.group_with is not None:
        payload["group_with"] = args.group_with
    request = urllib.request.Request(
        f"{args.url.rstrip('/')}/v1/mutate",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as r:
            document = json.loads(r.read())
    except urllib.error.HTTPError as exc:
        print(exc.read().decode(), file=sys.stderr)
        return 1
    print(json.dumps(document, indent=2))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """``repro watch``: subscribe to a standing query and stream it.

    The stream auto-reconnects: each SSE event carries an ``id:`` (the
    change-log version), and on a dropped connection the client retries
    with exponential backoff plus jitter, resuming via the
    ``Last-Event-ID`` header — the server replays everything past that
    version, so a server restart (or a flaky proxy) never silently ends
    a watch or skips an update.
    """
    import random
    import time
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    body: dict[str, Any] = {
        "table": args.table,
        "scorer": args.score,
        "k": args.k,
        "semantics": args.semantics,
    }
    if args.p_tau is not None:
        body["p_tau"] = args.p_tau
    request = urllib.request.Request(
        f"{base}/v1/subscribe",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as r:
            subscription = json.loads(r.read())
    except urllib.error.HTTPError as exc:
        print(exc.read().decode(), file=sys.stderr)
        return 1
    sid = subscription["sid"]
    print(json.dumps(subscription, indent=2), flush=True)
    last_id = int(subscription["version"])
    received = 0
    failures = 0
    rng = random.Random()
    deadline = time.monotonic() + args.timeout
    try:
        while received < args.count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            poll_s = max(1.0, min(remaining, 30.0))
            watch_url = (
                f"{base}/v1/watch?sid={sid}&count={args.count - received}"
                f"&timeout_s={poll_s:.1f}"
            )
            stream_request = urllib.request.Request(
                watch_url, headers={"Last-Event-ID": str(last_id)}
            )
            try:
                with urllib.request.urlopen(
                    stream_request, timeout=poll_s + 5
                ) as stream:
                    failures = 0
                    for raw in stream:
                        line = raw.decode().rstrip("\n")
                        if line.startswith("id: "):
                            try:
                                last_id = int(line.removeprefix("id: "))
                            except ValueError:
                                pass
                        elif line.startswith("data: "):
                            payload = line.removeprefix("data: ")
                            if payload != "{}":  # skip the end marker
                                print(payload, flush=True)
                                received += 1
                # A clean end-of-stream is just the long-poll expiring;
                # loop around and reconnect immediately.
            except urllib.error.HTTPError as exc:
                # e.g. the subscription is gone for good (404): fatal.
                print(exc.read().decode(), file=sys.stderr)
                return 1
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError) as exc:
                failures += 1
                if failures > args.max_retries:
                    print(
                        f"error: watch gave up after {args.max_retries} "
                        "consecutive failed reconnects",
                        file=sys.stderr,
                    )
                    return 1
                delay = min(args.max_backoff,
                            args.backoff * 2 ** (failures - 1))
                delay *= 0.5 + rng.random()  # jitter: 0.5x .. 1.5x
                delay = min(delay, max(0.0, deadline - time.monotonic()))
                print(
                    f"watch: connection lost ({exc}); reconnect "
                    f"{failures}/{args.max_retries} in {delay:.2f}s "
                    f"(resume after version {last_id})",
                    file=sys.stderr,
                )
                time.sleep(delay)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: crash-recovery differential check, end to end."""
    import tempfile

    from repro.service.chaos import run_chaos

    if args.data_dir is not None:
        report = run_chaos(
            data_dir=args.data_dir,
            tuples=args.tuples,
            mutations=args.mutations,
            seed=args.seed,
            faults=args.faults,
            snapshot_every=args.snapshot_every,
            verbose=args.verbose,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            report = run_chaos(
                data_dir=tmp,
                tuples=args.tuples,
                mutations=args.mutations,
                seed=args.seed,
                faults=args.faults,
                snapshot_every=args.snapshot_every,
                verbose=args.verbose,
            )
    print(json.dumps(report, indent=2))
    print(
        f"chaos ok: {report['crash']} after {report['mutations_acked']} "
        f"acked mutations; recovered answers == cold recompute"
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run (and persist/check) the core perf baseline."""
    from repro.bench.baseline import (
        check_against_baseline,
        read_baseline,
        run_baseline,
        write_baseline,
    )

    data = run_baseline(tiny_only=args.tiny, repeats=args.repeats)
    for name, entry in data["workloads"].items():
        print(f"{name:42s} {entry['seconds'] * 1e3:10.2f} ms")
    if args.json is not None:
        write_baseline(data, args.json)
        print(f"wrote {args.json}")
    if args.check is not None:
        committed = read_baseline(args.check)
        violations = check_against_baseline(data, committed)
        if violations:
            for line in violations:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"perf guard ok (vs {args.check})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Top-k queries on uncertain data: score distributions and "
            "typical answers (SIGMOD 2009 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "distribution", help="compute a top-k score distribution"
    )
    p.add_argument("table", help="table file (.csv or .json)")
    p.add_argument("--score", required=True,
                   help="attribute name or scoring expression")
    p.add_argument("-k", type=int, required=True, help="top-k size")
    p.add_argument("--histogram", type=int, default=0, metavar="BUCKETS",
                   help="render an ASCII histogram with this many buckets")
    p.add_argument("--u-topk", action="store_true",
                   help="also compute and mark the U-Topk answer")
    p.add_argument("--json", action="store_true",
                   help="emit the distribution as JSON")
    _add_common_options(p)
    p.set_defaults(func=cmd_distribution)

    p = sub.add_parser("typical", help="compute c-Typical-Topk answers")
    p.add_argument("table", help="table file (.csv or .json)")
    p.add_argument("--score", required=True,
                   help="attribute name or scoring expression")
    p.add_argument("-k", type=int, required=True, help="top-k size")
    p.add_argument("-c", type=int, default=3,
                   help="number of typical answers (default 3)")
    _add_common_options(p)
    p.set_defaults(func=cmd_typical)

    p = sub.add_parser(
        "answer", help="run any registered answer semantics"
    )
    p.add_argument("table", help="table file (.csv or .json)")
    p.add_argument("--score", required=True,
                   help="attribute name or scoring expression")
    p.add_argument("-k", type=int, required=True, help="top-k size")
    p.add_argument("--semantics", required=True,
                   choices=available_semantics(),
                   help="registered answer semantics to run")
    p.add_argument("-c", type=int, default=3,
                   help="typical-answer count (semantics=typical)")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="membership threshold (semantics=pt_k)")
    p.add_argument("--json", action="store_true",
                   help="emit the answer as JSON (distributions use "
                   "the pmf document shape)")
    _add_common_options(p)
    p.set_defaults(func=cmd_answer)

    p = sub.add_parser(
        "explain",
        help="show a request's logical/physical plan and cost estimates",
    )
    p.add_argument("table", help="table file (.csv or .json)")
    p.add_argument("--score", required=True,
                   help="attribute name or scoring expression")
    p.add_argument("-k", type=int, required=True, help="top-k size")
    p.add_argument("--semantics", default="typical",
                   choices=available_semantics(),
                   help="answer semantics to plan for (default typical)")
    p.add_argument("-c", type=int, default=3,
                   help="typical-answer count (semantics=typical)")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="membership threshold (semantics=pt_k)")
    p.add_argument("--json", action="store_true",
                   help="emit the raw EXPLAIN document as JSON")
    _add_common_options(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "calibrate",
        help="measure per-machine planner constants and persist them",
    )
    p.add_argument("--target-ms", type=float, default=1000.0,
                   help="exact-DP latency budget backing the mc "
                   "escape hatch (default 1000)")
    p.add_argument("--small-case-ms", type=float, default=0.5,
                   help="budget defining 'trivially small' baseline "
                   "inputs (default 0.5)")
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of repeats per probe (default 3)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="calibration file path (default "
                   "~/.cache/repro/calibration.json or "
                   "$REPRO_CALIBRATION)")
    p.add_argument("--json", action="store_true",
                   help="print the full calibration document")
    p.add_argument("--dry-run", action="store_true",
                   help="measure and print, but persist nothing")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("query", help="run a SQL-like top-k query")
    p.add_argument("sql", help="the query text")
    p.add_argument("--table", action="append", default=[],
                   metavar="NAME=PATH", help="bind a table file to a name")
    _add_common_options(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("generate", help="generate a dataset file")
    p.add_argument("dataset", choices=("soldier", "cartel", "synthetic"))
    p.add_argument("--out", required=True, help="output path (.csv/.json)")
    p.add_argument("--size", type=int, default=None,
                   help="soldiers / segments / tuples (dataset-specific)")
    p.add_argument("--seed", type=int, default=0, help="RNG seed")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "pack",
        help="pack a table into the out-of-core scored format",
    )
    p.add_argument("source",
                   help="table file (.csv/.json) or generator spec "
                   "(synthetic:tuples=1000000,me=0.5,...)")
    p.add_argument("--out", required=True, metavar="DIR",
                   help="output directory (becomes the packed table)")
    p.add_argument("--scorer", default="score", metavar="ATTR",
                   help="numeric attribute the rank order is built on; "
                   "queries scoring by it are served by scan-depth "
                   "pushdown (default score)")
    p.add_argument("--page-size", type=int, default=4096, metavar="N",
                   help="rows per page — the decode/caching unit "
                   "(default 4096)")
    p.add_argument("--json", action="store_true",
                   help="print the pack summary as JSON")
    p.set_defaults(func=cmd_pack)

    p = sub.add_parser("figures", help="run the paper-figure experiments")
    p.add_argument("names", nargs="*",
                   help="experiment names (default: all)")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser(
        "serve", help="run the batching concurrent query service"
    )
    p.add_argument("--table", action="append", default=[],
                   metavar="NAME=SOURCE",
                   help="catalog binding: a table file path or a "
                   "generator spec (synthetic:tuples=400,me=0.9,...)")
    p.add_argument("--catalog", default=None, metavar="FILE",
                   help='JSON catalog file {"tables": {name: source}}')
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="listen port (0 picks a free port; default 8000)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes, each owning a consistent-"
                   "hash shard of the (table, p_tau) space (default 1 "
                   "= serve in process)")
    p.add_argument("--threads", type=int, default=2,
                   help="executor threads per worker (default 2)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   metavar="S",
                   help="graceful-shutdown budget: how long SIGTERM/"
                   "SIGINT waits for in-flight requests before a hard "
                   "stop (default 10)")
    p.add_argument("--max-queue", type=int, default=128,
                   help="pending-request bound before 429 (default 128)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="largest micro-batch (default 32)")
    p.add_argument("--cache-size", type=int, default=64,
                   help="per-stage LRU capacity of the shared session")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   help="per-request deadline in seconds (default 30)")
    p.add_argument("--warm", type=int, default=None, metavar="K",
                   help="precompute each table's top-K distribution "
                   "at startup")
    p.add_argument("--unbatched", action="store_true",
                   help="serve naively, one cold session per request "
                   "(the benchmark baseline)")
    p.add_argument("--data-dir", default=None, metavar="DIR",
                   help="durable state directory: per-table WAL + "
                   "snapshots and the subscription manifest; on boot, "
                   "tables and subscriptions recover to their exact "
                   "pre-crash state")
    p.add_argument("--snapshot-every", type=int, default=256,
                   metavar="N",
                   help="compact each table's WAL into a snapshot "
                   "every N records (default 256)")
    p.add_argument("--no-degrade", action="store_true",
                   help="disable graceful degradation: overloaded or "
                   "breaker-tripped exact queries fail instead of "
                   "falling back to Monte-Carlo answers")
    p.add_argument("--degrade-deadline", type=float, default=0.5,
                   metavar="S",
                   help="degrade exact work when the remaining request "
                   "budget drops to S seconds (default 0.5)")
    p.add_argument("--degrade-queue", type=int, default=64,
                   metavar="N",
                   help="degrade new exact work once N requests are "
                   "pending (default 64)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen", help="drive a running service with mixed traffic"
    )
    p.add_argument("--url", default="http://127.0.0.1:8000",
                   help="service base URL (default http://127.0.0.1:8000)")
    p.add_argument("--requests", type=int, default=100,
                   help="total requests to issue (default 100)")
    p.add_argument("--concurrency", type=int, default=8,
                   help="closed-loop client threads (default 8)")
    p.add_argument("--processes", type=int, default=1,
                   help="client processes, each running --concurrency "
                   "threads (default 1; use >1 against a multi-worker "
                   "server so the generator's GIL is not the bottleneck)")
    p.add_argument("--table", action="append", default=[],
                   metavar="NAME",
                   help="restrict to these catalog tables "
                   "(default: discover via /healthz)")
    p.add_argument("--score", default="score",
                   help="scorer attribute name (default score)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload shuffle seed (default 0)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-request client timeout in seconds")
    p.add_argument("--expect-ok", action="store_true",
                   help="exit nonzero unless every request returned 200")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "mutate", help="apply one mutation to a served catalog table"
    )
    p.add_argument("--url", default="http://127.0.0.1:8000",
                   help="service base URL (default http://127.0.0.1:8000)")
    p.add_argument("--table", required=True, help="catalog table name")
    p.add_argument("--op", required=True,
                   choices=["insert", "expire", "update_probability",
                            "update_score"],
                   help="the mutation operation")
    p.add_argument("--tid", required=True, help="affected tuple id")
    p.add_argument("--probability", type=float, default=None,
                   help="membership probability (insert / "
                   "update_probability)")
    p.add_argument("--attr", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="attribute value (repeatable; numeric when it "
                   "parses, else string)")
    p.add_argument("--group-with", default=None, metavar="TID",
                   help="join this tuple's ME group (insert only)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="client timeout in seconds")
    p.set_defaults(func=cmd_mutate)

    p = sub.add_parser(
        "watch", help="subscribe to a standing query and stream updates"
    )
    p.add_argument("--url", default="http://127.0.0.1:8000",
                   help="service base URL (default http://127.0.0.1:8000)")
    p.add_argument("--table", required=True, help="catalog table name")
    p.add_argument("--score", default="score",
                   help="scorer attribute name (default score)")
    p.add_argument("-k", type=int, required=True, help="top-k size")
    p.add_argument("--semantics", default="u_topk",
                   choices=available_semantics(),
                   help="answer semantics (default u_topk)")
    p.add_argument("--p-tau", type=float, default=None,
                   help="Theorem-2 truncation threshold")
    p.add_argument("--count", type=int, default=10,
                   help="stop after this many updates (default 10)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="stream lifetime in seconds (default 60)")
    p.add_argument("--max-retries", type=int, default=5,
                   help="consecutive failed reconnects before giving "
                   "up (default 5)")
    p.add_argument("--backoff", type=float, default=0.5, metavar="S",
                   help="initial reconnect backoff in seconds, doubled "
                   "per consecutive failure with jitter (default 0.5)")
    p.add_argument("--max-backoff", type=float, default=10.0,
                   metavar="S",
                   help="reconnect backoff ceiling (default 10)")
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "chaos",
        help="crash a fault-injected server mid-burst and assert "
        "byte-identical recovery",
    )
    p.add_argument("--data-dir", default=None, metavar="DIR",
                   help="working directory for durable state and "
                   "server logs (default: a fresh temp dir)")
    p.add_argument("--tuples", type=int, default=60,
                   help="synthetic base-table size (default 60)")
    p.add_argument("--mutations", type=int, default=40,
                   help="mutation-burst length (default 40)")
    p.add_argument("--seed", type=int, default=11,
                   help="burst + fault-injection seed (default 11)")
    p.add_argument("--faults", default="wal_torn_write:0.08",
                   metavar="SPEC",
                   help="REPRO_FAULTS spec for the first server "
                   "(default wal_torn_write:0.08)")
    p.add_argument("--snapshot-every", type=int, default=16,
                   metavar="N",
                   help="WAL compaction interval, small on purpose so "
                   "recovery crosses a snapshot (default 16)")
    p.add_argument("--verbose", action="store_true",
                   help="narrate each phase")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "bench", help="run the core perf baseline workloads"
    )
    p.add_argument("--json", nargs="?", const="BENCH_core.json",
                   default=None, metavar="PATH",
                   help="write the machine-readable baseline "
                   "(default path BENCH_core.json)")
    p.add_argument("--tiny", action="store_true",
                   help="run only the tiny CI perf-smoke workloads")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per workload (best-of, default 3)")
    p.add_argument("--check", metavar="PATH", default=None,
                   help="compare against a committed baseline file and "
                   "fail on a >3x slowdown")
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
