"""Competing top-k semantics used as baselines by the paper.

Category (1) — vectors of compatible tuples:

* :mod:`repro.semantics.u_topk` — U-Topk of Soliman, Ilyas & Chang:
  the single most probable top-k vector.
* (the paper's own c-Typical-Topk lives in :mod:`repro.core.typical`.)

Category (2) — per-tuple marginal semantics:

* :mod:`repro.semantics.u_kranks` — U-kRanks: per rank position, the
  most probable tuple.
* :mod:`repro.semantics.pt_k` — PT-k of Hua et al.: all tuples whose
  probability of being in the top-k reaches a threshold.
* :mod:`repro.semantics.global_topk` — Global-Topk of Zhang &
  Chomicki: the k tuples with the highest top-k probability.

:mod:`repro.semantics.marginals` holds the shared rank-marginal engine
(a Poisson-binomial dynamic program over ME groups).
"""

from repro.semantics.marginals import (
    rank_distribution,
    top_k_probability,
    top_k_probabilities,
)
from repro.semantics.u_topk import UTopkResult, u_topk, vector_top_k_probability
from repro.semantics.u_kranks import URankAnswer, u_kranks
from repro.semantics.pt_k import pt_k
from repro.semantics.global_topk import global_topk
from repro.semantics.answers import typicality_report, TypicalityReport
from repro.semantics.expected_ranks import ExpectedRankAnswer, expected_rank_topk

__all__ = [
    "rank_distribution",
    "top_k_probability",
    "top_k_probabilities",
    "UTopkResult",
    "u_topk",
    "vector_top_k_probability",
    "URankAnswer",
    "u_kranks",
    "pt_k",
    "global_topk",
    "typicality_report",
    "TypicalityReport",
    "ExpectedRankAnswer",
    "expected_rank_topk",
]
