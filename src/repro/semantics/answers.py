"""Typicality analysis: where does an answer sit in the distribution?

The paper's experiments repeatedly ask "where does the U-Topk vector
stand in the top-k score distribution, and where do the c typical
vectors stand?" (Figures 3, 8, 13–16).  :func:`typicality_report`
packages that comparison: it computes the score distribution, the
U-Topk answer and the c-Typical-Topk answers, and quantifies the
atypicality of U-Topk (tail mass beyond its score, distance to the
expected score in standard deviations, distance to the nearest typical
score).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.distribution import DEFAULT_P_TAU, ScorerLike
from repro.core.dp import DEFAULT_MAX_LINES
from repro.core.pmf import ScorePMF
from repro.core.typical import TypicalResult
from repro.semantics.u_topk import UTopkResult
from repro.uncertain.table import UncertainTable


class TypicalityReport(NamedTuple):
    """Joint view of the distribution, U-Topk and c-Typical answers.

    :ivar pmf: the top-k total-score distribution.
    :ivar u_topk: the U-Topk answer (None if not computable).
    :ivar typical: the c-Typical-Topk answers.
    :ivar prob_above_u_topk: P(top-k score > U-Topk score) — 0.76 in
        the paper's toy example.
    :ivar u_topk_z_score: (U-Topk score - E[S]) / std(S); large
        magnitude means atypical.
    :ivar u_topk_percentile: normalized CDF position of the U-Topk
        score in [0, 1].
    :ivar distance_to_nearest_typical: |U-Topk score - closest typical
        score|.
    """

    pmf: ScorePMF
    u_topk: UTopkResult | None
    typical: TypicalResult
    prob_above_u_topk: float
    u_topk_z_score: float
    u_topk_percentile: float
    distance_to_nearest_typical: float


def typicality_report(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    c: int = 3,
    *,
    p_tau: float = DEFAULT_P_TAU,
    max_lines: int = DEFAULT_MAX_LINES,
) -> TypicalityReport:
    """Build a :class:`TypicalityReport` for ``table``.

    The three views are planned through one session: the scored prefix
    is computed once and serves the distribution, the typical answers
    and the U-Topk comparison.

    >>> from repro.datasets.soldier import soldier_table
    >>> report = typicality_report(soldier_table(), "score", 2, 3, p_tau=0)
    >>> round(report.prob_above_u_topk, 2)
    0.76
    """
    # Imported lazily: repro.api registers the semantics this package
    # defines, so a module-level import would be circular.
    from repro.api.session import Session
    from repro.api.spec import QuerySpec

    session = Session()
    spec = QuerySpec(
        table=table,
        scorer=scorer,
        k=k,
        semantics="typical",
        c=c,
        p_tau=p_tau,
        max_lines=max_lines,
        algorithm="dp",
    )
    pmf = session.distribution(spec)
    typical = session.execute(spec)
    answer = session.execute(spec.with_(semantics="u_topk"))
    if answer is None:
        return TypicalityReport(
            pmf, None, typical, 0.0, 0.0, 0.0, float("nan")
        )
    mass = pmf.total_mass()
    prob_above = pmf.prob_greater(answer.total_score) / mass if mass else 0.0
    std = pmf.std()
    z = (
        (answer.total_score - pmf.expectation()) / std
        if std > 0.0
        else 0.0
    )
    percentile = pmf.cdf(answer.total_score)
    nearest = min(
        abs(answer.total_score - a.score) for a in typical.answers
    )
    return TypicalityReport(
        pmf, answer, typical, prob_above, z, percentile, nearest
    )
