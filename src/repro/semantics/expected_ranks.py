"""Expected-rank semantics (extension beyond the paper's baselines).

A contemporary alternative to the probability-centric semantics
(Cormode, Li & Yi, "Semantics of Ranking Queries for Probabilistic
Data and Expected Ranks", ICDE 2009): rank every tuple by its
*expected rank* across possible worlds and return the k smallest.

We use the "existing worlds" convention: in a world where ``t`` exists
its rank is 1 + (number of existing higher-ranked tuples); in worlds
where ``t`` does not exist it is charged the rank it would have had,
|world| + 1 being a common alternative — here we charge the expected
number of existing *other* tuples plus 1, which keeps the computation
closed-form under the ME model and preserves the ordering behaviour
the semantics is known for (certain high scorers first, uncertain
high scorers traded off against certain mid scorers).

Included as an extension because the paper's related-work discussion
(Section 6) situates its contribution against exactly this family of
score-and-probability-sensitive semantics.
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.core.distribution import (
    DEFAULT_P_TAU,
    ScorerLike,
    prepare_scored_prefix,
)
from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable


class ExpectedRankAnswer(NamedTuple):
    """One expected-rank answer.

    :ivar tid: tuple id.
    :ivar expected_rank: the tuple's expected rank (lower is better).
    :ivar probability: the tuple's membership probability.
    """

    tid: Any
    expected_rank: float
    probability: float


def _expected_higher_count(scored: ScoredTable, pos: int) -> float:
    """Expected number of existing tuples ranked above ``pos``.

    Conditioned on the tuple at ``pos`` existing: its own ME group's
    above-``pos`` members cannot co-exist with it, so they contribute
    nothing; all other groups contribute their above-``pos`` mass.
    """
    item = scored[pos]
    total = 0.0
    for index in range(pos):
        other = scored[index]
        if other.group == item.group:
            continue
        total += other.prob
    return total


def _expected_existing_others(scored: ScoredTable, pos: int) -> float:
    """Expected number of existing tuples other than ``pos``'s own
    (unconditional on the target tuple, excluding its ME group)."""
    item = scored[pos]
    return sum(
        scored[index].prob
        for index in range(len(scored))
        if scored[index].group != item.group
    )


def expected_rank(scored: ScoredTable, pos: int) -> float:
    """Expected rank of the tuple at position ``pos``.

    E[rank] = p * (1 + E[#higher existing | t exists])
            + (1 - p) * (1 + E[#existing others])

    — when the tuple exists it competes against the higher-ranked
    existing tuples; when it does not, it is charged a rank below all
    existing tuples (the standard penalty that keeps low-probability
    tuples from dominating).
    """
    item = scored[pos]
    present = 1.0 + _expected_higher_count(scored, pos)
    absent = 1.0 + _expected_existing_others(scored, pos)
    return item.prob * present + (1.0 - item.prob) * absent


def expected_rank_topk(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    *,
    p_tau: float = DEFAULT_P_TAU,
    depth: int | None = None,
) -> list[ExpectedRankAnswer]:
    """The k tuples with the smallest expected rank.

    :returns: answers sorted by expected rank ascending.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    scored = prepare_scored_prefix(table, scorer, k, p_tau=p_tau, depth=depth)
    return expected_rank_topk_scored(scored, k)


def expected_rank_topk_scored(
    scored: ScoredTable, k: int
) -> list[ExpectedRankAnswer]:
    """Expected-rank top-k over an already rank-ordered (truncated)
    input."""
    answers = [
        ExpectedRankAnswer(
            scored[pos].tid, expected_rank(scored, pos), scored[pos].prob
        )
        for pos in range(len(scored))
    ]
    answers.sort(key=lambda a: a.expected_rank)
    return answers[:k]
