"""U-kRanks (Soliman, Ilyas & Chang): most probable tuple per rank.

For each rank position i = 1..k, the answer is the tuple maximizing
P(t occupies rank i in a possible world).  As the paper points out in
Section 1, the answers are marginal: the same tuple may win several
ranks and the returned tuples need not be able to co-exist — this is
exactly the property that motivates the paper's category-(1)
semantics.
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.core.distribution import (
    DEFAULT_P_TAU,
    ScorerLike,
    prepare_scored_prefix,
)
from repro.exceptions import AlgorithmError
from repro.semantics.marginals import rank_distribution
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable


class URankAnswer(NamedTuple):
    """The winner of one rank position.

    :ivar rank: rank position (1-based).
    :ivar tid: the most probable tuple at that rank.
    :ivar probability: P(tuple occupies the rank).
    """

    rank: int
    tid: Any
    probability: float


def u_kranks(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    *,
    p_tau: float = DEFAULT_P_TAU,
    depth: int | None = None,
) -> list[URankAnswer]:
    """The U-kRanks answers for ranks 1..k.

    >>> from repro.datasets.soldier import soldier_table
    >>> answers = u_kranks(soldier_table(), "score", 2, p_tau=0)
    >>> [a.rank for a in answers]
    [1, 2]
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    scored = prepare_scored_prefix(table, scorer, k, p_tau=p_tau, depth=depth)
    return u_kranks_scored(scored, k)


def u_kranks_scored(scored: ScoredTable, k: int) -> list[URankAnswer]:
    """U-kRanks over an already rank-ordered (truncated) input."""
    n = len(scored)
    best_prob = [0.0] * k
    best_tid: list[Any] = [None] * k
    for pos in range(n):
        ranks = rank_distribution(scored, pos, k)
        for i in range(k):
            if ranks[i] > best_prob[i]:
                best_prob[i] = float(ranks[i])
                best_tid[i] = scored[pos].tid
    return [
        URankAnswer(i + 1, best_tid[i], best_prob[i])
        for i in range(k)
        if best_tid[i] is not None
    ]
