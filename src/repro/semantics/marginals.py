"""Rank-marginal engine shared by the category-(2) semantics.

For a tuple ``t`` at position ``pos`` of the canonical rank order, the
probability that exactly ``i`` higher-ranked tuples exist decides both
"t is at rank i+1" (U-kRanks) and "t is in the top-k" (PT-k and
Global-Topk).  Under the ME model the count of existing higher-ranked
tuples is a sum of independent group indicators: each ME group
contributes 1 with probability equal to its mass above ``pos``
(excluding ``t``'s own group, whose above-``pos`` members cannot
coexist with ``t``) — a Poisson-binomial distribution computed by a
standard O(n·k) dynamic program per tuple.

Ties are resolved by the canonical ``(score desc, prob desc)`` order:
"higher-ranked" means earlier in that order, the same convention under
which the Section-3 algorithms operate (see DESIGN.md).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable


def _group_masses_above(
    scored: ScoredTable, pos: int, exclude_group: int
) -> list[float]:
    """Per-group probability of contributing one tuple above ``pos``.

    Groups without members above ``pos`` contribute nothing and are
    omitted; ``exclude_group`` (the target tuple's own group) is always
    omitted because its above-``pos`` members cannot coexist with the
    target tuple.
    """
    masses: dict[int, float] = {}
    for index in range(pos):
        item = scored[index]
        if item.group == exclude_group:
            continue
        masses[item.group] = masses.get(item.group, 0.0) + item.prob
    return [mass for mass in masses.values() if mass > 0.0]


def higher_count_distribution(
    scored: ScoredTable, pos: int, max_count: int
) -> np.ndarray:
    """P(exactly i higher-ranked tuples exist), for i = 0..max_count.

    The ``max_count`` entry absorbs nothing — counts above it are
    simply not tracked (they never matter: the callers only need
    counts below k).

    :returns: array of length ``max_count + 1``.
    """
    if max_count < 0:
        raise AlgorithmError(f"max_count must be >= 0, got {max_count}")
    masses = _group_masses_above(scored, pos, scored[pos].group)
    dist = np.zeros(max_count + 1)
    dist[0] = 1.0
    for q in masses:
        # dist'[i] = dist[i] * (1-q) + dist[i-1] * q, truncated.
        dist[1:] = dist[1:] * (1.0 - q) + dist[:-1] * q
        dist[0] *= 1.0 - q
    return dist


def rank_distribution(
    scored: ScoredTable, pos: int, k: int
) -> np.ndarray:
    """P(tuple at ``pos`` occupies rank i), for ranks i = 1..k.

    "Occupies rank i" means the tuple exists and exactly ``i - 1``
    higher-ranked tuples exist.

    :returns: array of length ``k`` (index 0 is rank 1).
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    item = scored[pos]
    counts = higher_count_distribution(scored, pos, k - 1)
    return item.prob * counts


def top_k_probability(scored: ScoredTable, pos: int, k: int) -> float:
    """P(tuple at ``pos`` is among the top-k) = sum of its rank probs."""
    return float(rank_distribution(scored, pos, k).sum())


def top_k_probabilities(
    scored: ScoredTable, k: int
) -> dict[Any, float]:
    """Top-k probability of every tuple, keyed by tid.

    O(n^2 k); fine for the scan-depth-truncated prefixes the library
    works with.
    """
    return {
        scored[pos].tid: top_k_probability(scored, pos, k)
        for pos in range(len(scored))
    }
