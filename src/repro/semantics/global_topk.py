"""Global-Topk (Zhang & Chomicki, DBRank 2008).

The answer is the k tuples with the *highest probability of being in
the top-k* across possible worlds — a category-(2) semantics with a
fixed answer size.  The paper's related-work section highlights that
Zhang & Chomicki list score sensitivity and non-injective scoring as
open problems, both of which this library's core semantics addresses.
"""

from __future__ import annotations

from typing import Any

from repro.core.distribution import (
    DEFAULT_P_TAU,
    ScorerLike,
    prepare_scored_prefix,
)
from repro.exceptions import AlgorithmError
from repro.semantics.marginals import top_k_probability
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable


def global_topk(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    *,
    p_tau: float = DEFAULT_P_TAU,
    depth: int | None = None,
) -> list[tuple[Any, float]]:
    """The k tuples with the highest top-k probability.

    :returns: ``(tid, top-k probability)`` pairs, probability
        descending; at most k entries.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    scored = prepare_scored_prefix(table, scorer, k, p_tau=p_tau, depth=depth)
    return global_topk_scored(scored, k)


def global_topk_scored(
    scored: ScoredTable, k: int
) -> list[tuple[Any, float]]:
    """Global-Topk over an already rank-ordered (truncated) input."""
    probs = [
        (scored[pos].tid, top_k_probability(scored, pos, k))
        for pos in range(len(scored))
    ]
    probs.sort(key=lambda pair: -pair[1])
    return probs[:k]
