"""PT-k (Hua, Pei, Zhang & Lin, SIGMOD 2008): probabilistic threshold
top-k.

The answer is the set of all tuples whose probability of being in the
top-k (across possible worlds) is at least a user threshold ``p``.
A category-(2), marginal semantics: the answer size varies with the
threshold and members need not be mutually compatible.
"""

from __future__ import annotations

from typing import Any

from repro.core.distribution import (
    DEFAULT_P_TAU,
    ScorerLike,
    prepare_scored_prefix,
)
from repro.exceptions import AlgorithmError
from repro.semantics.marginals import top_k_probability
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable


def pt_k(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    threshold: float,
    *,
    p_tau: float = DEFAULT_P_TAU,
    depth: int | None = None,
) -> list[tuple[Any, float]]:
    """All tuples with top-k probability >= ``threshold``.

    :returns: ``(tid, top-k probability)`` pairs, probability
        descending (ties broken by rank order).
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    if not 0.0 < threshold <= 1.0:
        raise AlgorithmError(
            f"threshold must be in (0, 1], got {threshold!r}"
        )
    scored = prepare_scored_prefix(table, scorer, k, p_tau=p_tau, depth=depth)
    return pt_k_scored(scored, k, threshold)


def pt_k_scored(
    scored: ScoredTable, k: int, threshold: float
) -> list[tuple[Any, float]]:
    """PT-k over an already rank-ordered (truncated) input."""
    answers: list[tuple[Any, float]] = []
    for pos in range(len(scored)):
        prob = top_k_probability(scored, pos, k)
        if prob >= threshold:
            answers.append((scored[pos].tid, prob))
    answers.sort(key=lambda pair: -pair[1])
    return answers
