"""U-Topk (Soliman, Ilyas & Chang): the most probable top-k vector.

The answer is the k-tuple vector maximizing the probability of being
the top-k across all possible worlds.  We implement the optimal
best-first search over rank-order prefixes: a state is a prefix of the
canonical order together with the subset of its tuples chosen so far;
extending a state multiplies its probability by conditional *hazard*
factors (see :mod:`repro.core.state_expansion`), which are at most 1,
so probabilities decrease monotonically along a branch and the first
completed state popped from the max-heap is optimal (A* with a trivial
admissible heuristic).

Ties: the paper notes U-Topk is undefined under non-injective scoring;
we resolve ties with the same canonical ``(score desc, prob desc)``
order as everything else, i.e. the returned vector maximizes the
probability of being the *first-k-existing* configuration.  For
injective scores this coincides with the original definition.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, NamedTuple

from repro.core.distribution import (
    DEFAULT_P_TAU,
    ScorerLike,
    prepare_scored_prefix,
)
from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable


class UTopkResult(NamedTuple):
    """The U-Topk answer.

    :ivar vector: tids of the most probable top-k vector, rank order.
    :ivar probability: its probability of being the top-k.
    :ivar total_score: its total score (used by the typicality
        comparisons of Section 5).
    """

    vector: tuple[Any, ...]
    probability: float
    total_score: float


def u_topk(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    *,
    p_tau: float = DEFAULT_P_TAU,
    depth: int | None = None,
    state_limit: int = 2_000_000,
) -> UTopkResult | None:
    """Compute the U-Topk answer of ``table`` under ``scorer``.

    :param p_tau: scan-depth threshold (Theorem 2 applies to U-Topk
        too: a vector needs probability mass to win).
    :param depth: explicit scan-depth override.
    :param state_limit: safety valve on the number of expanded states;
        exceeded only on adversarial inputs where every vector has
        near-zero probability.
    :returns: the result, or ``None`` when no complete k-vector has
        positive probability within the scanned prefix.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    scored = prepare_scored_prefix(table, scorer, k, p_tau=p_tau, depth=depth)
    return u_topk_scored(scored, k, state_limit=state_limit)


def u_topk_scored(
    scored: ScoredTable,
    k: int,
    *,
    state_limit: int = 2_000_000,
) -> UTopkResult | None:
    """U-Topk over an already rank-ordered (and truncated) input."""
    n = len(scored)
    if n < k:
        return None
    # Hazard factors per position (see state_expansion): conditional on
    # "no group mate above was chosen / all unchosen ones absent".
    take = [0.0] * n
    skip = [0.0] * n
    multi = [False] * n
    mass_above: dict[int, float] = {}
    for pos in range(n):
        item = scored[pos]
        if len(scored.group_positions(item.group)) > 1:
            multi[pos] = True
            before = mass_above.get(item.group, 0.0)
            mass_above[item.group] = before + item.prob
            denom = 1.0 - before
            take[pos] = item.prob / denom
            skip[pos] = max(0.0, (denom - item.prob) / denom)
        else:
            take[pos] = item.prob
            skip[pos] = 1.0 - item.prob

    # Heap entries: (-prob, tiebreak, pos, count, chosen, groups).
    counter = itertools.count()
    heap: list[tuple] = [(-1.0, next(counter), 0, 0, (), frozenset())]
    expanded = 0
    while heap:
        neg_prob, _, pos, count, chosen, groups = heapq.heappop(heap)
        prob = -neg_prob
        if prob <= 0.0:
            break
        if count == k:
            vector = tuple(scored[p].tid for p in chosen)
            score = sum(scored[p].score for p in chosen)
            return UTopkResult(vector, prob, score)
        expanded += 1
        if expanded > state_limit:
            raise AlgorithmError(
                f"u_topk exceeded the state limit of {state_limit}; "
                "raise state_limit or lower the scan depth"
            )
        if pos >= n or n - pos < k - count:
            continue
        item = scored[pos]
        consumed = multi[pos] and item.group in groups
        if not consumed and take[pos] > 0.0:
            new_groups = groups | {item.group} if multi[pos] else groups
            heapq.heappush(
                heap,
                (
                    -(prob * take[pos]),
                    next(counter),
                    pos + 1,
                    count + 1,
                    chosen + (pos,),
                    new_groups,
                ),
            )
        skip_prob = prob if consumed else prob * skip[pos]
        if skip_prob > 0.0:
            heapq.heappush(
                heap,
                (-skip_prob, next(counter), pos + 1, count, chosen, groups),
            )
    return None


def vector_top_k_probability(
    scored: ScoredTable, positions: tuple[int, ...]
) -> float:
    """Exact probability that the tuples at ``positions`` (ascending)
    form the first-k-existing configuration.

    Closed form: product of the chosen tuples' probabilities times, for
    every ME group without a chosen member, ``1 - (group mass ranked
    above the last chosen position)``.  Used by tests as an independent
    check of the search's state probabilities.
    """
    if not positions:
        raise AlgorithmError("empty vector")
    cutoff = positions[-1]
    chosen_groups: set[int] = set()
    prob = 1.0
    for pos in positions:
        item = scored[pos]
        if item.group in chosen_groups:
            return 0.0
        chosen_groups.add(item.group)
        prob *= item.prob
    masses: dict[int, float] = {}
    for pos in range(cutoff):
        item = scored[pos]
        if item.group in chosen_groups:
            continue
        masses[item.group] = masses.get(item.group, 0.0) + item.prob
    for mass in masses.values():
        prob *= max(0.0, 1.0 - mass)
    return prob
