"""Rank-ordered segment index: the shared delta-maintenance substrate.

:class:`RankedSegments` keeps a changing set of ``(tid, score, prob)``
entries in the canonical rank order of the paper's algorithms —
descending ``(score, prob)`` with a caller-supplied arrival sequence
breaking remaining ties, i.e. exactly the stable
:class:`~repro.uncertain.scoring.ScoredTable` sort — split into small
contiguous *segments* with per-segment probability-mass sums.

Two delta-maintenance layers build on it:

* :class:`repro.stream.delta.DeltaWindowState` attaches cached partial
  DP states to each segment (via :attr:`RankedSegments.segment_class`)
  and folds them per query — the sliding-window path of PR 2;
* :class:`repro.standing.registry.PrefixMirror` uses the bare index to
  keep a mutable table's scored rank order (and Theorem-2 scan depth)
  current per mutation, so a standing query's prefix stage is patched
  in O(segment) instead of re-scored and re-sorted in O(n log n).

``insert``/``remove`` edit exactly one segment (splitting it at twice
the target size) and mark it stale through :meth:`RankSegment.
on_change`, which subclasses override to invalidate their cached
state.  :meth:`RankedSegments.scan_depth` replicates
:func:`repro.core.scan_depth.scan_depth` for singleton ME groups
(``mu`` degenerates to the plain prefix mass), using the per-segment
mass sums to skip whole segments in O(1) while the accumulated mass
cannot yet reach the threshold.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Iterator

from repro.core.scan_depth import scan_depth_threshold

#: Default rows per segment; splits happen at twice this.
DEFAULT_SEGMENT_SIZE = 32


def rank_key(score: float, prob: float, seq: int) -> tuple:
    """The canonical sort key: descending ``(score, prob)``, arrival
    (``seq``) breaking full ties — the stable :class:`ScoredTable`
    order when ``seq`` follows table position."""
    return (-score, -prob, seq)


class RankEntry:
    """One indexed tuple: its rank key plus the raw columns."""

    __slots__ = ("key", "tid", "score", "prob")

    def __init__(self, key: tuple, tid: Any, score: float, prob: float):
        self.key = key
        self.tid = tid
        self.score = score
        self.prob = prob

    def __lt__(self, other: "RankEntry") -> bool:
        return self.key < other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankEntry(tid={self.tid!r}, score={self.score}, prob={self.prob})"


class RankSegment:
    """A contiguous run of rank-ordered entries with a mass sum.

    Subclasses attach cached per-segment state (e.g. partial DP
    columns) and override :meth:`on_change` to invalidate it.
    """

    __slots__ = ("entries", "mass", "stale")

    def __init__(self, entries: list[RankEntry]):
        self.entries = entries
        self.mass = sum(e.prob for e in entries)
        self.stale = True

    def on_change(self) -> None:
        """Called after this segment's entry list was edited."""
        self.stale = True


class RankedSegments:
    """A mutable rank index over ``(tid, score, prob)`` entries.

    :param segment_size: target rows per segment (splits at twice it).
    """

    #: The segment type; subclass to attach cached per-segment state.
    segment_class: type[RankSegment] = RankSegment

    def __init__(self, *, segment_size: int = DEFAULT_SEGMENT_SIZE) -> None:
        self._segment_size = max(2, segment_size)
        self._segments: list[RankSegment] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def segments(self) -> list[RankSegment]:
        """The segments in rank order (read-only by convention)."""
        return self._segments

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, tid: Any, score: float, prob: float, seq: int) -> None:
        """Add one entry at its canonical rank position (O(segment))."""
        entry = RankEntry(rank_key(score, prob, seq), tid, score, prob)
        if not self._segments:
            self._segments.append(self.segment_class([entry]))
            self._count += 1
            return
        index = max(
            0,
            bisect_left(
                [seg.entries[0].key for seg in self._segments], entry.key
            )
            - 1,
        )
        segment = self._segments[index]
        insort(segment.entries, entry)
        segment.mass += prob
        segment.on_change()
        self._count += 1
        if len(segment.entries) > 2 * self._segment_size:
            mid = len(segment.entries) // 2
            right = self.segment_class(segment.entries[mid:])
            del segment.entries[mid:]
            segment.mass = sum(e.prob for e in segment.entries)
            self._segments.insert(index + 1, right)

    def remove(self, tid: Any, score: float, prob: float, seq: int) -> None:
        """Drop the entry with this exact rank key (O(segment)).

        :raises KeyError: when no entry matches ``tid`` at the key.
        """
        key = rank_key(score, prob, seq)
        for si, segment in enumerate(self._segments):
            if segment.entries and segment.entries[-1].key >= key:
                position = bisect_left(
                    [e.key for e in segment.entries], key
                )
                while position < len(segment.entries):
                    if segment.entries[position].tid == tid:
                        segment.mass -= segment.entries[position].prob
                        del segment.entries[position]
                        segment.on_change()
                        self._count -= 1
                        if not segment.entries:
                            del self._segments[si]
                        return
                    position += 1
                break
        raise KeyError(f"tuple {tid!r} not in the rank index")

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def entry_at(self, index: int) -> RankEntry:
        """The entry at a global rank position (O(#segments))."""
        for segment in self._segments:
            if index < len(segment.entries):
                return segment.entries[index]
            index -= len(segment.entries)
        raise IndexError(index)

    def __iter__(self) -> Iterator[RankEntry]:
        for segment in self._segments:
            yield from segment.entries

    def rows(self, depth: int) -> list[RankEntry]:
        """The first ``depth`` entries in rank order."""
        out: list[RankEntry] = []
        for segment in self._segments:
            take = depth - len(out)
            if take <= 0:
                break
            out.extend(segment.entries[:take])
        return out

    # ------------------------------------------------------------------
    # Theorem-2 depth (singleton groups)
    # ------------------------------------------------------------------
    def scan_depth(self, k: int, p_tau: float) -> int:
        """Theorem-2 depth over the rank order.

        Replicates :func:`repro.core.scan_depth.scan_depth` for
        singleton groups (``mu`` is the plain prefix mass), using the
        per-segment mass sums to skip whole segments in O(1) while the
        accumulated mass cannot yet reach the threshold.
        """
        if p_tau <= 0.0:
            return self._count
        threshold = scan_depth_threshold(k, p_tau)
        mass = 0.0
        position = 0
        stop = None
        for segment in self._segments:
            if mass + segment.mass < threshold:
                # No row inside can satisfy mu >= threshold yet.
                mass += segment.mass
                position += len(segment.entries)
                continue
            for entry in segment.entries:
                if mass >= threshold and position >= k:
                    stop = position
                    break
                mass += entry.prob
                position += 1
            if stop is not None:
                break
        if stop is None:
            return self._count
        # Extend to the stopping tuple's tie-group boundary.
        stop_score = self.entry_at(stop).score
        if self.entry_at(stop - 1).score != stop_score:
            return stop
        end = stop + 1
        while end < self._count and self.entry_at(end).score == stop_score:
            end += 1
        return end
