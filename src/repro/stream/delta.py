"""Delta-maintained sliding-window top-k state (segment DP caches).

:class:`DeltaWindowState` keeps the window's tuples in canonical rank
order (descending ``(score, prob)``, arrival order breaking ties —
exactly the :class:`~repro.uncertain.scoring.ScoredTable` sort) inside
a :class:`~repro.stream.segments.RankedSegments` index, and attaches
two families of cached partial DP states to each segment:

* ``exist[j]`` — the distribution of the total score of exactly ``j``
  existing rows (with the absent factor of every other segment row
  applied): the forward DP columns of Section 3.2, which are a
  symmetric function of the row set and therefore survive changes
  elsewhere in the window;
* ``ending[i]`` — the summed "exit" contributions of vectors whose
  last (k-th) pick lands in this segment, with ``i`` picks above it
  inside the segment.

Both are linear in the prefix state, so a query folds segment states
left-to-right instead of re-running the dynamic program over every
row: combining a prefix state ``P`` with a segment contributes
``sum_j P[j] (x) ending[k-1-j]`` to the answer and advances ``P`` by
``sum_i P[i] (x) exist[j-i]`` — the two-stack-style trick of keeping
partial aggregates per block so a slide only rebuilds the block it
touches.  ``insert``/``remove`` therefore do amortized sub-window
work: they edit one segment of the index and mark it stale; stale
segments rebuild lazily (O(segment * k)) the next time a query
consumes them.

The rank-order/segment-split/scan-depth machinery itself lives in
:mod:`repro.stream.segments` (shared with the standing-query
maintainer's :class:`~repro.standing.registry.PrefixMirror`); this
module owns only the DP-cell caching layered on top.

The Theorem-2 truncation is honoured incrementally: the query walks
segments only up to the scan depth (recomputed in O(depth) per query
from per-segment mass sums), and the boundary segment is processed row
by row, so the consumed row set matches a from-scratch
:func:`~repro.core.scan_depth.scan_depth` exactly.

Scope: the state assumes *independent* tuples (singleton ME groups).
:class:`~repro.stream.window.SlidingWindowTopK` routes queries through
this state only while the window holds no live multi-member ME group
and falls back to the full Section-3 pipeline otherwise — expiry of a
group member that makes the group degrade to a singleton re-enables
the delta path automatically.  Cells here carry no representative
vectors (scores and probabilities only); representative vectors are
reconstructed *lazily* from the cached rank order — the window wraps
delta results in a :class:`~repro.core.pmf.LazyVectorPMF` whose first
vector access runs one vector-carrying dynamic program over
:meth:`DeltaWindowState.vector_inputs` (the segments' rank-ordered
rows up to the incremental Theorem-2 depth, snapshot at query time so
later slides cannot skew the reconstruction).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.dp import (  # stable k-way merge + segment sums (shared)
    _merge_parts,
    _segment_sums,
)
from repro.core.pmf import ScorePMF
from repro.stream.segments import (
    DEFAULT_SEGMENT_SIZE,
    RankedSegments,
    RankSegment,
)

__all__ = [
    "DEFAULT_SEGMENT_SIZE",
    "DeltaWindowState",
    "reconstruct_vector_pmf",
]

#: A light DP cell: ``(scores ascending, probs)`` numpy pair, or None.
_Cell = tuple


def _base_cell() -> _Cell:
    return (np.zeros(1), np.ones(1))


def _reduce(scores: np.ndarray, probs: np.ndarray, max_lines: int) -> _Cell:
    """Merge equal scores, then grid-coalesce to the line budget.

    The vectorless twin of :func:`repro.core.dp._reduce_cell` (same
    merge rule and the same span/max_lines grid-width bound).
    """
    if len(scores) > 1:
        dup = scores[1:] == scores[:-1]
        if dup.any():
            boundaries = np.r_[True, ~dup]
            starts = np.flatnonzero(boundaries)
            probs = _segment_sums(probs, np.cumsum(boundaries) - 1)
            scores = scores[starts]
    if len(scores) > max_lines:
        low = scores[0]
        width = (scores[-1] - low) / max_lines
        bucket = np.minimum(
            ((scores - low) / width).astype(np.int64), max_lines - 1
        )
        boundaries = np.r_[True, bucket[1:] != bucket[:-1]]
        segments = np.cumsum(boundaries) - 1
        weighted = _segment_sums(probs * scores, segments)
        probs = _segment_sums(probs, segments)
        scores = weighted / probs
    return scores, probs


def _merge_reduce(parts: list[_Cell], max_lines: int) -> _Cell | None:
    """Union of cells (stable k-way merge), reduced to the budget."""
    if not parts:
        return None
    scores, probs = parts[0] if len(parts) == 1 else _merge_parts(parts)
    return _reduce(scores, probs, max_lines)


def _shift(cell: _Cell, score: float, prob: float) -> _Cell:
    """The "take" step: add a tuple's score, scale by its probability."""
    return cell[0] + score, cell[1] * prob


def _fold_row(
    state: list[_Cell | None],
    score: float,
    prob: float,
    max_lines: int,
) -> list[_Cell | None]:
    """Advance forward DP columns by one independent row."""
    absent = 1.0 - prob
    new: list[_Cell | None] = [None] * len(state)
    for j in range(len(state) - 1, -1, -1):
        parts: list[_Cell] = []
        if state[j] is not None and absent > 0.0:
            parts.append((state[j][0], state[j][1] * absent))
        if j > 0 and state[j - 1] is not None:
            parts.append(_shift(state[j - 1], score, prob))
        new[j] = _merge_reduce(parts, max_lines)
    return new


def _cross(a: _Cell, b: _Cell, max_lines: int) -> _Cell:
    """Convolution of two cells (every pair of lines), reduced.

    Each line of the smaller cell shifts the larger one into an
    already-ascending part, so the pairs merge without a sort.
    """
    if len(a[0]) > len(b[0]):
        a, b = b, a
    parts = [
        (a[0][i] + b[0], a[1][i] * b[1]) for i in range(len(a[0]))
    ]
    return _merge_reduce(parts, max_lines)


def _fold_states(
    prefix: list[_Cell | None],
    exist: list[_Cell | None],
    max_lines: int,
) -> list[_Cell | None]:
    """Advance prefix DP columns by a whole segment's exist states."""
    columns = len(prefix)
    new: list[_Cell | None] = [None] * columns
    for j in range(columns):
        parts: list[_Cell] = []
        for i in range(j + 1):
            if prefix[i] is not None and exist[j - i] is not None:
                parts.append(_cross(prefix[i], exist[j - i], max_lines))
        new[j] = _merge_reduce(parts, max_lines)
    return new


class _DPSegment(RankSegment):
    """A rank segment plus its cached partial DP states."""

    __slots__ = ("exist", "ending", "cache_lines")

    def __init__(self, entries):
        super().__init__(entries)
        self.exist: list[_Cell | None] | None = None
        self.ending: list[_Cell | None] | None = None
        #: Widest cell (in lines) of the last rebuild; None = never built.
        self.cache_lines: int | None = None

    def rebuild(self, k: int, max_lines: int) -> None:
        """Recompute the segment's partial DP states (O(rows * k))."""
        state: list[_Cell | None] = [_base_cell()] + [None] * (k - 1)
        take_parts: list[list[_Cell]] = [[] for _ in range(k)]
        for entry in self.entries:
            for i in range(k):
                if state[i] is not None:
                    take_parts[i].append(
                        _shift(state[i], entry.score, entry.prob)
                    )
            state = _fold_row(state, entry.score, entry.prob, max_lines)
        self.exist = state
        self.ending = [
            _merge_reduce(parts, max_lines) for parts in take_parts
        ]
        self.mass = sum(e.prob for e in self.entries)
        self.stale = False
        self.cache_lines = max(
            (
                len(cell[0])
                for cell in (*self.exist, *self.ending)
                if cell is not None
            ),
            default=1,
        )


class _DPIndex(RankedSegments):
    segment_class = _DPSegment


class DeltaWindowState:
    """Incrementally maintained top-k DP state of a sliding window.

    :param k: top-k size (>= 1).
    :param max_lines: per-cell coalescing budget.
    :param segment_size: target rows per segment (splits at twice it).
    """

    def __init__(
        self,
        k: int,
        *,
        max_lines: int,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> None:
        self._k = k
        self._max_lines = max_lines
        self._index = _DPIndex(segment_size=segment_size)

    def __len__(self) -> int:
        return len(self._index)

    @property
    def _segments(self) -> list[_DPSegment]:
        """The index's segments (kept for tests and introspection)."""
        return self._index.segments  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, tid: Any, score: float, prob: float, seq: int) -> None:
        """Add one tuple at its canonical rank position.

        ``seq`` is the arrival number: the canonical order is
        descending ``(score, prob)`` with arrival breaking ties, i.e.
        the exact :class:`ScoredTable` sort of the window's table.
        """
        self._index.insert(tid, score, prob, seq)

    def remove(self, tid: Any, score: float, prob: float, seq: int) -> None:
        """Drop an expired tuple (located by its rank key)."""
        try:
            self._index.remove(tid, score, prob, seq)
        except KeyError:
            raise KeyError(
                f"tuple {tid!r} not in the delta window state"
            ) from None

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _scan_depth(self, p_tau: float) -> int:
        """Theorem-2 depth over the rank order (mass-skipping)."""
        return self._index.scan_depth(self._k, p_tau)

    def _cache_worthwhile(self, segment: _DPSegment) -> bool:
        """Whether the segment's cached states should serve the query.

        Folding a cached segment costs O(k^2) cell convolutions of up
        to ``cache_lines`` lines each, while walking its rows costs
        O(rows * k) two-part merges — so caches win only while their
        cells stay narrow (``cache_lines * k <= 2 * rows``).  Stale
        segments rebuild optimistically once; when the rebuild comes
        out saturated, later slides skip the rebuild and walk instead.
        """
        rows = len(segment.entries)
        if segment.stale:
            if (
                segment.cache_lines is not None
                and segment.cache_lines * self._k > 2 * rows
            ):
                return False
            segment.rebuild(self._k, self._max_lines)
        return segment.cache_lines * self._k <= 2 * rows

    def vector_inputs(
        self, p_tau: float
    ) -> list[tuple[Any, float, float]]:
        """Snapshot of the consumed rows, ``(tid, score, prob)`` in
        canonical rank order up to the incremental Theorem-2 depth.

        This is the cached segment state a lazy vector reconstruction
        runs over: no re-scoring, no re-sorting — the segments already
        hold the window's rank order, and the depth matches what
        :meth:`query` consumed.  Taken as a snapshot so the
        reconstruction stays correct even if the window slides before
        the vectors are first read.
        """
        depth = self._scan_depth(p_tau)
        return [
            (entry.tid, entry.score, entry.prob)
            for entry in self._index.rows(depth)
        ]

    def query(self, p_tau: float) -> ScorePMF:
        """The window's top-k score distribution.

        Folds cached segment states up to the Theorem-2 depth; only the
        boundary segment (and stale segments) do per-row work.
        """
        k = self._k
        max_lines = self._max_lines
        depth = self._scan_depth(p_tau)
        prefix: list[_Cell | None] = [_base_cell()] + [None] * (k - 1)
        answer_parts: list[_Cell] = []
        remaining = depth
        for segment in self._segments:
            if remaining <= 0:
                break
            rows = segment.entries
            if len(rows) <= remaining and self._cache_worthwhile(segment):
                for j in range(k):
                    ending = segment.ending[k - 1 - j]
                    if prefix[j] is not None and ending is not None:
                        answer_parts.append(
                            _cross(prefix[j], ending, max_lines)
                        )
                prefix = _fold_states(prefix, segment.exist, max_lines)
                remaining -= len(rows)
            else:
                # Per-row walk: the truncation-boundary segment, and
                # segments whose cells are too wide for the cached
                # convolutions to beat walking (same math either way).
                for entry in rows[:remaining]:
                    if prefix[k - 1] is not None:
                        answer_parts.append(
                            _shift(prefix[k - 1], entry.score, entry.prob)
                        )
                    prefix = _fold_row(
                        prefix, entry.score, entry.prob, max_lines
                    )
                remaining = max(0, remaining - len(rows))
        final = _merge_reduce(answer_parts, max_lines)
        if final is None:
            return ScorePMF(())
        scores, probs = final
        return ScorePMF(
            (float(s), float(p), None) for s, p in zip(scores, probs)
        )


def reconstruct_vector_pmf(
    rows: list[tuple[Any, float, float]], k: int, max_lines: int
) -> ScorePMF:
    """A vector-carrying top-k distribution over snapshot ``rows``.

    Runs the exact bottom-up dynamic program of :mod:`repro.core.dp`
    (independent tuples, every exit enabled) over the rank-ordered
    rows :meth:`DeltaWindowState.vector_inputs` captured — the same
    computation the from-scratch session path performs, minus the
    re-scoring, validation and sorting of the window table.  Each
    line carries the most probable top-k vector attaining its score.
    """
    from repro.core.dp import _cell_to_pmf, _dp_run, _Unit

    units = [_Unit([(score, prob, tid)]) for tid, score, prob in rows]
    return _cell_to_pmf(
        _dp_run(units, k, [True] * len(units), max_lines)
    )
