"""Sliding-window top-k over uncertain streams (extension).

The paper's related work (Section 6) points to Jin et al., "Sliding-
Window Top-k Queries on Uncertain Streams" (VLDB 2008).  This
subpackage carries the paper's *score-distribution* semantics into
that setting: :class:`~repro.stream.window.SlidingWindowTopK`
maintains the most recent W uncertain tuples (with their ME groups)
and serves the top-k score distribution and c-Typical answers of the
current window.
"""

from repro.stream.delta import DeltaWindowState
from repro.stream.window import SlidingWindowTopK, WindowSnapshot

__all__ = ["DeltaWindowState", "SlidingWindowTopK", "WindowSnapshot"]
