"""Sliding-window maintenance of the top-k score distribution.

:class:`SlidingWindowTopK` keeps the last ``window`` tuples of an
uncertain stream.  Tuples may declare an ME-group label; a group is
live only while at least two of its members are inside the window
(expired members simply fold back into the group's "absent" mass,
which is sound for the first-k-existing semantics because an expired
tuple can no longer appear in any answer).

Maintenance strategy: while the window holds only independent tuples
(no live multi-member ME group) and ``incremental=True`` (the
default), queries are served by a delta-maintained
:class:`~repro.stream.delta.DeltaWindowState` — the window's rank
order and per-segment partial DP states are updated in amortized
sub-window time per slide, instead of rebuilding, re-scoring and
re-sorting the whole window per query.  Windows with a live ME group
(and ``incremental=False`` windows) fall back to a from-scratch
recompute through a private :class:`~repro.api.session.Session`,
whose stage caches are keyed by the materialized window table, so
repeated queries over an unchanged window stay memoized either way
and :meth:`SlidingWindowTopK.typical` at a new ``c`` reuses the
cached distribution instead of re-running the dynamic program.

The two paths agree on the consumed tuple set (the delta state
replicates the Theorem-2 scan depth incrementally); once the per-cell
line budget forces coalescing the two paths may place coalesced lines
a grid width apart (same bound as the DP's internal coalescing).

Delta-mode PMFs carry **lazily reconstructed** representative vectors:
the segment caches track scores and probabilities only, so the window
wraps delta results in a :class:`~repro.core.pmf.LazyVectorPMF` — the
first read of the vector column (JSON serialization, typical-answer
vectors) runs one vector-carrying dynamic program over the cached rank
order (:func:`repro.stream.delta.reconstruct_vector_pmf`), memoized
until the window slides.  Consumers that never touch vectors
(expectations, histograms, threshold queries) keep paying nothing, so
the delta path's slide-and-query speedup survives intact.  Under
line-budget coalescing the reconstruction pass may bucket lines
slightly differently; lines it cannot match keep ``vector=None``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Iterable, Mapping, NamedTuple

from repro.api.session import Session
from repro.api.spec import DEFAULT_MC_CONFIDENCE, SPEC_ALGORITHMS, QuerySpec
from repro.core.distribution import DEFAULT_P_TAU
from repro.core.dp import DEFAULT_MAX_LINES
from repro.core.pmf import LazyVectorPMF, ScorePMF
from repro.core.typical import TypicalResult, select_typical_clamped
from repro.exceptions import (
    AlgorithmError,
    DataModelError,
    InvalidProbabilityError,
    ScoringError,
)
from repro.stream.delta import DeltaWindowState, reconstruct_vector_pmf
from repro.uncertain.model import UncertainTuple, validate_probability
from repro.uncertain.table import UncertainTable


def _match_vectors(
    scores: tuple[float, ...], vector_pmf: ScorePMF
) -> list:
    """Align a reconstruction pass's vectors with delta-query scores.

    The two computations are mathematically identical over the same
    rows, so in the common (un-coalesced) regime the line sets match
    one to one — score for score — and the vectors transfer
    positionally.  Once the line budget forces coalescing, bucket
    boundaries may differ between the passes; every line is then
    matched by nearest score within a relative tolerance, and
    unmatched lines keep ``vector=None`` (a vector must attain its
    line's score, never merely sit at the same position).
    """
    from bisect import bisect_left

    def tolerance(score: float) -> float:
        return 1e-9 * max(1.0, abs(score))

    if len(vector_pmf) == len(scores) and all(
        abs(a - b) <= tolerance(a)
        for a, b in zip(scores, vector_pmf.scores)
    ):
        return list(vector_pmf.vectors)
    reference = vector_pmf.scores
    matched: list = []
    for score in scores:
        index = bisect_left(reference, score)
        best = None
        distance = float("inf")
        for candidate in (index - 1, index):
            if 0 <= candidate < len(reference):
                gap = abs(reference[candidate] - score)
                if gap < distance:
                    distance = gap
                    best = candidate
        matched.append(
            vector_pmf.vectors[best]
            if best is not None and distance <= tolerance(score)
            else None
        )
    return matched


class WindowSnapshot(NamedTuple):
    """Immutable view of one window state.

    :ivar table: the window contents as an uncertain table.
    :ivar pmf: the top-k score distribution of the window.
    :ivar arrivals: total number of tuples ever appended.
    """

    table: UncertainTable
    pmf: ScorePMF
    arrivals: int


class SlidingWindowTopK:
    """Top-k score distributions over the last ``window`` arrivals.

    :param window: window size W (>= 1), counted in tuples.
    :param k: top-k size (>= 1, must be <= window).
    :param score_attribute: the numeric attribute used as the score.
    :param p_tau: Theorem-2 truncation threshold for queries.
    :param max_lines: line-coalescing budget for queries.
    :param incremental: serve queries from the delta-maintained state
        while no ME group is live (default); ``False`` forces the
        from-scratch session path on every query.  Delta-mode PMFs
        (and the typical answers drawn from them) reconstruct their
        representative vectors lazily: the segment caches track
        scores and probabilities only, and the first vector access
        pays one vector-carrying DP over the cached rank order
        (memoized until the window slides).
    :param algorithm: the query pipeline's algorithm (default
        ``"dp"``).  ``"mc"`` serves every query from the Monte-Carlo
        answer engine — the escape hatch for windows too wide for the
        exact sweep — and (like any non-``"dp"`` choice) disables the
        delta-maintained path.  ``"auto"`` lets the planner apply its
        exact-cost model per query.
    :param epsilon: MC target CI half-width ±ε (``algorithm="mc"``).
    :param confidence: MC confidence level.
    :param samples: explicit MC world count (disables adaptive
        sample-size control).
    :param seed: MC sampling seed.

    >>> win = SlidingWindowTopK(window=4, k=2)
    >>> for i in range(6):
    ...     win.append({"score": float(i)}, probability=0.9)
    >>> len(win)
    4
    >>> win.distribution().scores[-1]   # best total = 5 + 4
    9.0
    """

    def __init__(
        self,
        window: int,
        k: int,
        *,
        score_attribute: str = "score",
        p_tau: float = DEFAULT_P_TAU,
        max_lines: int = DEFAULT_MAX_LINES,
        incremental: bool = True,
        algorithm: str = "dp",
        epsilon: float | None = None,
        confidence: float = DEFAULT_MC_CONFIDENCE,
        samples: int | None = None,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise AlgorithmError(f"window must be >= 1, got {window}")
        if not 1 <= k <= window:
            raise AlgorithmError(
                f"k must be in [1, window={window}], got {k}"
            )
        if not 0.0 <= p_tau < 1.0:
            # Validated up front so the delta and session paths cannot
            # diverge on invalid thresholds at query time.
            raise InvalidProbabilityError(
                f"p_tau must be in [0, 1), got {p_tau!r}"
            )
        if algorithm not in SPEC_ALGORITHMS:
            raise AlgorithmError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{SPEC_ALGORITHMS}"
            )
        self._window = window
        self._k = k
        self._score_attribute = score_attribute
        self._p_tau = p_tau
        self._max_lines = max_lines
        self._incremental = incremental
        self._algorithm = algorithm
        self._epsilon = epsilon
        self._confidence = confidence
        self._samples = samples
        self._seed = seed
        self._entries: deque[
            tuple[Any, Mapping[str, Any], float, Any, float, int]
        ] = deque()
        self._arrivals = 0
        self._counter = itertools.count()
        # Stage caches live in a private session keyed by the
        # materialized window table; a handful of entries suffice.
        # It serves ME-group windows and ``incremental=False``.
        self._session = Session(cache_size=8)
        self._cached_table: UncertainTable | None = None
        self._delta = DeltaWindowState(k, max_lines=max_lines)
        self._group_counts: dict[Any, int] = {}
        # Delta-path memoization, dropped whenever the window slides.
        self._cached_pmf: ScorePMF | None = None
        self._cached_typical: dict[int, TypicalResult] = {}

    # ------------------------------------------------------------------
    # Stream maintenance
    # ------------------------------------------------------------------
    def append(
        self,
        attributes: Mapping[str, Any],
        *,
        probability: float,
        group: Any = None,
        tid: Any = None,
    ) -> Any:
        """Append one uncertain tuple, expiring the oldest if full.

        :param attributes: tuple attributes (must contain the score
            attribute).
        :param probability: membership probability.
        :param group: optional ME-group label; tuples sharing a live
            label are mutually exclusive.
        :param tid: optional explicit tuple id (auto-assigned when
            omitted).
        :returns: the tuple id.
        """
        if self._score_attribute not in attributes:
            raise DataModelError(
                f"attributes missing score attribute "
                f"{self._score_attribute!r}"
            )
        try:
            score = float(attributes[self._score_attribute])
        except (TypeError, ValueError):
            raise ScoringError(
                f"attribute {self._score_attribute!r} is not numeric: "
                f"{attributes[self._score_attribute]!r}"
            ) from None
        probability = validate_probability(
            probability, context="window append"
        )
        if tid is None:
            tid = f"s{next(self._counter)}"
        seq = self._arrivals
        self._entries.append(
            (tid, dict(attributes), probability, group, score, seq)
        )
        if self._incremental:
            self._delta.insert(tid, score, probability, seq)
        if group is not None:
            self._group_counts[group] = self._group_counts.get(group, 0) + 1
        self._arrivals += 1
        while len(self._entries) > self._window:
            old = self._entries.popleft()
            if self._incremental:
                self._delta.remove(old[0], old[4], old[2], old[5])
            if old[3] is not None:
                remaining = self._group_counts[old[3]] - 1
                if remaining:
                    self._group_counts[old[3]] = remaining
                else:
                    del self._group_counts[old[3]]
        self._cached_table = None
        self._cached_pmf = None
        self._cached_typical.clear()
        return tid

    def extend(
        self,
        rows: Iterable[tuple[Mapping[str, Any], float]],
        *,
        group: Any = None,
    ) -> list[Any]:
        """Append several ``(attributes, probability)`` rows."""
        return [
            self.append(attributes, probability=probability, group=group)
            for attributes, probability in rows
        ]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def arrivals(self) -> int:
        """Total tuples ever appended."""
        return self._arrivals

    @property
    def k(self) -> int:
        """The query's k."""
        return self._k

    @property
    def window(self) -> int:
        """The window size W."""
        return self._window

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def table(self) -> UncertainTable:
        """The current window as an uncertain table (memoized).

        Group labels with a single surviving member degrade to
        singleton groups; group masses above 1 (possible when old
        members expired and new ones arrived under the same label) are
        rejected by table validation — use distinct labels per logical
        entity generation to avoid this.
        """
        if self._cached_table is not None:
            return self._cached_table
        tuples = [
            UncertainTuple(entry[0], entry[1], entry[2])
            for entry in self._entries
        ]
        groups: dict[Any, list[Any]] = {}
        for entry in self._entries:
            if entry[3] is not None:
                groups.setdefault(entry[3], []).append(entry[0])
        rules = [
            tuple(members)
            for members in groups.values()
            if len(members) > 1
        ]
        self._cached_table = UncertainTable(tuples, rules, name="window")
        return self._cached_table

    def _spec(self) -> QuerySpec:
        """The spec of the window's standing query (current contents)."""
        return QuerySpec(
            table=self.table(),
            scorer=self._score_attribute,
            k=self._k,
            p_tau=self._p_tau,
            max_lines=self._max_lines,
            algorithm=self._algorithm,
            epsilon=self._epsilon,
            confidence=self._confidence,
            samples=self._samples,
            seed=self._seed,
        )

    def _delta_eligible(self) -> bool:
        """True when the delta-maintained state may serve queries.

        A live multi-member ME group forces the full Section-3
        pipeline (the delta state models independent tuples only), as
        does any explicit non-``"dp"`` algorithm choice (the delta
        caches replicate the exact DP specifically); group expiry
        re-enables the delta path automatically.
        """
        return (
            self._incremental
            and self._algorithm == "dp"
            and not any(
                count > 1 for count in self._group_counts.values()
            )
        )

    def distribution(self) -> ScorePMF:
        """Top-k score distribution of the current window (memoized).

        Served from the delta-maintained segment states when eligible
        (see :mod:`repro.stream.delta`); otherwise recomputed through
        the session pipeline, whose stage caches memoize until the
        window slides.  Delta-mode results reconstruct their
        representative vectors lazily on first access (see the module
        docstring).
        """
        if not self._delta_eligible():
            return self._session.distribution(self._spec())
        if self._cached_pmf is None:
            base = self._delta.query(self._p_tau)
            if base.is_empty():
                self._cached_pmf = base
            else:
                rows = self._delta.vector_inputs(self._p_tau)
                k, max_lines = self._k, self._max_lines

                def fill(scores: tuple[float, ...]) -> list:
                    vector_pmf = reconstruct_vector_pmf(rows, k, max_lines)
                    return _match_vectors(scores, vector_pmf)

                self._cached_pmf = LazyVectorPMF(
                    zip(base.scores, base.probs, base.vectors), fill
                )
        return self._cached_pmf

    def typical(self, c: int) -> TypicalResult:
        """c-Typical-Topk answers of the current window.

        Different ``c`` values over an unchanged window reuse the
        cached distribution (the end-of-Section-4 pattern).
        """
        if not self._delta_eligible():
            return self._session.execute(self._spec().with_(c=c))
        result = self._cached_typical.get(c)
        if result is None:
            # Clamped: a window shorter than k has an empty PMF and
            # must yield the empty result, same as the session path.
            result = select_typical_clamped(self.distribution(), c)
            self._cached_typical[c] = result
        return result

    def snapshot(self) -> WindowSnapshot:
        """Freeze the current window state for downstream analysis."""
        return WindowSnapshot(self.table(), self.distribution(), self._arrivals)

    def expected_top_k_score(self) -> float:
        """E[top-k total score] of the current window."""
        return self.distribution().expectation()
