"""Sliding-window maintenance of the top-k score distribution.

:class:`SlidingWindowTopK` keeps the last ``window`` tuples of an
uncertain stream.  Tuples may declare an ME-group label; a group is
live only while at least two of its members are inside the window
(expired members simply fold back into the group's "absent" mass,
which is sound for the first-k-existing semantics because an expired
tuple can no longer appear in any answer).

Recomputation strategy: the window queries route through a private
:class:`~repro.api.session.Session`, whose stage caches are keyed by
the materialized window table — so the score distribution is computed
on demand with the Section-3 main algorithm and stays memoized until
the window contents change, and :meth:`SlidingWindowTopK.typical` at a
new ``c`` reuses the cached distribution instead of re-running the
dynamic program.  That gives amortized O(kn) per slide batch — the
right trade-off at the library level, since the dynamic program is
already linear in the window for fixed k; callers issuing one query
per arrival can batch arrivals between queries.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Iterable, Mapping, NamedTuple

from repro.api.session import Session
from repro.api.spec import QuerySpec
from repro.core.distribution import DEFAULT_P_TAU
from repro.core.dp import DEFAULT_MAX_LINES
from repro.core.pmf import ScorePMF
from repro.core.typical import TypicalResult
from repro.exceptions import AlgorithmError, DataModelError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable


class WindowSnapshot(NamedTuple):
    """Immutable view of one window state.

    :ivar table: the window contents as an uncertain table.
    :ivar pmf: the top-k score distribution of the window.
    :ivar arrivals: total number of tuples ever appended.
    """

    table: UncertainTable
    pmf: ScorePMF
    arrivals: int


class SlidingWindowTopK:
    """Top-k score distributions over the last ``window`` arrivals.

    :param window: window size W (>= 1), counted in tuples.
    :param k: top-k size (>= 1, must be <= window).
    :param score_attribute: the numeric attribute used as the score.
    :param p_tau: Theorem-2 truncation threshold for queries.
    :param max_lines: line-coalescing budget for queries.

    >>> win = SlidingWindowTopK(window=4, k=2)
    >>> for i in range(6):
    ...     win.append({"score": float(i)}, probability=0.9)
    >>> len(win)
    4
    >>> win.distribution().scores[-1]   # best total = 5 + 4
    9.0
    """

    def __init__(
        self,
        window: int,
        k: int,
        *,
        score_attribute: str = "score",
        p_tau: float = DEFAULT_P_TAU,
        max_lines: int = DEFAULT_MAX_LINES,
    ) -> None:
        if window < 1:
            raise AlgorithmError(f"window must be >= 1, got {window}")
        if not 1 <= k <= window:
            raise AlgorithmError(
                f"k must be in [1, window={window}], got {k}"
            )
        self._window = window
        self._k = k
        self._score_attribute = score_attribute
        self._p_tau = p_tau
        self._max_lines = max_lines
        self._entries: deque[tuple[Any, Mapping[str, Any], float, Any]] = (
            deque()
        )
        self._arrivals = 0
        self._counter = itertools.count()
        # Stage caches live in a private session keyed by the
        # materialized window table; a handful of entries suffice.
        self._session = Session(cache_size=8)
        self._cached_table: UncertainTable | None = None

    # ------------------------------------------------------------------
    # Stream maintenance
    # ------------------------------------------------------------------
    def append(
        self,
        attributes: Mapping[str, Any],
        *,
        probability: float,
        group: Any = None,
        tid: Any = None,
    ) -> Any:
        """Append one uncertain tuple, expiring the oldest if full.

        :param attributes: tuple attributes (must contain the score
            attribute).
        :param probability: membership probability.
        :param group: optional ME-group label; tuples sharing a live
            label are mutually exclusive.
        :param tid: optional explicit tuple id (auto-assigned when
            omitted).
        :returns: the tuple id.
        """
        if self._score_attribute not in attributes:
            raise DataModelError(
                f"attributes missing score attribute "
                f"{self._score_attribute!r}"
            )
        if tid is None:
            tid = f"s{next(self._counter)}"
        self._entries.append((tid, dict(attributes), probability, group))
        self._arrivals += 1
        while len(self._entries) > self._window:
            self._entries.popleft()
        self._cached_table = None
        return tid

    def extend(
        self,
        rows: Iterable[tuple[Mapping[str, Any], float]],
        *,
        group: Any = None,
    ) -> list[Any]:
        """Append several ``(attributes, probability)`` rows."""
        return [
            self.append(attributes, probability=probability, group=group)
            for attributes, probability in rows
        ]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def arrivals(self) -> int:
        """Total tuples ever appended."""
        return self._arrivals

    @property
    def k(self) -> int:
        """The query's k."""
        return self._k

    @property
    def window(self) -> int:
        """The window size W."""
        return self._window

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def table(self) -> UncertainTable:
        """The current window as an uncertain table (memoized).

        Group labels with a single surviving member degrade to
        singleton groups; group masses above 1 (possible when old
        members expired and new ones arrived under the same label) are
        rejected by table validation — use distinct labels per logical
        entity generation to avoid this.
        """
        if self._cached_table is not None:
            return self._cached_table
        tuples = [
            UncertainTuple(tid, attributes, probability)
            for tid, attributes, probability, _ in self._entries
        ]
        groups: dict[Any, list[Any]] = {}
        for tid, _, __, group in self._entries:
            if group is not None:
                groups.setdefault(group, []).append(tid)
        rules = [
            tuple(members)
            for members in groups.values()
            if len(members) > 1
        ]
        self._cached_table = UncertainTable(tuples, rules, name="window")
        return self._cached_table

    def _spec(self) -> QuerySpec:
        """The spec of the window's standing query (current contents)."""
        return QuerySpec(
            table=self.table(),
            scorer=self._score_attribute,
            k=self._k,
            p_tau=self._p_tau,
            max_lines=self._max_lines,
            algorithm="dp",
        )

    def distribution(self) -> ScorePMF:
        """Top-k score distribution of the current window (memoized)."""
        return self._session.distribution(self._spec())

    def typical(self, c: int) -> TypicalResult:
        """c-Typical-Topk answers of the current window.

        Different ``c`` values over an unchanged window reuse the
        session-cached distribution (the end-of-Section-4 pattern).
        """
        return self._session.execute(self._spec().with_(c=c))

    def snapshot(self) -> WindowSnapshot:
        """Freeze the current window state for downstream analysis."""
        return WindowSnapshot(self.table(), self.distribution(), self._arrivals)

    def expected_top_k_score(self) -> float:
        """E[top-k total score] of the current window."""
        return self.distribution().expectation()
