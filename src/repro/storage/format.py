"""The on-disk scored-table format and its reader.

A *packed table* is a directory holding one scored, rank-ordered
uncertain table in columnar form, written once by :func:`pack_table`
(``repro pack``) and served by :class:`TableStore` without ever
loading the table:

* ``meta.json`` — schema, shape, the packing scorer, the page size,
  and the per-page sidecar (cumulative probability mass and ME-group
  *spill*, see below);
* ``score.f8`` / ``prob.f8`` — float64 score and membership
  probability per rank position (the canonical sort order of
  :class:`~repro.uncertain.scoring.ScoredTable`: descending
  ``(score, prob)``, stable);
* ``group.i8`` — the dense ME-group id of each position, exactly as
  assigned by the originating
  :class:`~repro.uncertain.table.UncertainTable`;
* ``gend.i8`` — the **ME-group sidecar index**: for each position,
  the *last* rank position of that tuple's group, so "extend a depth
  until no group is split" is a bounded column scan
  (:meth:`TableStore.group_safe_depth`);
* ``order.i8`` — the tuple's original insertion index, so the full
  :class:`UncertainTable` (tuples *and* rules, with identical dense
  group ids) can be reconstructed for non-pushdown access paths;
* ``tid.dat`` + ``tid.off`` / ``attr.dat`` + ``attr.off`` — tuple ids
  and attribute mappings as concatenated JSON blobs with ``uint64``
  offset tables (``n + 1`` entries), so decoding a prefix touches
  only the prefix's bytes.

All numeric columns are little-endian and memory-mapped read-only;
the OS page cache is the sharing mechanism — N server workers opening
one packed directory hold one physical copy of the hot pages instead
of N in-RAM replicas.

The format exists to serve exactly one pushdown primitive — Theorem
2's contract that a query touches only a rank-ordered prefix:
:meth:`TableStore.items` materializes the ordered prefix up to a
depth ``d``, page by page, and :meth:`TableStore.group_safe_depth`
rounds a depth up so no mutual-exclusion group is ever split by a
page fetch.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import DataModelError
from repro.uncertain.scoring import ScoredItem, ScoredTable
from repro.uncertain.table import UncertainTable

#: Rows per page: the unit of decode, caching and I/O alignment.
DEFAULT_PAGE_SIZE = 4096

#: Persisted-format schema version.
STORAGE_SCHEMA = 1

#: The marker file naming a packed-table directory.
META_FILE = "meta.json"

#: Columnar files: (filename, numpy dtype).
_COLUMNS = (
    ("score.f8", "<f8"),
    ("prob.f8", "<f8"),
    ("group.i8", "<i8"),
    ("gend.i8", "<i8"),
    ("order.i8", "<i8"),
)


#: Byte budgets of the per-store decoded-page caches.  The entry
#: counts (64 item pages, 8 attr pages) bound small-tuple tables; the
#: byte budgets bound tables with large JSON blobs, where 64 pages of
#: 4096 rows each could otherwise dwarf the mapped columns.  The
#: ``REPRO_STORE_CACHE_BYTES`` environment variable overrides the
#: item-page budget (attr pages get a quarter of it).
DEFAULT_ITEM_CACHE_BYTES = 16 * 1024 * 1024
DEFAULT_ATTR_CACHE_BYTES = 4 * 1024 * 1024
STORE_CACHE_ENV = "REPRO_STORE_CACHE_BYTES"

#: Rough decoded footprint of one cached item beyond its tid blob
#: (a ScoredItem object, two floats, an int, tuple slots).
_ITEM_OVERHEAD_BYTES = 120


def _cache_budgets() -> tuple[int, int]:
    """The ``(item, attr)`` page-cache byte budgets for new stores."""
    raw = os.environ.get(STORE_CACHE_ENV, "").strip()
    if raw:
        try:
            total = max(1, int(raw))
        except ValueError:
            return DEFAULT_ITEM_CACHE_BYTES, DEFAULT_ATTR_CACHE_BYTES
        return total, max(1, total // 4)
    return DEFAULT_ITEM_CACHE_BYTES, DEFAULT_ATTR_CACHE_BYTES


class StorageFormatError(DataModelError):
    """A packed-table directory is missing, corrupt, or incompatible."""


def is_packed_dir(path: str | Path) -> bool:
    """Whether ``path`` is a packed-table directory (has ``meta.json``)."""
    return (Path(path) / META_FILE).is_file()


def _encode_blobs(values: Iterator[Any]) -> tuple[bytes, np.ndarray]:
    """JSON-encode ``values`` into one blob plus its offset table."""
    offsets = [0]
    parts: list[bytes] = []
    total = 0
    for value in values:
        data = json.dumps(value, separators=(",", ":")).encode("utf-8")
        parts.append(data)
        total += len(data)
        offsets.append(total)
    return b"".join(parts), np.asarray(offsets, dtype="<u8")


def pack_table(
    table: UncertainTable,
    out_dir: str | Path,
    *,
    scorer: str = "score",
    page_size: int = DEFAULT_PAGE_SIZE,
) -> dict[str, Any]:
    """Pack ``table`` into the on-disk scored-table format.

    The table is scored and rank-ordered with exactly the resident
    pipeline's stage-1 code (:meth:`ScoredTable.from_table` over the
    attribute scorer), then serialized column by column — so a
    :class:`~repro.storage.table.LazyScoredTable` prefix over the
    packed directory is byte-identical to the in-RAM path.

    :param scorer: the numeric attribute the rank order is built on;
        queries naming the same scorer string are served by pushdown,
        anything else falls back to full materialization.
    :param page_size: rows per page (decode/caching unit).
    :returns: a JSON-ready summary of what was written.
    """
    from repro.core.distribution import resolve_scorer

    if not isinstance(scorer, str) or not scorer:
        raise StorageFormatError(
            f"pack scorer must be a non-empty attribute name, got {scorer!r}"
        )
    if page_size < 1:
        raise StorageFormatError(f"page_size must be >= 1, got {page_size}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    scored = ScoredTable.from_table(table, resolve_scorer(scorer))
    n = len(scored)
    insertion_of_tid = {t.tid: index for index, t in enumerate(table.tuples)}

    scores = np.asarray([item.score for item in scored], dtype="<f8")
    probs = np.asarray([item.prob for item in scored], dtype="<f8")
    groups = np.asarray([item.group for item in scored], dtype="<i8")
    gend = np.empty(n, dtype="<i8")
    for group in set(groups.tolist()):
        positions = scored.group_positions(int(group))
        gend[list(positions)] = positions[-1] if positions else 0
    order = np.asarray(
        [insertion_of_tid[item.tid] for item in scored], dtype="<i8"
    )

    for (filename, _dtype), column in zip(
        _COLUMNS, (scores, probs, groups, gend, order)
    ):
        column.tofile(out / filename)

    tid_blob, tid_off = _encode_blobs(item.tid for item in scored)
    (out / "tid.dat").write_bytes(tid_blob)
    tid_off.tofile(out / "tid.off")
    attr_blob, attr_off = _encode_blobs(
        dict(table[item.tid].attributes) for item in scored
    )
    (out / "attr.dat").write_bytes(attr_blob)
    attr_off.tofile(out / "attr.off")

    pages = max(1, -(-n // page_size)) if n else 0
    page_mass: list[float] = []
    page_spill: list[int] = []
    running = 0.0
    for page in range(pages):
        end = min((page + 1) * page_size, n)
        running += float(probs[page * page_size : end].sum())
        page_mass.append(running)
        page_spill.append(int(gend[:end].max()) if end else 0)

    meta = {
        "schema": STORAGE_SCHEMA,
        "format": "repro-scored-table",
        "name": table.name,
        "tuples": n,
        "scorer": scorer,
        "page_size": page_size,
        "pages": pages,
        "explicit_rules": len(table.explicit_rules),
        "me_members": scored.me_member_count(),
        "has_ties": scored.has_ties(),
        "attributes": list(table.attribute_names()),
        "page_mass": page_mass,
        "page_spill": page_spill,
    }
    (out / META_FILE).write_text(json.dumps(meta, indent=2) + "\n")
    bytes_written = sum(
        (out / name).stat().st_size
        for name in (
            [filename for filename, _ in _COLUMNS]
            + ["tid.dat", "tid.off", "attr.dat", "attr.off", META_FILE]
        )
    )
    return {
        "path": str(out),
        "tuples": n,
        "pages": pages,
        "explicit_rules": meta["explicit_rules"],
        "scorer": scorer,
        "page_size": page_size,
        "bytes": bytes_written,
    }


class TableStore:
    """Read side of a packed-table directory.

    Columns are memory-mapped lazily and read-only; tuple ids (and,
    for fallback materialization, attributes) decode per *page*
    through a small LRU, so serving "the ordered prefix up to depth
    ``d``" touches O(d) bytes regardless of the table size.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        meta_path = self.path / META_FILE
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageFormatError(
                f"cannot read packed table at {self.path}: {exc}"
            ) from exc
        if (
            meta.get("format") != "repro-scored-table"
            or meta.get("schema") != STORAGE_SCHEMA
        ):
            raise StorageFormatError(
                f"{meta_path} is not a schema-{STORAGE_SCHEMA} packed table"
            )
        self.meta: Mapping[str, Any] = meta
        self.count: int = int(meta["tuples"])
        self.page_size: int = int(meta["page_size"])
        self.scorer: str = str(meta["scorer"])
        self.name: str = str(meta["name"])
        self._arrays: dict[str, np.ndarray] = {}
        # The page caches reuse the session's staged-LRU machinery
        # (thread-safe, counted) — one items cache shared by every
        # view over this store.  Imported lazily here to keep the
        # storage package importable without the api layer.  Beyond
        # the entry count, each cache carries a byte budget (decoded
        # page sizes come from the blob offset tables, so a store
        # with huge tuples cannot balloon a 64-entry cache).
        from repro.api.session import _LRU

        item_bytes, attr_bytes = _cache_budgets()
        self._item_pages = _LRU(64, max_bytes=item_bytes)
        self._attr_pages = _LRU(8, max_bytes=attr_bytes)

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------
    def _column(self, filename: str, dtype: str) -> np.ndarray:
        array = self._arrays.get(filename)
        if array is None:
            target = self.path / filename
            if self.count == 0:
                array = np.empty(0, dtype=dtype)
            else:
                try:
                    array = np.memmap(
                        target, dtype=dtype, mode="r", shape=(self.count,)
                    )
                except (OSError, ValueError) as exc:
                    raise StorageFormatError(
                        f"cannot map column {target}: {exc}"
                    ) from exc
            self._arrays[filename] = array
        return array

    @property
    def scores(self) -> np.ndarray:
        """Scores per rank position (memory-mapped, read-only)."""
        return self._column("score.f8", "<f8")

    @property
    def probs(self) -> np.ndarray:
        """Membership probabilities per rank position."""
        return self._column("prob.f8", "<f8")

    @property
    def groups(self) -> np.ndarray:
        """Dense ME-group id per rank position."""
        return self._column("group.i8", "<i8")

    @property
    def group_ends(self) -> np.ndarray:
        """The ME-group sidecar: last group position, per position."""
        return self._column("gend.i8", "<i8")

    @property
    def orders(self) -> np.ndarray:
        """Original insertion index per rank position."""
        return self._column("order.i8", "<i8")

    def _offsets(self, stem: str) -> np.ndarray:
        """The ``n + 1``-entry offset table of a ``.dat/.off`` pair."""
        filename = f"{stem}.off"
        offsets = self._arrays.get(filename)
        if offsets is None:
            offsets = np.memmap(
                self.path / filename,
                dtype="<u8",
                mode="r",
                shape=(self.count + 1,),
            )
            self._arrays[filename] = offsets
        return offsets

    def _blob_slice(
        self, stem: str, start: int, stop: int
    ) -> list[Any]:
        """Decode JSON blobs ``start .. stop`` of a ``.dat/.off`` pair."""
        if stop <= start:
            return []
        offsets = self._offsets(stem)
        lo = int(offsets[start])
        hi = int(offsets[stop])
        with open(self.path / f"{stem}.dat", "rb") as handle:
            handle.seek(lo)
            blob = handle.read(hi - lo)
        out = []
        base = lo
        for index in range(start, stop):
            a = int(offsets[index]) - base
            b = int(offsets[index + 1]) - base
            out.append(json.loads(blob[a:b]))
        return out

    # ------------------------------------------------------------------
    # The pushdown primitive
    # ------------------------------------------------------------------
    def page_items(self, page: int) -> Sequence[ScoredItem]:
        """The ``page``-th page of rank-ordered items (LRU-cached)."""
        cached = self._item_pages.get(page)
        if cached is not None:
            return cached
        start = page * self.page_size
        stop = min(start + self.page_size, self.count)
        tids = self._blob_slice("tid", start, stop)
        scores = self.scores[start:stop]
        probs = self.probs[start:stop]
        groups = self.groups[start:stop]
        items = tuple(
            ScoredItem(
                tids[index],
                float(scores[index]),
                float(probs[index]),
                int(groups[index]),
            )
            for index in range(stop - start)
        )
        self._item_pages.put(
            page, items, nbytes=self._page_nbytes("tid", start, stop)
        )
        return items

    def _page_nbytes(self, stem: str, start: int, stop: int) -> int:
        """Approximate decoded size of a cached page.

        Blob bytes come exactly from the offset table; the decoded
        Python objects on top are priced at a flat per-row overhead.
        """
        if stop <= start:
            return 0
        offsets = self._offsets(stem)
        blob = int(offsets[stop]) - int(offsets[start])
        return blob + (stop - start) * _ITEM_OVERHEAD_BYTES

    def items(self, start: int, stop: int) -> list[ScoredItem]:
        """Rank-ordered items ``start .. stop`` (page-wise, cached)."""
        stop = min(stop, self.count)
        if stop <= start:
            return []
        out: list[ScoredItem] = []
        first = start // self.page_size
        last = (stop - 1) // self.page_size
        for page in range(first, last + 1):
            page_start = page * self.page_size
            chunk = self.page_items(page)
            lo = max(start - page_start, 0)
            hi = min(stop - page_start, len(chunk))
            out.extend(chunk[lo:hi])
        return out

    def prefix(self, depth: int) -> ScoredTable:
        """Materialize the ordered prefix up to ``depth`` as a
        :class:`ScoredTable` — *the* pushdown primitive.

        Byte-identical to ``ScoredTable(items[:depth])`` on the
        resident path: same item order, scores, probabilities and
        dense group ids, hence the same derived tie/lead structure.
        """
        return ScoredTable(self.items(0, depth))

    def group_safe_depth(self, depth: int) -> int:
        """The smallest depth >= ``depth`` splitting no ME group.

        Iterates the sidecar ``gend`` column to a fixed point: each
        round extends the depth to the largest group-end seen so far
        (newly included positions may drag in further groups).  The
        scan is bounded by the *final* depth, never the table.
        """
        depth = min(depth, self.count)
        if depth <= 0:
            return 0
        gend = self.group_ends
        while True:
            spill = int(gend[:depth].max()) + 1
            if spill <= depth:
                return depth
            depth = min(spill, self.count)

    def clear_page_cache(self) -> None:
        """Drop decoded pages (calibration and tests)."""
        self._item_pages.clear()
        self._attr_pages.clear()

    def cache_info(self) -> dict[str, dict[str, int]]:
        """Hit/miss counters of the page caches."""
        return {
            "item_pages": self._item_pages.info(),
            "attr_pages": self._attr_pages.info(),
        }

    # ------------------------------------------------------------------
    # Fallback reconstruction
    # ------------------------------------------------------------------
    def attr_page(self, page: int) -> Sequence[Mapping[str, Any]]:
        """The ``page``-th page of attribute mappings (LRU-cached)."""
        cached = self._attr_pages.get(page)
        if cached is not None:
            return cached
        start = page * self.page_size
        stop = min(start + self.page_size, self.count)
        attrs = tuple(self._blob_slice("attr", start, stop))
        self._attr_pages.put(
            page, attrs, nbytes=self._page_nbytes("attr", start, stop)
        )
        return attrs

    def reconstruct(self) -> UncertainTable:
        """The original :class:`UncertainTable`, rebuilt in full.

        Insertion order comes from the ``order`` column and explicit
        rules from the dense group ids (rule gids precede singleton
        gids by construction), so the reconstruction assigns exactly
        the packed group ids — queries on it are byte-identical to
        queries on the table that was packed.
        """
        from repro.uncertain.model import UncertainTuple

        n = self.count
        order = self.orders
        probs = self.probs
        groups = self.groups
        tids = self._blob_slice("tid", 0, n)
        attrs = self._blob_slice("attr", 0, n)
        tuples: list[UncertainTuple | None] = [None] * n
        rule_members: dict[int, list[tuple[int, Any]]] = {}
        rule_count = int(self.meta["explicit_rules"])
        for rank in range(n):
            insertion = int(order[rank])
            tid = tids[rank]
            tuples[insertion] = UncertainTuple(
                tid, attrs[rank], float(probs[rank])
            )
            gid = int(groups[rank])
            if gid < rule_count:
                rule_members.setdefault(gid, []).append((insertion, tid))
        rules = [
            tuple(tid for _, tid in sorted(rule_members[gid]))
            for gid in range(rule_count)
        ]
        return UncertainTable(
            [t for t in tuples if t is not None], rules, name=self.name
        )

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"TableStore(path={str(self.path)!r}, tuples={self.count}, "
            f"scorer={self.scorer!r})"
        )


def open_store(path: str | Path) -> TableStore:
    """Open a packed-table directory as a :class:`TableStore`."""
    return TableStore(path)
