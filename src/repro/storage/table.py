"""Lazy table views over a packed :class:`~repro.storage.format.TableStore`.

Two wrappers bridge the on-disk format into the existing engine:

* :class:`LazyScoredTable` — the rank-ordered *scored* view.  It
  satisfies the :class:`~repro.uncertain.scoring.ScoredTable` surface
  the Theorem-2 scan-depth logic consumes (`__len__`, lazy
  ``__iter__``, ``__getitem__``, ``tie_range_end``), so
  :func:`repro.core.scan_depth.scan_depth` runs unchanged against it —
  and, because that loop stops after O(depth) items, it performs
  O(depth) I/O.  ``prefix(d)`` then materializes a *real*
  :class:`ScoredTable` over exactly the prefix items, byte-identical
  to the resident path's ``ScoredTable.from_table(...).prefix(d)``.

* :class:`DiskBackedTable` — an :class:`~repro.uncertain.table.
  UncertainTable` subclass whose tuples/rules stay on disk until a
  non-pushdown access forces them.  Pushdown-eligible queries (the
  spec's scorer string equals the packing scorer) get the lazy scored
  view via :meth:`lazy_scored`; everything else transparently falls
  back to full reconstruction, with identical dense group ids and
  therefore identical answers.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.storage.format import TableStore
from repro.uncertain.model import UncertainTuple
from repro.uncertain.scoring import ScoredItem, ScoredTable
from repro.uncertain.table import UncertainTable


class LazyScoredTable:
    """A read-through scored view of a packed table.

    Duck-types the slice of the :class:`ScoredTable` interface the
    scan-depth computation and the planner consume, without holding
    items in memory: positional access decodes through the store's
    page LRU, and the numeric columns are the store's memory-maps.
    """

    def __init__(self, store: TableStore) -> None:
        self._store = store

    @property
    def store(self) -> TableStore:
        """The backing packed-table store."""
        return self._store

    def __len__(self) -> int:
        return self._store.count

    def __iter__(self) -> Iterator[ScoredItem]:
        """Items in rank order, fetched page by page.

        A consumer that stops early (the Theorem-2 scan) only ever
        touches the pages it iterated over.
        """
        store = self._store
        pages = -(-store.count // store.page_size) if store.count else 0
        for page in range(pages):
            yield from store.page_items(page)

    def __getitem__(self, pos: int) -> ScoredItem:
        if pos < 0:
            pos += self._store.count
        if not 0 <= pos < self._store.count:
            raise IndexError(pos)
        page, offset = divmod(pos, self._store.page_size)
        return self._store.page_items(page)[offset]

    def prefix(self, n: int) -> ScoredTable:
        """Materialize the ordered prefix — the pushdown product.

        The returned object is an ordinary :class:`ScoredTable`, so
        every downstream stage (DP, semantics, caching) is oblivious
        to where the items came from.
        """
        return self._store.prefix(n)

    def group_safe_depth(self, depth: int) -> int:
        """Round ``depth`` up so no ME group is split (sidecar scan)."""
        return self._store.group_safe_depth(depth)

    @property
    def score_column(self) -> np.ndarray:
        """Scores in rank order (memory-mapped, read-only)."""
        return self._store.scores

    @property
    def prob_column(self) -> np.ndarray:
        """Probabilities in rank order (memory-mapped, read-only)."""
        return self._store.probs

    def me_member_count(self) -> int:
        """Tuples sharing an ME group with another tuple (from meta)."""
        return int(self._store.meta["me_members"])

    def has_ties(self) -> bool:
        """Whether the packed rank order contains equal scores."""
        return bool(self._store.meta["has_ties"])

    def tie_range_end(self, pos: int) -> int:
        """End (exclusive) of the tie group containing ``pos``.

        A bounded forward scan over the memory-mapped score column —
        the scan-depth logic calls this once, at the stopping
        position, so the touched range is one tie group.
        """
        scores = self._store.scores
        n = self._store.count
        end = pos + 1
        while end < n and scores[end] == scores[pos]:
            end += 1
        return end

    def __repr__(self) -> str:
        return (
            f"LazyScoredTable(store={str(self._store.path)!r}, "
            f"items={self._store.count})"
        )


class DiskBackedTable(UncertainTable):
    """An uncertain table whose data lives in a packed directory.

    Construction opens only ``meta.json`` and the memory-maps — no
    tuple is decoded.  The pushdown path never materializes anything
    beyond the query's prefix pages; any access that genuinely needs
    the relation (iteration, ``group_of``, a different scorer, WAL
    wrapping) triggers a one-time full reconstruction that yields
    *exactly* the packed table — same insertion order, same dense
    group ids — so both paths answer queries byte-identically.

    Several workers opening the same directory share the physical
    pages through the OS page cache: the catalog's ``disk:`` specs
    replace N in-RAM replicas with one on-disk copy.
    """

    def __init__(self, path: str | Path) -> None:
        self._store = TableStore(path)
        self._resident = False
        self._resident_lock = threading.Lock()
        # The base-class state is installed on first materialization;
        # until then every inherited accessor is overridden below.
        # UncertainTable.__init__ preserves a pre-set _version, so the
        # deferred call cannot reset cache-key versioning.
        self._version = 0
        self._name = self._store.name
        self._lazy = LazyScoredTable(self._store)

    # ------------------------------------------------------------------
    # Pushdown surface
    # ------------------------------------------------------------------
    @property
    def store(self) -> TableStore:
        """The backing packed-table store."""
        return self._store

    @property
    def storage_kind(self) -> str:
        """``"disk"`` — the planner's storage-aware cost hook."""
        return "disk"

    def lazy_scored(self, scorer: Any) -> LazyScoredTable | None:
        """The lazy scored view, iff ``scorer`` matches the pack order.

        Pushdown is only sound when the query ranks by the attribute
        the table was packed on; any other scorer returns ``None`` and
        the caller falls back to the resident path.
        """
        if isinstance(scorer, str) and scorer == self._store.scorer:
            return self._lazy
        return None

    def me_rule_count(self) -> int:
        """Number of explicit ME rules, without materializing."""
        return int(self._store.meta["explicit_rules"])

    @property
    def is_resident(self) -> bool:
        """Whether the fallback reconstruction has run."""
        return self._resident

    # ------------------------------------------------------------------
    # Fallback materialization
    # ------------------------------------------------------------------
    def _ensure_resident(self) -> None:
        if self._resident:
            return
        with self._resident_lock:
            if self._resident:
                return
            rebuilt = self._store.reconstruct()
            super().__init__(
                rebuilt.tuples,
                rebuilt.explicit_rules,
                name=self._store.name,
            )
            self._resident = True

    # Every inherited accessor that touches the relation routes
    # through the one-time reconstruction.
    def __len__(self) -> int:
        return self._store.count

    def __iter__(self) -> Iterator[UncertainTuple]:
        self._ensure_resident()
        return super().__iter__()

    def __getitem__(self, tid: Any) -> UncertainTuple:
        self._ensure_resident()
        return super().__getitem__(tid)

    def __contains__(self, tid: Any) -> bool:
        self._ensure_resident()
        return super().__contains__(tid)

    @property
    def tuples(self) -> Sequence[UncertainTuple]:
        self._ensure_resident()
        return UncertainTable.tuples.fget(self)  # type: ignore[attr-defined]

    @property
    def tids(self) -> Sequence[Any]:
        self._ensure_resident()
        return UncertainTable.tids.fget(self)  # type: ignore[attr-defined]

    @property
    def groups(self) -> Sequence[tuple[Any, ...]]:
        self._ensure_resident()
        return UncertainTable.groups.fget(self)  # type: ignore[attr-defined]

    @property
    def explicit_rules(self) -> Sequence[tuple[Any, ...]]:
        self._ensure_resident()
        return UncertainTable.explicit_rules.fget(self)  # type: ignore[attr-defined]

    def group_of(self, tid: Any) -> int:
        self._ensure_resident()
        return super().group_of(tid)

    def group_members(self, gid: int) -> tuple[Any, ...]:
        self._ensure_resident()
        return super().group_members(gid)

    def group_mass(self, gid: int) -> float:
        self._ensure_resident()
        return super().group_mass(gid)

    def me_tuple_fraction(self) -> float:
        self._ensure_resident()
        return super().me_tuple_fraction()

    def subset(
        self, tids: Iterable[Any], *, name: str | None = None
    ) -> UncertainTable:
        self._ensure_resident()
        return super().subset(tids, name=name)

    def map_attributes(
        self, fn: Any, *, name: str | None = None
    ) -> UncertainTable:
        self._ensure_resident()
        return super().map_attributes(fn, name=name)

    def attribute_names(self) -> tuple[str, ...]:
        # Recorded at pack time; no materialization needed.
        return tuple(self._store.meta["attributes"])

    def total_expected_tuples(self) -> float:
        # The probability column is already on disk.
        return float(self._store.probs.sum())

    def validate(self) -> None:
        self._ensure_resident()
        super().validate()

    def __repr__(self) -> str:
        state = "resident" if self._resident else "lazy"
        return (
            f"DiskBackedTable(path={str(self._store.path)!r}, "
            f"tuples={self._store.count}, {state})"
        )


def open_table(path: str | Path) -> DiskBackedTable:
    """Open a packed directory as a (lazy) :class:`DiskBackedTable`."""
    return DiskBackedTable(path)
