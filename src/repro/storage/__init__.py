"""Out-of-core scored tables with scan-depth pushdown.

The storage layer keeps uncertain tables on disk in rank order (see
:mod:`repro.storage.format`) and serves the paper's Theorem-2 access
pattern — "the ordered prefix up to depth d, never splitting an ME
group" — without loading the table.  :mod:`repro.storage.table` wraps
a packed directory as a :class:`DiskBackedTable` the whole engine
(sessions, the service catalog, the CLI) treats as an ordinary
:class:`~repro.uncertain.table.UncertainTable`, while pushdown-eligible
queries stream only their prefix pages.
"""

from repro.storage.format import (
    DEFAULT_PAGE_SIZE,
    STORAGE_SCHEMA,
    StorageFormatError,
    TableStore,
    is_packed_dir,
    open_store,
    pack_table,
)
from repro.storage.table import DiskBackedTable, LazyScoredTable, open_table

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "STORAGE_SCHEMA",
    "DiskBackedTable",
    "LazyScoredTable",
    "StorageFormatError",
    "TableStore",
    "is_packed_dir",
    "open_store",
    "open_table",
    "pack_table",
]
