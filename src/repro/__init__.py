"""repro — Top-k queries on uncertain data: score distributions and
typical answers.

A from-scratch reproduction of *"Top-k Queries on Uncertain Data: On
Score Distribution and Typical Answers"* (Tingjian Ge, Stan Zdonik,
Samuel Madden; SIGMOD 2009).

Quickstart — the Session/QuerySpec API plans every request in stages
(scored prefix → score distribution → answer semantics) and caches
each stage, so one computed distribution serves typical answers at
any ``c``, histograms at any precision, and rival-semantics
comparisons::

    from repro import QuerySpec, Session
    from repro.datasets.soldier import soldier_table

    session = Session({"soldiers": soldier_table()})
    spec = QuerySpec(table="soldiers", scorer="score", k=2, p_tau=0.0)

    pmf = session.distribution(spec)            # the ScorePMF
    result = session.execute(spec)              # 3-Typical-Top2
    more = session.execute(spec.with_(c=5))     # reuses the cached PMF
    rival = session.execute(spec.with_(semantics="u_topk"))

The classic free functions (``top_k_score_distribution``,
``c_typical_top_k``, ``u_topk``, ...) remain available as thin
wrappers over the same planner.

See README.md for the architecture overview and the paper-to-module
map.
"""

from repro.core.distribution import (
    c_typical_top_k,
    top_k_score_distribution,
)
from repro.core.pmf import ScoreLine, ScorePMF
from repro.core.selector import TypicalSelector
from repro.core.typical import TypicalAnswer, TypicalResult, select_typical
from repro.exceptions import (
    AlgorithmError,
    DataModelError,
    DatasetError,
    EmptyDistributionError,
    InvalidProbabilityError,
    MutualExclusionError,
    QueryError,
    QueryPlanError,
    QuerySyntaxError,
    ReproError,
    ScoringError,
)
from repro.query.engine import Catalog, QueryResult, execute_query
from repro.api import (
    QuerySpec,
    SemanticsHandler,
    Session,
    available_semantics,
    get_semantics,
    register_semantics,
)
from repro.stream.window import SlidingWindowTopK
from repro.mc import BatchWorldSampler, MCEngine, MCEstimate
from repro.semantics.answers import TypicalityReport, typicality_report
from repro.semantics.expected_ranks import ExpectedRankAnswer, expected_rank_topk
from repro.semantics.global_topk import global_topk
from repro.semantics.pt_k import pt_k
from repro.semantics.u_kranks import u_kranks
from repro.semantics.u_topk import UTopkResult, u_topk
from repro.uncertain.model import UncertainTuple
from repro.uncertain.scoring import (
    ScoredTable,
    attribute_scorer,
    expression_scorer,
)
from repro.uncertain.discretize import measurements_to_table
from repro.uncertain.table import UncertainTable, table_from_rows

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core results
    "top_k_score_distribution",
    "c_typical_top_k",
    "select_typical",
    "ScorePMF",
    "ScoreLine",
    "TypicalAnswer",
    "TypicalResult",
    "TypicalSelector",
    # data model
    "UncertainTuple",
    "UncertainTable",
    "table_from_rows",
    "ScoredTable",
    "attribute_scorer",
    "expression_scorer",
    # baseline semantics
    "u_topk",
    "UTopkResult",
    "u_kranks",
    "pt_k",
    "global_topk",
    "expected_rank_topk",
    "ExpectedRankAnswer",
    "typicality_report",
    "TypicalityReport",
    # session API
    "Session",
    "QuerySpec",
    "SemanticsHandler",
    "register_semantics",
    "get_semantics",
    "available_semantics",
    # query layer
    "Catalog",
    "QueryResult",
    "execute_query",
    "SlidingWindowTopK",
    "measurements_to_table",
    # Monte-Carlo answer engine
    "BatchWorldSampler",
    "MCEngine",
    "MCEstimate",
    # errors
    "ReproError",
    "DataModelError",
    "InvalidProbabilityError",
    "MutualExclusionError",
    "ScoringError",
    "AlgorithmError",
    "EmptyDistributionError",
    "QueryError",
    "QuerySyntaxError",
    "QueryPlanError",
    "DatasetError",
]
