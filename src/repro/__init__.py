"""repro — Top-k queries on uncertain data: score distributions and
typical answers.

A from-scratch reproduction of *"Top-k Queries on Uncertain Data: On
Score Distribution and Typical Answers"* (Tingjian Ge, Stan Zdonik,
Samuel Madden; SIGMOD 2009).

Quickstart::

    from repro import (
        top_k_score_distribution, c_typical_top_k, u_topk,
    )
    from repro.datasets.soldier import soldier_table

    table = soldier_table()
    pmf = top_k_score_distribution(table, "score", k=2, p_tau=0.0)
    print(pmf.summary())
    result = c_typical_top_k(table, "score", k=2, c=3, p_tau=0.0)
    for answer in result.answers:
        print(answer.score, answer.prob, answer.vector)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core.distribution import (
    c_typical_top_k,
    top_k_score_distribution,
)
from repro.core.pmf import ScoreLine, ScorePMF
from repro.core.selector import TypicalSelector
from repro.core.typical import TypicalAnswer, TypicalResult, select_typical
from repro.exceptions import (
    AlgorithmError,
    DataModelError,
    DatasetError,
    EmptyDistributionError,
    InvalidProbabilityError,
    MutualExclusionError,
    QueryError,
    QueryPlanError,
    QuerySyntaxError,
    ReproError,
    ScoringError,
)
from repro.query.engine import Catalog, QueryResult, execute_query
from repro.stream.window import SlidingWindowTopK
from repro.semantics.answers import TypicalityReport, typicality_report
from repro.semantics.expected_ranks import ExpectedRankAnswer, expected_rank_topk
from repro.semantics.global_topk import global_topk
from repro.semantics.pt_k import pt_k
from repro.semantics.u_kranks import u_kranks
from repro.semantics.u_topk import UTopkResult, u_topk
from repro.uncertain.model import UncertainTuple
from repro.uncertain.scoring import (
    ScoredTable,
    attribute_scorer,
    expression_scorer,
)
from repro.uncertain.discretize import measurements_to_table
from repro.uncertain.table import UncertainTable, table_from_rows

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core results
    "top_k_score_distribution",
    "c_typical_top_k",
    "select_typical",
    "ScorePMF",
    "ScoreLine",
    "TypicalAnswer",
    "TypicalResult",
    "TypicalSelector",
    # data model
    "UncertainTuple",
    "UncertainTable",
    "table_from_rows",
    "ScoredTable",
    "attribute_scorer",
    "expression_scorer",
    # baseline semantics
    "u_topk",
    "UTopkResult",
    "u_kranks",
    "pt_k",
    "global_topk",
    "expected_rank_topk",
    "ExpectedRankAnswer",
    "typicality_report",
    "TypicalityReport",
    # query layer
    "Catalog",
    "QueryResult",
    "execute_query",
    "SlidingWindowTopK",
    "measurements_to_table",
    # errors
    "ReproError",
    "DataModelError",
    "InvalidProbabilityError",
    "MutualExclusionError",
    "ScoringError",
    "AlgorithmError",
    "EmptyDistributionError",
    "QueryError",
    "QuerySyntaxError",
    "QueryPlanError",
    "DatasetError",
]
