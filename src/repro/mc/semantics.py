"""``algorithm="mc"`` registry variants of the built-in semantics.

The two PMF-consuming semantics (``"distribution"``, ``"typical"``)
need no variant: under ``algorithm="mc"`` the *PMF stage itself* is
the Monte-Carlo estimate
(:func:`~repro.mc.engine.mc_distribution`), and the exact handlers
consume it unchanged.  The five prefix-consuming semantics register
variants here that estimate their answers from sampled worlds instead
of the closed forms, returning the same result types as the exact
implementations so every consumer (CLI, query layer, tests) is
agnostic to how an answer was computed:

========================  =====================================
name                      MC estimator
========================  =====================================
``"u_topk"``              most frequent first-k-existing vector
``"pt_k"``                estimated top-k hit probability >= threshold
``"u_kranks"``            most frequent tuple per rank
``"global_topk"``         k largest estimated hit probabilities
``"expected_ranks"``      sampled expected ranks
========================  =====================================

This module is imported by :mod:`repro.api` so the variants are
always registered alongside the exact built-ins.
"""

from __future__ import annotations

from repro.api.registry import register_semantics
from repro.mc.engine import engine_from_spec


@register_semantics(
    "u_topk",
    algorithm="mc",
    description="MC estimate: most frequent top-k vector",
)
def _u_topk_mc(prefix, spec):
    return engine_from_spec(prefix, spec).u_topk()


@register_semantics(
    "pt_k",
    algorithm="mc",
    description="MC estimate: tuples with sampled top-k "
    "probability >= threshold",
)
def _pt_k_mc(prefix, spec):
    return engine_from_spec(prefix, spec).pt_k(spec.threshold)


@register_semantics(
    "u_kranks",
    algorithm="mc",
    description="MC estimate: most frequent tuple per rank",
)
def _u_kranks_mc(prefix, spec):
    return engine_from_spec(prefix, spec).u_kranks()


@register_semantics(
    "global_topk",
    algorithm="mc",
    description="MC estimate: k tuples with highest sampled top-k "
    "probability",
)
def _global_topk_mc(prefix, spec):
    return engine_from_spec(prefix, spec).global_topk()


@register_semantics(
    "expected_ranks",
    algorithm="mc",
    description="MC estimate: k tuples with smallest sampled "
    "expected rank",
)
def _expected_ranks_mc(prefix, spec):
    engine = engine_from_spec(prefix, spec, track_expected_ranks=True)
    return engine.expected_ranks()
