"""The vectorized Monte Carlo answer engine.

:class:`MCEngine` draws possible worlds of a scored prefix in batches
(:class:`~repro.mc.sampler.BatchWorldSampler`) and evaluates the top-k
of every world *simultaneously* on the existence matrix.  Because the
prefix is already in canonical rank order, the per-world top-k is a
cumulative-count mask rather than a sort: with ``C`` the inclusive
cumulative existence count along the rank axis, tuple ``j`` is in the
top-k of world ``s`` exactly when ``exists[s, j] and C[s, j] <= k``
(this replaces the batched argpartition a sorted input makes
unnecessary).  One pass accumulates every statistic the registered
answer semantics need:

* per-score world counts + the most frequent top-k vector per score
  (the estimated score PMF / typical answers);
* per-position top-k hit counts (PT-k, Global-Topk);
* per-(position, rank) counts (U-kRanks);
* per-vector counts (U-Topk);
* optionally per-position rank sums (expected ranks).

Every estimator reports a confidence interval
(:mod:`repro.mc.confidence`), and the engine's *adaptive sample-size
control* keeps drawing batches until the worst CI half-width over the
monitored top-k hit probabilities reaches a target ±ε (or a sample
cap).  The Hoeffding bound is data independent, so the engine never
draws more than :func:`~repro.mc.confidence.hoeffding_sample_size`
worlds; the empirical-Bernstein bound lets low-variance inputs stop
much earlier.
"""

from __future__ import annotations

import weakref
from typing import Any

import numpy as np

from repro.core.pmf import ScorePMF
from repro.core.typical import TypicalResult, select_typical_clamped
from repro.exceptions import AlgorithmError
from repro.mc.confidence import (
    MCEstimate,
    empirical_bernstein_half_width,
    hoeffding_half_width,
    hoeffding_sample_size,
    proportion_estimate,
)
from repro.mc.sampler import BatchWorldSampler
from repro.semantics.expected_ranks import ExpectedRankAnswer
from repro.semantics.u_kranks import URankAnswer
from repro.semantics.u_topk import UTopkResult
from repro.uncertain.scoring import ScoredTable

#: Default CI confidence level.
DEFAULT_CONFIDENCE = 0.95

#: Default target CI half-width ±ε of the adaptive control.
DEFAULT_EPSILON = 0.01

#: Worlds drawn per batch.
DEFAULT_BATCH_SIZE = 4096

#: Hard cap on adaptively drawn worlds.
DEFAULT_MAX_SAMPLES = 262_144

#: Adaptive control never stops before this many worlds.
MIN_ADAPTIVE_SAMPLES = 1024

#: Distinct top-k vectors tracked individually (for U-Topk and the
#: per-line representative vectors); further *new* vectors only bump
#: an untracked counter.  Score masses are accumulated separately, so
#: hitting the cap (diffuse adversarial inputs only) costs
#: representative vectors, never probability mass.
MAX_TRACKED_VECTORS = 100_000


class MCEngine:
    """Monte-Carlo estimation of every answer semantics over a prefix.

    :param prefix: the scored, rank-ordered (and possibly truncated)
        input — the same stage-1 artifact the exact algorithms consume.
    :param k: top-k size (>= 1).
    :param epsilon: target CI half-width of the adaptive control;
        ``None`` uses :data:`DEFAULT_EPSILON` (ignored when ``samples``
        is given).
    :param confidence: CI confidence level in (0, 1).
    :param samples: draw exactly this many worlds (disables adaptive
        control).
    :param max_samples: adaptive-control cap on drawn worlds.
    :param batch_size: worlds per vectorized draw.
    :param seed: seed or Generator; estimates are deterministic for a
        fixed seed.
    :param track_expected_ranks: also accumulate per-position rank
        sums (needed only by the expected-ranks semantics).
    """

    def __init__(
        self,
        prefix: ScoredTable,
        k: int,
        *,
        epsilon: float | None = None,
        confidence: float = DEFAULT_CONFIDENCE,
        samples: int | None = None,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        batch_size: int = DEFAULT_BATCH_SIZE,
        seed: int | np.random.Generator | None = 0,
        track_expected_ranks: bool = False,
    ) -> None:
        if k < 1:
            raise AlgorithmError(f"k must be >= 1, got {k}")
        if epsilon is not None and epsilon <= 0.0:
            raise AlgorithmError(f"epsilon must be > 0, got {epsilon!r}")
        if not 0.0 < confidence < 1.0:
            raise AlgorithmError(
                f"confidence must be in (0, 1), got {confidence!r}"
            )
        if samples is not None and samples < 1:
            raise AlgorithmError(f"samples must be >= 1, got {samples!r}")
        if max_samples < 1:
            raise AlgorithmError(
                f"max_samples must be >= 1, got {max_samples!r}"
            )
        if batch_size < 1:
            raise AlgorithmError(
                f"batch_size must be >= 1, got {batch_size!r}"
            )
        self._prefix = prefix
        self._k = k
        self._epsilon = DEFAULT_EPSILON if epsilon is None else epsilon
        self._confidence = confidence
        self._fixed_samples = samples
        self._max_samples = max_samples
        self._batch_size = batch_size
        self._sampler = BatchWorldSampler.from_prefix(prefix, seed)
        self._track_ranksums = track_expected_ranks

        n = len(prefix)
        self._n = n
        self._scores = prefix.score_column
        # Multi-member group position arrays (for expected-rank sums).
        self._multi_groups = [
            np.array(prefix.group_positions(gid), dtype=np.intp)
            for gid in prefix.groups()
            if len(prefix.group_positions(gid)) > 1
        ]

        self._samples = 0
        self._valid = 0
        self._untracked = 0
        self._hit_counts = np.zeros(n, dtype=np.int64)
        self._rank_counts = np.zeros((k, n), dtype=np.int64)
        # Score masses are accumulated independently of the tracked
        # vectors (score_counts is bounded by distinct totals, not
        # by distinct vectors), so the MAX_TRACKED_VECTORS cap can
        # only cost representative vectors — never probability mass.
        self._score_counts: dict[float, int] = {}
        self._vector_counts: dict[tuple[int, ...], int] = {}
        self._vector_scores: dict[tuple[int, ...], float] = {}
        self._rank_sums = np.zeros(n, dtype=np.float64)
        self._stopped_by_epsilon = False

    # ------------------------------------------------------------------
    # Sampling loop
    # ------------------------------------------------------------------
    @property
    def prefix(self) -> ScoredTable:
        """The scored prefix being sampled."""
        return self._prefix

    @property
    def k(self) -> int:
        """The top-k size."""
        return self._k

    @property
    def confidence(self) -> float:
        """The CI confidence level."""
        return self._confidence

    @property
    def samples_drawn(self) -> int:
        """Worlds drawn so far (0 before :meth:`run`)."""
        return self._samples

    @property
    def stopped_by_epsilon(self) -> bool:
        """True when adaptive control met the ±ε target (vs the cap)."""
        return self._stopped_by_epsilon

    @property
    def complete_worlds(self) -> int:
        """Sampled worlds holding at least ``k`` tuples (the PMF's
        support); the remainder is the estimated short-world mass."""
        return self._valid

    @property
    def untracked_vector_fraction(self) -> float:
        """Fraction of sampled worlds whose top-k vector fell past the
        :data:`MAX_TRACKED_VECTORS` cap.

        Score masses are unaffected (they are accumulated per score),
        but U-Topk and the per-line representative vectors only see
        the tracked population; a materially non-zero fraction means
        the input is too diffuse for vector-level estimates.
        """
        if self._samples < 1:
            return 0.0
        return self._untracked / self._samples

    def sample_budget(self) -> int:
        """The adaptive control's a-priori draw budget.

        The Hoeffding width is data independent, so the number of
        worlds guaranteeing every monitored CI fits in ±ε is known
        before sampling; the budget charges the same δ/2 the reported
        intervals charge Hoeffding, keeping budget and monitor
        consistent.  The ``max_samples`` cap wins when smaller.
        """
        split = 1.0 - (1.0 - self._confidence) / 2.0
        return min(
            self._max_samples,
            hoeffding_sample_size(self._epsilon, split),
        )

    def run(self) -> "MCEngine":
        """Draw worlds until the stopping rule fires (idempotent)."""
        if self._samples:
            return self
        if self._fixed_samples is not None:
            self._draw(self._fixed_samples)
            return self
        budget = self.sample_budget()
        floor = min(MIN_ADAPTIVE_SAMPLES, budget)
        while self._samples < budget:
            if self._samples < floor:
                # First stop at the adaptive floor, so near-
                # deterministic inputs can finish with a tiny draw.
                step = floor - self._samples
            else:
                step = min(self._batch_size, budget - self._samples)
            self._draw(step)
            if self._samples < floor:
                continue
            if self.worst_half_width() <= self._epsilon:
                self._stopped_by_epsilon = True
                break
        if not self._stopped_by_epsilon:
            self._stopped_by_epsilon = (
                self.worst_half_width() <= self._epsilon
            )
        return self

    def _draw(self, count: int) -> None:
        """Draw ``count`` worlds in batches and fold them in."""
        remaining = count
        while remaining > 0:
            size = min(self._batch_size, remaining)
            self._ingest(self._sampler.sample(size))
            remaining -= size

    def _ingest(self, exists: np.ndarray) -> None:
        """Fold one existence matrix into the accumulators."""
        k = self._k
        batch = exists.shape[0]
        self._samples += batch
        if self._n == 0:
            return
        cum = np.cumsum(exists, axis=1, dtype=np.int32)
        in_topk = exists & (cum <= k)
        self._hit_counts += in_topk.sum(axis=0)
        # Rank counts via scatter-add over the ~k hits per world
        # (cheap) instead of k full-matrix comparisons (expensive).
        hit_rows, hit_cols = np.nonzero(in_topk)
        np.add.at(
            self._rank_counts, (cum[hit_rows, hit_cols] - 1, hit_cols), 1
        )
        totals = cum[:, -1]
        valid = totals >= k
        valid_count = int(valid.sum())
        self._valid += valid_count
        if valid_count:
            rows = in_topk[valid]
            # nonzero is row-major, so each world's k positions come
            # out contiguous and ascending: reshape = top-k vectors.
            vectors = np.nonzero(rows)[1].reshape(valid_count, k)
            unique, counts = np.unique(vectors, axis=0, return_counts=True)
            scores = self._scores[unique].sum(axis=1)
            for row, count, score in zip(unique, counts, scores):
                count = int(count)
                score = float(score)
                self._score_counts[score] = (
                    self._score_counts.get(score, 0) + count
                )
                key = tuple(int(p) for p in row)
                if key in self._vector_counts:
                    self._vector_counts[key] += count
                elif len(self._vector_counts) < MAX_TRACKED_VECTORS:
                    self._vector_counts[key] = count
                    self._vector_scores[key] = score
                else:
                    self._untracked += count
        if self._track_ranksums:
            own_group = exists.astype(np.int64)
            for positions in self._multi_groups:
                group_existing = exists[:, positions].sum(axis=1)
                own_group[:, positions] = group_existing[:, None]
            absent_rank = 1 + totals[:, None] - own_group
            ranks = np.where(exists, cum, absent_rank)
            self._rank_sums += ranks.sum(axis=0, dtype=np.float64)

    # ------------------------------------------------------------------
    # Adaptive-control monitor
    # ------------------------------------------------------------------
    def worst_half_width(self) -> float:
        """Largest CI half-width over the monitored top-k hit
        probabilities (the adaptive control's stopping quantity).

        The Hoeffding width is one data-independent scalar valid for
        *every* estimated proportion; the per-position
        empirical-Bernstein widths tighten it on low-variance inputs.
        """
        if self._samples < 1:
            return float("inf")
        samples = self._samples
        split = 1.0 - (1.0 - self._confidence) / 2.0
        hoeffding = hoeffding_half_width(samples, split)
        if self._n == 0:
            return hoeffding
        p = self._hit_counts / samples
        variance = p * (1.0 - p)
        if samples > 1:
            variance = variance * (samples / (samples - 1.0))
        # The bound is monotone in the variance, so the worst position
        # is the one with the largest sample variance.
        bernstein = empirical_bernstein_half_width(
            samples, float(variance.max()), split
        )
        return min(hoeffding, bernstein)

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------
    def _proportion(self, successes: float) -> MCEstimate:
        self.run()
        return proportion_estimate(successes, self._samples, self._confidence)

    def distribution(self, max_lines: int | None = None) -> ScorePMF:
        """The estimated top-k total-score distribution.

        Line masses are world frequencies relative to *all* samples
        (mass below 1 estimates the short-world probability, matching
        the exact algorithms' convention); each line carries the most
        frequent top-k vector attaining its score.

        :param max_lines: optional coalescing budget (Section 3.2.1),
            applied exactly like the exact engines apply theirs.
        """
        self.run()
        by_score: dict[float, tuple[int, tuple[int, ...]]] = {}
        for key, count in self._vector_counts.items():
            score = self._vector_scores[key]
            best = by_score.get(score)
            if best is None or count > best[0]:
                by_score[score] = (count, key)
        lines = []
        for score, count in self._score_counts.items():
            best = by_score.get(score)
            vector = (
                None
                if best is None
                else tuple(self._prefix[pos].tid for pos in best[1])
            )
            lines.append((score, count / self._samples, vector))
        pmf = ScorePMF(lines)
        if max_lines is not None and len(pmf) > max_lines:
            pmf = pmf.coalesced(max_lines)
        return pmf

    def pmf_line_estimate(self, score: float) -> MCEstimate:
        """CI-carrying estimate of the probability mass at ``score``."""
        self.run()
        return self._proportion(self._score_counts.get(float(score), 0))

    def typical(self, c: int, *, max_lines: int | None = None) -> TypicalResult:
        """c-Typical-Topk answers selected from the estimated PMF."""
        return select_typical_clamped(self.distribution(max_lines), c)

    def topk_probability_estimates(self) -> list[tuple[Any, MCEstimate]]:
        """Estimated top-k membership probability per tuple, rank order."""
        self.run()
        return [
            (self._prefix[pos].tid, self._proportion(int(self._hit_counts[pos])))
            for pos in range(self._n)
        ]

    def rank_probability_estimate(self, pos: int, rank: int) -> MCEstimate:
        """Estimated P(tuple at ``pos`` occupies ``rank``), 1-based rank."""
        self.run()
        if not 1 <= rank <= self._k:
            raise AlgorithmError(f"rank must be in [1, {self._k}], got {rank}")
        return self._proportion(int(self._rank_counts[rank - 1, pos]))

    def vector_estimate(self, vector: tuple[Any, ...]) -> MCEstimate:
        """Estimated probability that ``vector`` (tids, rank order) is
        the first-k-existing configuration."""
        self.run()
        position_of = {
            self._prefix[pos].tid: pos for pos in range(self._n)
        }
        try:
            key = tuple(sorted(position_of[tid] for tid in vector))
        except KeyError:
            return self._proportion(0)
        return self._proportion(self._vector_counts.get(key, 0))

    # ------------------------------------------------------------------
    # Answer-semantics adapters (exact-engine result types)
    # ------------------------------------------------------------------
    def u_topk(self) -> UTopkResult | None:
        """The most frequently observed top-k vector (U-Topk estimate)."""
        self.run()
        if not self._vector_counts:
            return None
        best_key = min(
            self._vector_counts,
            key=lambda key: (-self._vector_counts[key], key),
        )
        vector = tuple(self._prefix[pos].tid for pos in best_key)
        probability = self._vector_counts[best_key] / self._samples
        return UTopkResult(
            vector, probability, float(self._vector_scores[best_key])
        )

    def u_kranks(self) -> list[URankAnswer]:
        """Most frequent tuple per rank (U-kRanks estimate)."""
        self.run()
        answers: list[URankAnswer] = []
        for rank in range(self._k):
            counts = self._rank_counts[rank]
            if self._n == 0 or counts.max() == 0:
                continue
            pos = int(counts.argmax())
            answers.append(
                URankAnswer(
                    rank + 1,
                    self._prefix[pos].tid,
                    int(counts[pos]) / self._samples,
                )
            )
        return answers

    def pt_k(self, threshold: float) -> list[tuple[Any, float]]:
        """Tuples with estimated top-k probability >= ``threshold``."""
        if not 0.0 < threshold <= 1.0:
            raise AlgorithmError(
                f"threshold must be in (0, 1], got {threshold!r}"
            )
        self.run()
        answers = [
            (self._prefix[pos].tid, int(self._hit_counts[pos]) / self._samples)
            for pos in range(self._n)
        ]
        answers = [pair for pair in answers if pair[1] >= threshold]
        answers.sort(key=lambda pair: -pair[1])
        return answers

    def global_topk(self) -> list[tuple[Any, float]]:
        """The k tuples with the highest estimated top-k probability."""
        self.run()
        answers = [
            (self._prefix[pos].tid, int(self._hit_counts[pos]) / self._samples)
            for pos in range(self._n)
        ]
        answers.sort(key=lambda pair: -pair[1])
        return answers[: self._k]

    def expected_ranks(self) -> list[ExpectedRankAnswer]:
        """The k tuples with the smallest estimated expected rank.

        Per world the rank of an existing tuple is its position among
        the world's existing tuples; an absent tuple is charged one
        plus the number of existing tuples outside its ME group — the
        sampled analogue of the closed form in
        :mod:`repro.semantics.expected_ranks`.
        """
        if not self._track_ranksums:
            raise AlgorithmError(
                "engine was built without track_expected_ranks=True"
            )
        self.run()
        answers = [
            ExpectedRankAnswer(
                self._prefix[pos].tid,
                float(self._rank_sums[pos]) / self._samples,
                self._prefix[pos].prob,
            )
            for pos in range(self._n)
        ]
        answers.sort(key=lambda a: a.expected_rank)
        return answers[: self._k]

    def __repr__(self) -> str:
        return (
            f"MCEngine(n={self._n}, k={self._k}, "
            f"samples={self._samples}, complete={self._valid}, "
            f"epsilon={self._epsilon}, confidence={self._confidence})"
        )


# ----------------------------------------------------------------------
# Spec integration
# ----------------------------------------------------------------------
#: Ran engines per live prefix, keyed by ``(k, mc knobs, tracked)``.
#: One engine pass accumulates the statistics of *every* semantics, so
#: running e.g. pt_k, global_topk and u_kranks over the same prefix
#: and knobs must not redraw the sample set per call.  Weakly keyed:
#: entries die with their prefix (the Session's prefix cache keeps hot
#: prefixes alive).
_ENGINE_CACHE: "weakref.WeakKeyDictionary[ScoredTable, dict]" = (
    weakref.WeakKeyDictionary()
)

#: Engines remembered per prefix (knob sweeps evict oldest-first).
_ENGINE_CACHE_PER_PREFIX = 8


def engine_from_spec(
    prefix: ScoredTable, spec, *, track_expected_ranks: bool = False
) -> MCEngine:
    """A ran engine configured from a :class:`~repro.api.spec.QuerySpec`'s
    MC knobs (``epsilon``, ``confidence``, ``samples``, ``seed``).

    Cached per ``(prefix, k, knobs)``: repeated calls — including for
    *different* semantics — share one sample set.  An engine tracking
    expected ranks is a superset and also serves non-tracking requests.
    """
    per_prefix = _ENGINE_CACHE.setdefault(prefix, {})
    base = (spec.k,) + spec.mc_params()
    wanted = (True,) if track_expected_ranks else (True, False)
    for tracked in wanted:
        engine = per_prefix.get(base + (tracked,))
        if engine is not None:
            return engine
    engine = MCEngine(
        prefix,
        spec.k,
        epsilon=spec.epsilon,
        confidence=spec.confidence,
        samples=spec.samples,
        seed=spec.seed,
        track_expected_ranks=track_expected_ranks,
    ).run()
    per_prefix[base + (track_expected_ranks,)] = engine
    while len(per_prefix) > _ENGINE_CACHE_PER_PREFIX:
        per_prefix.pop(next(iter(per_prefix)))
    return engine


def mc_distribution(prefix: ScoredTable, spec) -> ScorePMF:
    """Stage-2 entry point: the estimated PMF under ``algorithm="mc"``."""
    return engine_from_spec(prefix, spec).distribution(
        max_lines=spec.max_lines
    )
