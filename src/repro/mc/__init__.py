"""Vectorized Monte Carlo answer engine with confidence bounds.

The exact algorithms of :mod:`repro.core` are the production path, but
their reach ends where table size or window width makes even the
O(kmn) sweep too slow.  This package is the standard escape hatch for
probabilistic databases: sampling-based approximation with *explicit
error bounds*.

* :class:`~repro.mc.sampler.BatchWorldSampler` — draws S possible
  worlds at once as one (S × groups) categorical draw in numpy;
* :mod:`~repro.mc.confidence` — Hoeffding and empirical-Bernstein
  confidence intervals plus a-priori sample-size planning;
* :class:`~repro.mc.engine.MCEngine` — batched top-k evaluation over
  the sampled existence matrix, adaptive sample-size control to hit a
  target ±ε, and estimators for every registered answer semantics;
* :mod:`~repro.mc.semantics` — the ``algorithm="mc"`` registry
  variants dispatched by :class:`~repro.api.session.Session` (imported
  by :mod:`repro.api`).

The engine doubles as the independent randomized oracle of the
differential-testing harness (``tests/test_differential.py``): every
exact-DP optimization is cross-checked against it for free.
"""

from repro.mc.confidence import (
    MCEstimate,
    empirical_bernstein_half_width,
    hoeffding_half_width,
    hoeffding_sample_size,
    proportion_estimate,
)
from repro.mc.engine import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CONFIDENCE,
    DEFAULT_EPSILON,
    DEFAULT_MAX_SAMPLES,
    MCEngine,
    engine_from_spec,
    mc_distribution,
)
from repro.mc.sampler import BatchWorldSampler

__all__ = [
    "BatchWorldSampler",
    "MCEngine",
    "MCEstimate",
    "engine_from_spec",
    "mc_distribution",
    "hoeffding_half_width",
    "hoeffding_sample_size",
    "empirical_bernstein_half_width",
    "proportion_estimate",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_EPSILON",
    "DEFAULT_MAX_SAMPLES",
]
