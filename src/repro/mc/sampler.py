"""Batched possible-world sampling.

One possible world is one independent categorical outcome per ME
group: either one member (with that member's probability) or nothing
(with the group's residual mass).  :class:`BatchWorldSampler` draws S
worlds at once as a boolean *existence matrix* of shape
``(S, columns)`` instead of one Python-level world at a time.

The draw is a single ``(S × groups)`` uniform matrix: each member
column owns a half-open interval ``[lo, hi)`` of its group's
cumulative membership probabilities, and a tuple exists exactly when
its group's uniform lands in its interval (the residual ``[mass, 1)``
is the empty outcome).  Evaluating every column is then one gather of
the group uniforms plus two vectorized comparisons — no per-group
Python, no searchsorted, uniform cost regardless of group sizes.

Downstream consumers (:mod:`repro.mc.engine`, the rewritten
:class:`~repro.uncertain.sampling.WorldSampler`) operate directly on
the matrix; converting rows to ``frozenset`` worlds is provided for
the legacy iterator API.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable
from repro.uncertain.table import UncertainTable


def _as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed-like argument into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class BatchWorldSampler:
    """Vectorized i.i.d. sampler over the possible-worlds distribution.

    :param columns: number of existence-matrix columns (one per tuple).
    :param groups: ME groups as sequences of ``(column, probability)``
        pairs; every column must appear in at most one group (columns
        in no group never exist).
    :param labels: optional per-column labels (tids) used by
        :meth:`world_sets`.
    :param seed: seed or :class:`numpy.random.Generator`.
    """

    def __init__(
        self,
        columns: int,
        groups: Sequence[Sequence[tuple[int, float]]],
        *,
        labels: Sequence[Any] | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if columns < 0:
            raise AlgorithmError(f"columns must be >= 0, got {columns}")
        self._columns = columns
        self._rng = _as_rng(seed)
        self._labels = (
            None if labels is None else np.array(list(labels), dtype=object)
        )
        # Per column: owning group slot and the [lo, hi) slice of the
        # group's cumulative membership probability.  Columns outside
        # every group keep the empty interval [0, 0) — never exist.
        self._col_group = np.zeros(columns, dtype=np.intp)
        self._col_lo = np.zeros(columns, dtype=np.float64)
        self._col_hi = np.zeros(columns, dtype=np.float64)
        slot = 0
        for members in groups:
            members = list(members)
            if not members:
                continue
            acc = 0.0
            for col, prob in members:
                self._col_group[col] = slot
                self._col_lo[col] = acc
                acc += float(prob)
                self._col_hi[col] = acc
            slot += 1
        self._group_count = slot

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls,
        table: UncertainTable,
        seed: int | np.random.Generator | None = None,
    ) -> "BatchWorldSampler":
        """Sampler over a table; columns follow the table's tuple order."""
        column_of = {tid: index for index, tid in enumerate(table.tids)}
        groups = [
            [(column_of[tid], table[tid].probability) for tid in members]
            for members in table.groups
        ]
        return cls(
            len(table), groups, labels=table.tids, seed=seed
        )

    @classmethod
    def from_prefix(
        cls,
        scored: ScoredTable,
        seed: int | np.random.Generator | None = None,
    ) -> "BatchWorldSampler":
        """Sampler over a scored prefix; columns are rank positions.

        Members of a group cut off by Theorem-2 truncation simply fold
        into the group's empty outcome — the same truncation semantics
        the exact algorithms use.
        """
        groups = [
            [(pos, scored[pos].prob) for pos in scored.group_positions(gid)]
            for gid in scored.groups()
        ]
        labels = [item.tid for item in scored]
        return cls(len(scored), groups, labels=labels, seed=seed)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @property
    def columns(self) -> int:
        """Width of the existence matrix."""
        return self._columns

    @property
    def labels(self) -> tuple[Any, ...] | None:
        """Per-column labels (tids), when known."""
        return None if self._labels is None else tuple(self._labels)

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` worlds as a boolean ``(count, columns)`` matrix.

        ``exists[s, j]`` is True when tuple ``j`` appears in world
        ``s``: one uniform draw per (world, group), gathered per member
        column and tested against the column's CDF interval.
        """
        if count < 1:
            raise AlgorithmError(f"count must be >= 1, got {count}")
        if self._columns == 0 or self._group_count == 0:
            return np.zeros((count, self._columns), dtype=bool)
        draws = self._rng.random((count, self._group_count))
        member_u = draws[:, self._col_group]
        return (self._col_lo <= member_u) & (member_u < self._col_hi)

    def world_sets(self, exists: np.ndarray) -> list[frozenset]:
        """Convert existence-matrix rows into ``frozenset`` worlds."""
        if self._labels is None:
            raise AlgorithmError(
                "sampler has no column labels; construct with labels "
                "(or via from_table/from_prefix) to materialize worlds"
            )
        return [frozenset(self._labels[row]) for row in exists]
