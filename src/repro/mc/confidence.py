"""Concentration bounds for Monte-Carlo estimates.

Two classic non-asymptotic bounds for the mean of i.i.d. samples in a
bounded range ``R``, both at confidence level ``1 - δ``:

* **Hoeffding**: half-width ``R · sqrt(ln(2/δ) / (2S))`` — data
  independent, so the sample size needed for a target ±ε is known a
  priori (:func:`hoeffding_sample_size`);
* **empirical Bernstein** (Maurer & Pontil 2009): half-width
  ``sqrt(2 V ln(3/δ) / S) + 3 R ln(3/δ) / S`` with ``V`` the sample
  variance — much tighter when the estimated quantity is nearly
  deterministic, which is what lets the engine's adaptive control stop
  early on low-variance tables.

:func:`proportion_estimate` spends ``δ/2`` on each bound and reports
the tighter interval, so the declared confidence still holds.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.exceptions import AlgorithmError


def _check_confidence(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise AlgorithmError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    return 1.0 - confidence


class MCEstimate(NamedTuple):
    """One Monte-Carlo estimate with its confidence interval.

    :ivar value: the point estimate.
    :ivar half_width: CI half-width; the true value lies in
        ``[value - half_width, value + half_width]`` with probability
        at least ``confidence``.
    :ivar confidence: declared coverage level.
    :ivar samples: number of samples behind the estimate.
    :ivar method: which bound produced the interval
        (``"hoeffding"`` or ``"bernstein"``).
    """

    value: float
    half_width: float
    confidence: float
    samples: int
    method: str

    @property
    def low(self) -> float:
        """Lower end of the confidence interval."""
        return self.value - self.half_width

    @property
    def high(self) -> float:
        """Upper end of the confidence interval."""
        return self.value + self.half_width

    def contains(self, true_value: float) -> bool:
        """True when ``true_value`` falls inside the interval."""
        return self.low <= true_value <= self.high


def hoeffding_half_width(
    samples: int, confidence: float, *, value_range: float = 1.0
) -> float:
    """Hoeffding CI half-width for a mean of range-``value_range`` samples."""
    if samples < 1:
        raise AlgorithmError(f"samples must be >= 1, got {samples}")
    delta = _check_confidence(confidence)
    return value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * samples))


def hoeffding_sample_size(
    epsilon: float, confidence: float, *, value_range: float = 1.0
) -> int:
    """Samples guaranteeing a Hoeffding half-width of at most ``epsilon``.

    Data independent, so usable a priori: the engine never draws more
    than this many samples for a ±ε target (adaptive stopping can only
    finish earlier).
    """
    if epsilon <= 0.0:
        raise AlgorithmError(f"epsilon must be > 0, got {epsilon!r}")
    delta = _check_confidence(confidence)
    return max(
        1,
        math.ceil(
            value_range * value_range
            * math.log(2.0 / delta)
            / (2.0 * epsilon * epsilon)
        ),
    )


def empirical_bernstein_half_width(
    samples: int,
    variance: float,
    confidence: float,
    *,
    value_range: float = 1.0,
) -> float:
    """Empirical-Bernstein CI half-width (Maurer & Pontil, Theorem 4).

    :param variance: the *sample* variance of the draws.
    """
    if samples < 1:
        raise AlgorithmError(f"samples must be >= 1, got {samples}")
    delta = _check_confidence(confidence)
    log_term = math.log(3.0 / delta)
    variance = max(0.0, variance)
    return (
        math.sqrt(2.0 * variance * log_term / samples)
        + 3.0 * value_range * log_term / samples
    )


def proportion_estimate(
    successes: float, samples: int, confidence: float
) -> MCEstimate:
    """Estimate of a Bernoulli proportion with the tighter of the two
    bounds, each charged ``δ/2`` so the overall level is honored.
    """
    if samples < 1:
        raise AlgorithmError(f"samples must be >= 1, got {samples}")
    _check_confidence(confidence)
    split = 1.0 - (1.0 - confidence) / 2.0
    value = successes / samples
    # Bessel-corrected sample variance of a 0/1 draw.
    variance = value * (1.0 - value)
    if samples > 1:
        variance *= samples / (samples - 1.0)
    hoeffding = hoeffding_half_width(samples, split)
    bernstein = empirical_bernstein_half_width(samples, variance, split)
    if bernstein < hoeffding:
        return MCEstimate(value, bernstein, confidence, samples, "bernstein")
    return MCEstimate(value, hoeffding, confidence, samples, "hoeffding")
