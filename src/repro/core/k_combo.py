"""The k-Combo baseline algorithm (Section 3.1).

Iterates over all k-combinations of the n rank-ordered tuples (in
lexicographic order, excluding those that violate mutual-exclusion
rules) and computes, for each, its total score and the probability that
it is the set of the first k existing tuples.  Cost O(n^k), as the
paper states; Figure 10 shows its exponential growth against the main
algorithm.

The probability of a combination whose lowest-ranked member sits at
position ``e`` is

    product(p_t for chosen t)
    * product(1 - m_g(e) for every ME group g with no chosen member)

where ``m_g(e)`` is the group's probability mass ranked above ``e``.
Groups that did contribute a chosen tuple need no absence factor (their
other members are excluded by the ME rule itself).  We precompute the
all-groups product per ``e`` once — O(n) incremental sweep — and divide
out the ≤ k factors of the chosen groups per combination, giving O(k)
work per combination instead of O(#groups).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left

from repro.core.coalesce import coalesce_lines
from repro.core.dp import DEFAULT_MAX_LINES
from repro.core.pmf import ScorePMF
from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable

#: A factor this close to zero is treated as exactly zero (the group is
#: saturated above the cutoff, so "no member exists" is impossible).
_ZERO = 1e-12

#: Internal buffer bound, as in state_expansion.
_BUFFER_FACTOR = 8


class _GroupMass:
    """Prefix masses of one ME group, queryable at any cutoff."""

    __slots__ = ("positions", "prefix")

    def __init__(self, positions: list[int], probs: list[float]) -> None:
        self.positions = positions
        self.prefix = [0.0]
        running = 0.0
        for p in probs:
            running += p
            self.prefix.append(running)

    def mass_above(self, cutoff: int) -> float:
        """Total probability of members at positions < ``cutoff``."""
        index = bisect_left(self.positions, cutoff)
        return self.prefix[index]


def k_combo_distribution(
    scored: ScoredTable,
    k: int,
    *,
    max_lines: int = DEFAULT_MAX_LINES,
) -> ScorePMF:
    """Top-k score distribution by exhaustive combination enumeration.

    Exact (up to coalescing); exponential in k.  See module docstring.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    n = len(scored)
    if n < k:
        return ScorePMF(())

    # Positional columns, hoisted once from the ScoredTable's cached
    # arrays: the enumeration loop below touches them per combination.
    score_at = scored.score_column.tolist()
    prob_at = scored.prob_column.tolist()

    group_mass: dict[int, _GroupMass] = {}
    for group in scored.groups():
        positions = list(scored.group_positions(group))
        group_mass[group] = _GroupMass(
            positions, [prob_at[pos] for pos in positions]
        )

    # Per cutoff e: product of (1 - m_g(e)) over groups with a nonzero
    # factor, plus the set of zero-factor groups.  Built incrementally:
    # moving the cutoff one right multiplies/divides single factors.
    prod_nonzero = [1.0] * (n + 1)
    zero_groups: list[frozenset] = [frozenset()] * (n + 1)
    running_prod = 1.0
    running_zero: set[int] = set()
    for e in range(1, n + 1):
        item = scored[e - 1]
        gm = group_mass[item.group]
        old_factor = 1.0 - gm.mass_above(e - 1)
        new_factor = 1.0 - gm.mass_above(e)
        if old_factor > _ZERO:
            running_prod /= old_factor
        else:
            running_zero.discard(item.group)
        if new_factor > _ZERO:
            running_prod *= new_factor
        else:
            running_zero.add(item.group)
        prod_nonzero[e] = running_prod
        zero_groups[e] = frozenset(running_zero)

    emitted: list[list] = []

    def flush() -> None:
        emitted.sort(key=lambda line: line[0])
        merged: list[list] = []
        for line in emitted:
            if merged and merged[-1][0] == line[0]:
                if line[1] > merged[-1][1]:
                    merged[-1][2] = line[2]
                merged[-1][1] += line[1]
            else:
                merged.append(line)
        coalesce_lines(merged, max_lines)
        emitted[:] = merged

    for combo in itertools.combinations(range(n), k):
        chosen_groups = set()
        # Division order below must not depend on gid *values* (set
        # iteration order would): positional order keeps the float
        # result identical under any relabeling of the same partition.
        chosen_order = []
        valid = True
        membership = 1.0
        for pos in combo:
            item = scored[pos]
            if item.group in chosen_groups:
                valid = False
                break
            chosen_groups.add(item.group)
            chosen_order.append(item.group)
            membership *= prob_at[pos]
        if not valid:
            continue
        e = combo[-1]
        # Every zero-factor group must have contributed a chosen tuple,
        # otherwise "all its above-cutoff members absent" is impossible.
        if not zero_groups[e] <= chosen_groups:
            continue
        prob = membership * prod_nonzero[e]
        for group in chosen_order:
            if group in zero_groups[e]:
                continue
            factor = 1.0 - group_mass[group].mass_above(e)
            if factor > _ZERO:
                prob /= factor
        if prob <= 0.0:
            continue
        score = sum(score_at[pos] for pos in combo)
        vector = tuple(scored[pos].tid for pos in combo)
        emitted.append([score, prob, vector])
        if len(emitted) > _BUFFER_FACTOR * max_lines:
            flush()
    flush()
    return ScorePMF((s, p, v) for s, p, v in emitted)
