"""The main dynamic-programming algorithm (Sections 3.2–3.4).

The distribution of top-j total scores "starting from row r" is built
bottom-up: the distribution at ``(r, j)`` combines the one at
``(r+1, j)`` (row r absent, probabilities scaled by ``1 - p_r``) with
the one at ``(r+1, j-1)`` shifted by row r's score and scaled by
``p_r`` (Figure 5).  Line coalescing (Section 3.2.1) bounds every
intermediate distribution to a constant number of lines, giving the
O(kn) bound for independent tuples.

Mutual exclusion (Section 3.3) is handled by fixing the *last* (k-th)
tuple of the vector: with the ending fixed, row order is irrelevant, so
every other ME group can be compressed into a *rule tuple* whose "take"
step adds each constituent ``(score, prob)`` separately and whose
"skip" step multiplies by ``1 - (group mass above the ending)``.
Vectors ending anywhere in a *lead-tuple region* (a maximal contiguous
run of tuples that each rank first in their group) share one dynamic
program whose *exit points* — the auxiliary column-0 cells of Figure 6
— are enabled exactly at the region rows and blocked elsewhere.

Ties (Section 3.4) need no structural change: the canonical
``(score desc, prob desc)`` order of :class:`ScoredTable` makes the
per-configuration probabilities come out right (Theorem 3) and the
recorded representative vector the most probable one.

Shared-prefix sweep (the O(kmn) bound)
--------------------------------------
The mutual-exclusion path does *not* launch an independent bottom-up
dynamic program per ending unit.  Instead a single forward sweep walks
the table once in rank order, maintaining the DP column states of the
independent (singleton-group) tuples incrementally; each ME group's
members-so-far are collected as the sweep passes them.  Reaching an
ending unit, the per-ending work is only (a) folding the current rule
tuples — at most ``m`` of them — on top of the shared prefix state and
(b) attaching the ending's own rows, which realizes the per-ending
O(km) cost (hence O(kmn) total) of Section 3.3.3 instead of re-running
the whole O(kn) program per ending.  The former per-ending
implementation survives as :func:`dp_distribution_per_ending` for the
ablation benchmark (``benchmarks/bench_ablation_shared_prefix.py``).

Implementation notes
--------------------
Cell distributions are ``(scores, probs, vectors)`` triples with the
numeric columns as ascending numpy arrays; representative vectors are
shared cons-lists ``(tid, parent)`` so the "take" step prepends in
O(1) per line.  Distribution unions never concatenate-and-argsort:
already-ascending parts are combined by a stable ``np.searchsorted``
tree merge (:func:`_merge_parts`), which produces the exact same
permutation as a stable sort of the concatenation at a fraction of the
allocation churn.  Intermediate coalescing uses an equi-width grid
over the cell's own span (weighted-mean score, summed probability,
heavier line's vector per occupied bucket): every merge joins lines at
most ``cell span / max_lines`` apart, and since intermediate spans
never exceed the final span (Section 3.2.1), the merge radius is
bounded by the same δ as the paper's closest-pair strategy.  The
public :func:`repro.core.coalesce.coalesce_lines` keeps the exact
pairwise strategy for presentation-time coalescing.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Sequence

import numpy as np

from repro.core.pmf import ScorePMF
from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable

#: Default cap on the number of lines kept per distribution; the paper
#: uses c' = 200 as its running example (Section 3.2.1).
DEFAULT_MAX_LINES = 200

# ----------------------------------------------------------------------
# Sweep accounting (used by fusion tests and service metrics)
# ----------------------------------------------------------------------
_SWEEP_LOCK = threading.Lock()
_SWEEP_COUNT = 0


def _count_sweep() -> None:
    global _SWEEP_COUNT
    with _SWEEP_LOCK:
        _SWEEP_COUNT += 1


def dp_sweep_count() -> int:
    """Dynamic programs launched since import (monotonic counter).

    Each bottom-up program (:func:`_dp_run` — single- or multi-k) and
    each forward shared-prefix sweep counts once, regardless of how
    many ``(k, depth)`` slices it serves; the per-ending ablation
    counts once per ending unit.  Fusion tests snapshot this counter
    to assert that a mixed-k batch paid exactly one sweep.
    """
    with _SWEEP_LOCK:
        return _SWEEP_COUNT

#: A cell distribution: (scores ascending, probs, vectors) or None.
_Cell = tuple

#: Smallest probability mass a coalesced line may keep: the smallest
#: *normal* double (~2.2e-308).  Below it, masses are subnormal and
#: weighted-mean scores are too quantized to preserve the ascending
#: invariant of the merge step (and can reach NaN at exactly 0).
_MIN_CELL_MASS = float(np.finfo(np.float64).tiny)


class _Unit:
    """One DP row: an independent tuple or a compressed rule tuple.

    :ivar constituents: ``(score, prob, tid)`` per original tuple; a
        plain tuple has exactly one constituent.
    :ivar absent_prob: probability that no constituent exists
        (``1 - sum of constituent probabilities``, clamped at 0).
    """

    __slots__ = ("constituents", "absent_prob")

    def __init__(self, constituents: Sequence[tuple[float, float, Any]]):
        self.constituents = tuple(constituents)
        mass = sum(p for _, p, _ in constituents)
        self.absent_prob = max(0.0, 1.0 - mass)


def _cons_to_vector(cell) -> tuple:
    """Unwind a cons-list ``(tid, parent)`` into a rank-ordered tuple."""
    out = []
    while cell is not None:
        out.append(cell[0])
        cell = cell[1]
    return tuple(out)


class _Arena:
    """Chunked storage of representative vectors as integer ids.

    Every "take" step of one dynamic program appends a *chunk*: all its
    lines share the prepended tid, and each line records the id of its
    parent vector.  Id 0 is the empty vector.  Vectors therefore live
    as int64 arrays inside the DP (every per-line operation is numpy
    fancy indexing) and only the final cell's handful of lines is ever
    materialized into tid tuples.
    """

    __slots__ = ("tids", "parents", "bases", "size", "_iota")

    def __init__(self) -> None:
        self.tids: list = [None]
        self.parents: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        self.bases: list[int] = [0]
        self.size: int = 1
        # Pre-sized consecutive-id chunk, doubled on demand: ``extend``
        # returns ``base + iota[:n]`` instead of a fresh ``arange``.
        self._iota: np.ndarray = np.arange(256, dtype=np.int64)

    def extend(self, tid, parent_ids: np.ndarray) -> np.ndarray:
        """New ids for lines prepending ``tid`` onto ``parent_ids``."""
        base = self.size
        count = len(parent_ids)
        self.tids.append(tid)
        self.parents.append(parent_ids)
        self.bases.append(base)
        self.size += count
        if count > len(self._iota):
            self._iota = np.arange(
                max(count, 2 * len(self._iota)), dtype=np.int64
            )
        return base + self._iota[:count]

    def vector(self, vec_id: int) -> tuple:
        """Materialize an id into a rank-ordered tuple of tids."""
        out = []
        while vec_id != 0:
            chunk = bisect_right(self.bases, vec_id) - 1
            out.append(self.tids[chunk])
            vec_id = int(self.parents[chunk][vec_id - self.bases[chunk]])
        return tuple(out)

    def mark(self) -> tuple[int, int]:
        """Checkpoint for :meth:`release` (chunk count, next id)."""
        return len(self.bases), self.size

    def release(self, mark: tuple[int, int]) -> None:
        """Drop every chunk added since ``mark``.

        The shared-prefix sweep uses per-ending folds as scratch work:
        once an emitted cell's vectors are materialized, its chunks
        are dead, and releasing them keeps the arena's footprint
        proportional to the shared prefix instead of the whole sweep.
        Ids issued before the mark stay valid.
        """
        chunks, size = mark
        del self.tids[chunks:]
        del self.parents[chunks:]
        del self.bases[chunks:]
        self.size = size


def _segment_sums(weights: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Per-segment sums with a strictly sequential accumulation order.

    ``np.bincount`` scatter-adds ``weights[i]`` into its segment's
    accumulator in index order, so each segment's sum is the plain
    left-to-right total — an association that is identical on every
    platform and trivially replicated by the native kernel's C loop.
    ``np.add.reduceat`` makes no such promise (its order follows the
    SIMD lane width), which is why it is banned from the reduce path.
    """
    return np.bincount(segments, weights=weights)


def _segment_winners(probs: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Index of the heaviest line per segment (vectorized).

    Sorting by (segment id, prob) puts each segment's heaviest line
    last within its run, so the positions just before the next
    segment's start are the per-segment argmaxes.
    """
    counts = np.diff(np.append(starts, len(probs)))
    if counts.max() == 1:
        return starts
    segment_ids = np.repeat(np.arange(len(starts)), counts)
    order = np.lexsort((probs, segment_ids))
    return order[np.append(starts[1:], len(probs)) - 1]


def _merge_two(a: tuple, b: tuple) -> tuple:
    """Stable merge of two cells whose first column is ascending.

    Equal keys keep ``a`` before ``b`` (``side="right"``), so the
    output is the exact permutation a stable argsort of the
    concatenation would produce.
    """
    key_a, key_b = a[0], b[0]
    pos_b = np.searchsorted(key_a, key_b, side="right")
    pos_b = pos_b + np.arange(len(key_b), dtype=np.int64)
    total = len(key_a) + len(key_b)
    mask_a = np.ones(total, dtype=bool)
    mask_a[pos_b] = False
    merged = []
    for col_a, col_b in zip(a, b):
        col = np.empty(total, dtype=np.promote_types(col_a.dtype, col_b.dtype))
        col[mask_a] = col_a
        col[pos_b] = col_b
        merged.append(col)
    return tuple(merged)


def _merge_parts(parts: list[tuple]) -> tuple:
    """K-way stable merge of cells with ascending first columns.

    Adjacent pairs merge mergesort-style, so the result equals a
    stable sort of the parts' concatenation while every element moves
    only O(log k) times and no concat+argsort round trip is paid.
    """
    while len(parts) > 1:
        merged = [
            _merge_two(parts[i], parts[i + 1])
            for i in range(0, len(parts) - 1, 2)
        ]
        if len(parts) % 2:
            merged.append(parts[-1])
        parts = merged
    return parts[0]


def _reduce_cell(
    scores: np.ndarray,
    probs: np.ndarray,
    vectors: np.ndarray,
    max_lines: int,
) -> _Cell:
    """Merge equal scores, then grid-coalesce to ``max_lines`` lines.

    ``scores`` must already be ascending; ``vectors`` is an aligned
    numpy array (int64 arena ids inside a DP, object tuples at the
    cross-run merge).  Equal scores always merge (probabilities summed,
    heavier line's vector kept — the step-3 merge rule of Section 3.2);
    the grid pass runs only when the line budget is exceeded, and every
    grid merge joins lines at most ``cell span / max_lines`` apart —
    the same radius bound as the paper's closest-pair strategy, because
    intermediate spans never exceed the final span (Section 3.2.1).

    Deep dense-ME sweeps (full-table ``p_tau=0`` over hundreds of rule
    tuples) multiply so many existence factors that a bucket's whole
    mass underflows into the subnormal range or to exactly ``0.0``;
    the weighted-mean score of such a bucket is ``0/0`` (NaN) or so
    quantized by subnormal arithmetic that it lands outside its own
    bucket, breaking the ascending-score invariant
    :func:`_merge_two` depends on.  A line whose mass cannot even be
    represented as a normal float is unobservable noise, so those
    buckets are dropped (see :data:`_MIN_CELL_MASS`).

    Segment sums go through :func:`_segment_sums` (a ``np.bincount``
    scatter-add) rather than ``np.add.reduceat``: the reduceat
    summation order is SIMD-width dependent, while the bincount loop
    is strictly sequential per segment — the association the native
    kernel backend replicates exactly, keeping both backends
    byte-identical on every platform.
    """
    if len(scores) > 1:
        dup = scores[1:] == scores[:-1]
        if dup.any():
            boundaries = np.r_[True, ~dup]
            starts = np.flatnonzero(boundaries)
            segments = np.cumsum(boundaries) - 1
            vectors = vectors[_segment_winners(probs, starts)]
            probs = _segment_sums(probs, segments)
            scores = scores[starts]
    if len(scores) > max_lines:
        low = scores[0]
        width = (scores[-1] - low) / max_lines
        bucket = np.minimum(
            ((scores - low) / width).astype(np.int64), max_lines - 1
        )
        boundaries = np.r_[True, bucket[1:] != bucket[:-1]]
        starts = np.flatnonzero(boundaries)
        segments = np.cumsum(boundaries) - 1
        vectors = vectors[_segment_winners(probs, starts)]
        weighted = _segment_sums(probs * scores, segments)
        probs = _segment_sums(probs, segments)
        with np.errstate(invalid="ignore"):
            scores = weighted / probs
        dead = probs < _MIN_CELL_MASS
        if dead.any():
            live = ~dead
            scores = scores[live]
            probs = probs[live]
            vectors = vectors[live]
    return scores, probs, vectors


def _combine(
    unit: _Unit,
    skip_cell: _Cell | None,
    take_cell: _Cell | None,
    arena: _Arena,
    max_lines: int,
) -> _Cell | None:
    """One distribution-merging step (Section 3.2, steps 1-3).

    ``skip_cell`` is ``D[r+1][j]`` (unit absent), ``take_cell`` is
    ``D[r+1][j-1]`` (one constituent exists and is prepended).
    """
    parts: list[_Cell] = []
    if skip_cell is not None and unit.absent_prob > 0.0:
        scores, probs, vectors = skip_cell
        parts.append((scores, probs * unit.absent_prob, vectors))
    if take_cell is not None:
        scores, probs, vectors = take_cell
        for c_score, c_prob, c_tid in unit.constituents:
            parts.append(
                (
                    scores + c_score,
                    probs * c_prob,
                    arena.extend(c_tid, vectors),
                )
            )
    if not parts:
        return None
    scores, probs, vectors = parts[0] if len(parts) == 1 else _merge_parts(parts)
    return _reduce_cell(scores, probs, vectors, max_lines)


class _PythonEngine:
    """The numpy cell engine (always available).

    The DP control flow in this module — sweep order, column pruning,
    emit points — is parameterized over an *engine* so the compiled
    backend (:class:`repro.core.kernels.native.NativeEngine`) shares
    the orchestration by construction and can only differ in how a
    cell's arrays are combined, never in which combinations happen.
    Both engines produce bit-identical cells.

    Engine protocol:

    * ``const_cell()`` — the {0.0: 1.0} distribution, empty vector;
    * ``new_chain(ncols)`` — storage handle for one DP column chain
      (meaningful to the native engine's ping/pong slabs; ``None``
      here);
    * ``fold_into(chain, unit, pairs)`` — one :func:`_combine` per
      ``(skip, take)`` pair;
    * ``take_reduce(cell, item)`` — :func:`_take_ending` +
      :func:`_reduce_cell`, exported as ``(scores, probs, ids)``;
    * ``export_cell(cell)`` — a final cell as numpy arrays;
    * ``materialize_ids(ids)`` — arena ids to tid tuples;
    * ``mark()`` / ``release(mark)`` — scratch vector-arena windows.
    """

    backend = "python"

    __slots__ = ("max_lines", "arena")

    def __init__(self, max_lines: int) -> None:
        self.max_lines = max_lines
        self.arena = _Arena()

    def const_cell(self) -> _Cell:
        return (np.zeros(1), np.ones(1), np.zeros(1, dtype=np.int64))

    def new_chain(self, ncols: int) -> None:
        return None

    def fold_into(
        self, chain: None, unit: _Unit, pairs: Sequence[tuple]
    ) -> list[_Cell | None]:
        return [
            _combine(unit, skip, take, self.arena, self.max_lines)
            for skip, take in pairs
        ]

    def take_reduce(self, cell: _Cell | None, item) -> _Cell | None:
        taken = _take_ending(cell, item, self.arena)
        if taken is None:
            return None
        return _reduce_cell(*taken, self.max_lines)

    def export_cell(self, cell: _Cell) -> _Cell:
        return cell

    def materialize_ids(self, ids: np.ndarray) -> list[tuple]:
        vector = self.arena.vector
        return [vector(int(vec_id)) for vec_id in ids]

    def mark(self):
        return self.arena.mark()

    def release(self, mark) -> None:
        self.arena.release(mark)


def _engine_for(backend: str | None, max_lines: int):
    """Build the cell engine for one DP run.

    ``backend`` is the resolved planner choice (or ``None`` for auto);
    the ``REPRO_BACKEND`` environment variable overrides either way.
    Line budgets beyond the native slab cap silently use the python
    engine — the budgets that large only appear in exact-reference
    test helpers, and the outputs are identical regardless.
    """
    from repro.core import kernels

    if kernels.resolve_backend(backend) == "native":
        engine = kernels.native_engine(max_lines)
        if engine is not None:
            return engine
    return _PythonEngine(max_lines)


def _dp_run_multi(
    units: Sequence[_Unit],
    ks: Sequence[int],
    exit_enabled: Sequence[bool],
    max_lines: int,
    backend: str | None = None,
) -> dict[int, _Cell | None]:
    """One bottom-up dynamic program, read out at several columns.

    ``exit_enabled[r]`` states whether a top-k vector may *end* with
    the tuple at row ``r`` (i.e. whether the column-0 cell below row
    ``r`` holds the enabling distribution ``(0, 1)`` instead of the
    blocking ``(0, 0)`` of Section 3.3.2).

    The recurrence of column ``j`` reads only columns ``j`` and
    ``j - 1``, so computing extra columns never changes a column's
    cells: the ``k``-column of a multi-k run is byte-identical to a
    dedicated ``k``-run (the column-range pruning below only widens).
    Returns the final row-0 cells per requested ``k`` — vectors
    materialized as tid tuples in an object array — with ``None``
    where no vector can be formed.
    """
    _count_sweep()
    n = len(units)
    ks = sorted(set(ks))
    results: dict[int, _Cell | None] = {k: None for k in ks}
    live = [k for k in ks if k <= n]
    if not live:
        return results
    k_min, k_max = live[0], live[-1]
    engine = _engine_for(backend, max_lines)
    exit_cell = engine.const_cell()
    chain = engine.new_chain(k_max + 1)
    # below[j] holds D[r+1][j]; initially r+1 == n (virtual bottom row).
    below: list[_Cell | None] = [None] * (k_max + 1)
    for r in range(n - 1, -1, -1):
        unit = units[r]
        # Column 0 below row r: the exit point after picking row r last.
        below[0] = exit_cell if exit_enabled[r] else None
        cur: list[_Cell | None] = [None] * (k_max + 1)
        # Only columns completable from above matter: rows 0..r-1 can
        # supply at most r more picks (j >= k_min - r) and rows r..n-1
        # at most n - r picks (j <= n - r).
        j_low = max(1, k_min - r)
        j_high = min(k_max, n - r)
        js = range(j_low, j_high + 1)
        outs = engine.fold_into(
            chain, unit, [(below[j], below[j - 1]) for j in js]
        )
        for j, out in zip(js, outs):
            cur[j] = out
        below = cur
    for k in live:
        final = below[k]
        if final is None:
            continue
        scores, probs, ids = engine.export_cell(final)
        vectors = np.empty(len(ids), dtype=object)
        for index, vector in enumerate(engine.materialize_ids(ids)):
            vectors[index] = vector
        results[k] = (scores, probs, vectors)
    return results


def _dp_run(
    units: Sequence[_Unit],
    k: int,
    exit_enabled: Sequence[bool],
    max_lines: int,
    backend: str | None = None,
) -> _Cell | None:
    """One bottom-up dynamic program over ``units`` (single read-out).

    Returns the final cell — row 0, column k — with vectors already
    materialized as tid tuples in an object array, or ``None`` when no
    vector can be formed.
    """
    return _dp_run_multi(units, (k,), exit_enabled, max_lines, backend)[k]


def _compressed_units(
    scored: ScoredTable,
    cutoff: int,
    exclude_group: int | None,
) -> list[_Unit]:
    """Rule tuples for the rows above ``cutoff`` (positions < cutoff).

    Every ME group is reduced to its members ranked above the cutoff
    (the truncation of Section 3.3.2) and compressed into one rule
    tuple.  ``exclude_group`` (the ending tuple's own group) is removed
    entirely: given that the ending tuple exists, its group mates are
    absent with probability 1 and must not contribute ``1 - p``
    factors.  Units are ordered by their highest-ranked member for
    determinism (order is semantically irrelevant once the ending is
    fixed).
    """
    members_by_group: dict[int, list[tuple[float, float, Any]]] = {}
    order: list[int] = []
    for pos in range(cutoff):
        item = scored[pos]
        if item.group == exclude_group:
            continue
        if item.group not in members_by_group:
            members_by_group[item.group] = []
            order.append(item.group)
        members_by_group[item.group].append(
            (item.score, item.prob, item.tid)
        )
    return [_Unit(members_by_group[g]) for g in order]


def _merge_cells(cells: list[_Cell], max_lines: int) -> _Cell | None:
    """Union of per-ending final cells, reduced to the line budget.

    Equal scores merge exactly; the line budget is enforced by the same
    grid coalescing as the intermediate distributions.
    """
    if not cells:
        return None
    scores, probs, vectors = cells[0] if len(cells) == 1 else _merge_parts(cells)
    return _reduce_cell(scores, probs, vectors, max_lines)


def _order_cell_vectors(cell: _Cell | None, scored: ScoredTable) -> _Cell | None:
    """Re-order each vector into canonical rank order.

    In the mutual-exclusion dynamic programs the rows are compressed
    rule tuples ordered by their *highest* member, so a vector's tids
    accumulate in unit order, which may interleave ranks; the vector's
    tuple *set* is correct either way.  Presentation (and Definition 2)
    wants rank order.
    """
    if cell is None:
        return None
    position = {scored[pos].tid: pos for pos in range(len(scored))}
    scores, probs, vectors = cell
    ordered = np.empty(len(vectors), dtype=object)
    for index, vector in enumerate(vectors):
        ordered[index] = tuple(sorted(vector, key=position.__getitem__))
    return scores, probs, ordered


def _cell_to_pmf(cell: _Cell | None) -> ScorePMF:
    """Convert a DP cell into a public :class:`ScorePMF`."""
    if cell is None:
        return ScorePMF(())
    scores, probs, vectors = cell
    return ScorePMF(
        (float(s), float(p), v) for s, p, v in zip(scores, probs, vectors)
    )


def dp_distribution(
    scored: ScoredTable,
    k: int,
    *,
    max_lines: int = DEFAULT_MAX_LINES,
    backend: str | None = None,
) -> ScorePMF:
    """Top-k total-score distribution of a rank-ordered scored table.

    ``scored`` should already be truncated to the Theorem-2 scan depth
    (the :func:`repro.core.distribution.top_k_score_distribution`
    facade does this).  Handles independent tuples, mutual exclusion
    and score ties, per Sections 3.2–3.4.

    :param scored: canonical rank-ordered input.
    :param k: how many tuples a top-k vector holds (>= 1).
    :param max_lines: coalescing budget per distribution.
    :param backend: kernel backend — ``python``, ``native`` or
        ``auto``/``None``; results are byte-identical either way (the
        ``REPRO_BACKEND`` environment variable overrides).
    :returns: the (possibly sub-unit-mass) score distribution, each
        line carrying the most probable vector attaining its score.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    n = len(scored)
    if n < k:
        return ScorePMF(())

    if scored.me_member_count() == 0:
        # Basic case (Section 3.2): tuples are independent; a single
        # dynamic program with every exit point enabled suffices.
        units = [
            _Unit([(item.score, item.prob, item.tid)]) for item in scored
        ]
        return _cell_to_pmf(_dp_run(units, k, [True] * n, max_lines, backend))

    # Mutual-exclusion case (Section 3.3): one shared-prefix forward
    # sweep over all ending units (Section 3.3.3, the O(kmn) path).
    partial = _shared_prefix_sweep(scored, k, max_lines, backend)
    merged = _order_cell_vectors(_merge_cells(partial, max_lines), scored)
    return _cell_to_pmf(merged)


def me_straddle_intervals(scored: ScoredTable) -> tuple[tuple[int, int], ...]:
    """Depth intervals that split a multi-member group to a singleton.

    For each multi-member ME group with sorted member positions
    ``p0 < p1 < ...``, any truncation depth ``d`` with
    ``p0 < d <= p1`` keeps exactly one member — the depth-``d`` prefix
    then treats the survivor as an *independent* tuple, while a deeper
    sweep compresses it into a rule tuple, so sliced results would not
    be byte-identical to a dedicated run.  The planner refuses to fuse
    requests whose depth falls inside any returned ``(p0, p1]``
    interval (and requests whose depth is ``<= p0`` for every group,
    whose prefix is therefore independent, take the bottom-up path).
    """
    intervals = []
    for g in scored.groups():
        positions = scored.group_positions(g)
        if len(positions) > 1:
            intervals.append((positions[0], positions[1]))
    return tuple(intervals)


def sliceable_depth(scored: ScoredTable, depth: int) -> bool:
    """Whether ``depth`` may be sliced from a fused ME sweep of
    ``scored``: the depth-prefix must see the exact same rule-tuple
    structure the full sweep sees (no straddled group, and at least
    one multi-member group fully inside the prefix)."""
    has_me = False
    for p0, p1 in me_straddle_intervals(scored):
        if p0 < depth <= p1:
            return False
        if p1 < depth:
            has_me = True
    return has_me


def dp_distribution_sliced(
    scored: ScoredTable,
    requests: Sequence[tuple[int, int]],
    *,
    max_lines: int = DEFAULT_MAX_LINES,
    backend: str | None = None,
) -> list[ScorePMF]:
    """Several ``(k, depth)`` distributions from one dynamic program.

    This is the fused execution path behind
    :meth:`repro.api.session.Session.execute_many`: each returned PMF
    is byte-identical to
    ``dp_distribution(scored.prefix(depth), k, max_lines=max_lines)``
    while the sweep itself runs once.

    Two regimes:

    * **mutual exclusion** (``scored.me_member_count() > 0``): the
      forward shared-prefix sweep serves any mix of ``k`` and
      ``depth``, as long as every depth passes
      :func:`sliceable_depth` (callers group accordingly);
    * **independent tuples**: the bottom-up program is sliced per
      column, which requires every request to share the same depth
      (``len(scored)`` — nested-depth independent requests cannot
      share a bottom-up program, whose sub-problems are suffixes).

    :raises AlgorithmError: on an invalid ``k``/``depth`` or a request
        mix the single sweep cannot serve byte-identically.
    """
    if not requests:
        return []
    n = len(scored)
    for k, depth in requests:
        if k < 1:
            raise AlgorithmError(f"k must be >= 1, got {k}")
        if not 0 <= depth <= n:
            raise AlgorithmError(
                f"depth must be in [0, {n}], got {depth}"
            )

    if scored.me_member_count() == 0:
        if any(depth != n for _, depth in requests):
            raise AlgorithmError(
                "independent-prefix requests must all share the sweep "
                "depth; group nested depths into separate sweeps"
            )
        units = [
            _Unit([(item.score, item.prob, item.tid)]) for item in scored
        ]
        cells = _dp_run_multi(
            units, [k for k, _ in requests], [True] * n, max_lines, backend
        )
        return [_cell_to_pmf(cells[k]) for k, _ in requests]

    for _, depth in requests:
        if depth < n and not sliceable_depth(scored, depth):
            raise AlgorithmError(
                f"depth {depth} cannot be sliced from this sweep: the "
                "prefix's rule-tuple structure differs (straddled or "
                "absent ME group)"
            )
    partial = _shared_prefix_sweep_multi(scored, requests, max_lines, backend)
    return [
        _cell_to_pmf(
            _order_cell_vectors(_merge_cells(cells, max_lines), scored)
        )
        for cells in partial
    ]


def _fold_unit(
    state: list[_Cell | None],
    unit: _Unit,
    engine,
    chain,
    low: int = 0,
) -> list[_Cell | None]:
    """Advance forward DP columns by one unit (non-destructively).

    ``state[j]`` is the distribution over picking exactly ``j``
    constituents among the folded units, with the absent factor of
    every unpicked unit applied — i.e. the transposed view of the
    bottom-up recurrence, which yields the same distributions because
    the unit set is what matters, not the fold order.

    ``low`` prunes columns that can no longer matter: when only ``r``
    folds remain before the last read of column ``k-1``, a column
    ``j < k-1-r`` cannot climb there in time, so callers pass
    ``low = k-1-r`` (the mirror of the ``j_low``/``j_high`` range
    pruning in :func:`_dp_run`).  Pruned columns are ``None``.
    """
    columns = len(state)
    js = list(range(columns - 1, max(low, 1) - 1, -1))
    pairs = [(state[j], state[j - 1]) for j in js]
    if low == 0:
        js.append(0)
        pairs.append((state[0], None))
    outs = engine.fold_into(chain, unit, pairs)
    new: list[_Cell | None] = [None] * columns
    for j, out in zip(js, outs):
        new[j] = out
    return new


def _take_ending(
    state_cell: _Cell | None,
    item,
    arena: _Arena,
) -> _Cell | None:
    """Attach an ending tuple as the k-th pick of a prefix state."""
    if state_cell is None:
        return None
    scores, probs, vectors = state_cell
    return (
        scores + item.score,
        probs * item.prob,
        arena.extend(item.tid, vectors),
    )


def _shared_prefix_sweep_multi(
    scored: ScoredTable,
    requests: Sequence[tuple[int, int]],
    max_lines: int,
    backend: str | None = None,
) -> list[list[_Cell]]:
    """Per-ending final cells from one forward pass (Section 3.3.3),
    sliced per ``(k, depth)`` request.

    The sweep maintains, incrementally:

    * ``ind_state`` — DP columns ``0..k_max-1`` over every
      singleton-group tuple passed so far (the shared compressed
      prefix);
    * ``members[g]`` — the constituents of each multi-member group
      passed so far (the group's rule tuple, grown member-by-member
      instead of being rebuilt from scratch per ending).

    Reaching an ending unit, only the current rule tuples (at most the
    paper's ``m``) are folded on top of the shared state — excluding
    the ending's own group, whose mates are absent with probability 1
    once the ending is fixed — and the ending's own rows are attached.
    Lead-tuple regions pay the rule fold once and then extend the
    state row by row, emitting one exit cell per region row.

    Multi-request slicing: each request ``(k, depth)`` collects the
    exit cells at column ``k - 1`` for ending positions ``< depth``.
    A per-ending cell depends only on the rows *above* the ending and
    on its own column, so the collected cells — and hence the merged
    per-request distribution — are byte-identical to a dedicated
    sweep over ``scored.prefix(depth)`` with that ``k``, provided no
    multi-member group of ``scored`` is split by ``depth`` down to a
    single member (the planner's straddle check; see
    :func:`dp_distribution_sliced`).  Column-range pruning is driven
    by the smallest requested ``k``, which only widens the computed
    range and never changes a column's cells.

    Emitted cells are materialized (vectors as tid tuples) right away
    and the per-ending fold chunks released from the arena, so the
    arena footprint tracks the shared prefix, not the whole sweep.
    """
    _count_sweep()
    engine = _engine_for(backend, max_lines)
    k_min = min(k for k, _ in requests)
    k_max = max(k for k, _ in requests)
    multi = {
        g
        for g in scored.groups()
        if len(scored.group_positions(g)) > 1
    }
    members: dict[int, list[tuple[float, float, Any]]] = {g: [] for g in multi}
    rule_order: list[int] = []  # multi groups by first (lead) appearance
    rule_cache: dict[int, _Unit] = {}
    ind_state: list[_Cell | None] = (
        [engine.const_cell()] + [None] * (k_max - 1)
    )
    # The shared prefix and the per-ending scratch folds advance on
    # separate chains: scratch ping/pong must never clobber the live
    # shared-prefix cells it reads from.
    ind_chain = engine.new_chain(k_max)
    scratch_chain = engine.new_chain(k_max)

    def folded_rules(
        exclude_group: int | None, row_slack: int
    ) -> list[_Cell | None]:
        """Fold the current rule tuples on top of the shared state.

        ``row_slack`` is how many more per-row folds the caller will
        apply before its last exit (region width minus one); it widens
        the column range that can still reach ``k_min - 1``.
        """
        rules = [
            g for g in rule_order if g != exclude_group and members[g]
        ]
        state = ind_state
        for index, g in enumerate(rules):
            unit = rule_cache.get(g)
            if unit is None:
                unit = rule_cache[g] = _Unit(members[g])
            remaining = len(rules) - index - 1 + row_slack
            state = _fold_unit(
                state, unit, engine, scratch_chain,
                max(0, k_min - 1 - remaining),
            )
        return state

    def materialize(exported: _Cell) -> _Cell:
        scores, probs, ids = exported
        vectors = np.empty(len(ids), dtype=object)
        for index, vector in enumerate(engine.materialize_ids(ids)):
            vectors[index] = vector
        return scores, probs, vectors

    partial: list[list[_Cell]] = [[] for _ in requests]

    def emit(state: list[_Cell | None], pos: int) -> None:
        item = scored[pos]
        for index, (k, depth) in enumerate(requests):
            if pos >= depth:
                continue
            exported = engine.take_reduce(state[k - 1], item)
            if exported is not None:
                partial[index].append(materialize(exported))

    for start, end in _ending_units(scored):
        # Emit this span's exit cells from the state accumulated so
        # far; the fold chunks are scratch, released after emitting.
        if end > k_min - 1:
            scratch = engine.mark()
            if end - start == 1 and not scored.is_lead(start):
                state = folded_rules(scored[start].group, 0)
                emit(state, start)
            else:
                state = folded_rules(None, end - start - 1)
                for pos in range(start, end):
                    item = scored[pos]
                    emit(state, pos)
                    if pos + 1 < end:
                        state = _fold_unit(
                            state,
                            _Unit([(item.score, item.prob, item.tid)]),
                            engine,
                            scratch_chain,
                            max(0, k_min - 1 - (end - 2 - pos)),
                        )
            engine.release(scratch)
        # Advance the shared prefix past the span's rows.
        for pos in range(start, end):
            item = scored[pos]
            if item.group in multi:
                if not members[item.group]:
                    rule_order.append(item.group)
                members[item.group].append((item.score, item.prob, item.tid))
                rule_cache.pop(item.group, None)
            else:
                ind_state = _fold_unit(
                    ind_state,
                    _Unit([(item.score, item.prob, item.tid)]),
                    engine,
                    ind_chain,
                )
    return partial


def _shared_prefix_sweep(
    scored: ScoredTable,
    k: int,
    max_lines: int,
    backend: str | None = None,
) -> list[_Cell]:
    """Per-ending final cells for one ``k`` over the whole table."""
    return _shared_prefix_sweep_multi(
        scored, [(k, len(scored))], max_lines, backend
    )[0]


def _ending_units(scored: ScoredTable) -> list[tuple[int, int]]:
    """Ending units as half-open spans, in position order.

    Lead-tuple regions come out as multi-position spans; every non-lead
    tuple is its own single-position span.  Together the spans tile
    ``[0, len(scored))``, so every possible ending position is covered
    exactly once (no double counting across dynamic programs).
    """
    spans: list[tuple[int, int]] = []
    pos = 0
    n = len(scored)
    while pos < n:
        if scored.is_lead(pos):
            end = pos + 1
            while end < n and scored.is_lead(end):
                end += 1
            spans.append((pos, end))
            pos = end
        else:
            spans.append((pos, pos + 1))
            pos += 1
    return spans


def _per_ending_cell(
    scored: ScoredTable,
    k: int,
    start: int,
    end: int,
    max_lines: int,
    backend: str | None = None,
) -> _Cell | None:
    """Final cell of one ending unit's bottom-up program (or None).

    The per-span unit of work of :func:`dp_distribution_per_ending`,
    shared with the process-parallel executor
    (:mod:`repro.core.kernels.parallel`): the returned cell's vectors
    are already materialized tid tuples, so it pickles cleanly across
    a worker-pool boundary.
    """
    if end <= k - 1:
        # A top-k vector's ending tuple sits at position >= k - 1.
        return None
    if end - start == 1 and not scored.is_lead(start):
        pos = start
        units = _compressed_units(scored, pos, scored[pos].group)
        item = scored[pos]
        units.append(_Unit([(item.score, item.prob, item.tid)]))
        exits = [False] * len(units)
        exits[-1] = True
    else:
        units = _compressed_units(scored, start, None)
        exits = [False] * len(units)
        for pos in range(start, end):
            item = scored[pos]
            units.append(_Unit([(item.score, item.prob, item.tid)]))
            exits.append(True)
    return _dp_run(units, k, exits, max_lines, backend)


def dp_distribution_per_ending(
    scored: ScoredTable,
    k: int,
    *,
    max_lines: int = DEFAULT_MAX_LINES,
    backend: str | None = None,
    workers: int | None = None,
) -> ScorePMF:
    """Ablation: one bottom-up dynamic program per ending unit.

    This is the pre-shared-prefix implementation of the ME path: every
    ending unit (lead-tuple region or individual non-lead tuple)
    launches a fresh bottom-up dynamic program and rebuilds the
    compressed prefix units from scratch, degrading toward O(kEn) with
    E ending units.  Semantically equivalent to :func:`dp_distribution`
    (which realizes the Section-3.3.3 O(kmn) bound by sharing the
    prefix state); kept for the ablation benchmark
    ``benchmarks/bench_ablation_shared_prefix.py``, mirroring
    :func:`dp_distribution_without_lead_regions`.

    Because the per-ending programs are independent, ``workers > 1``
    fans them out over a process pool (contiguous span chunks, results
    reassembled in span order — deterministic regardless of worker
    scheduling); the merged answer is byte-identical to the serial
    loop.  The sweep counter then reflects only parent-process work.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    n = len(scored)
    if n < k:
        return ScorePMF(())

    if scored.me_member_count() == 0:
        units = [
            _Unit([(item.score, item.prob, item.tid)]) for item in scored
        ]
        return _cell_to_pmf(_dp_run(units, k, [True] * n, max_lines, backend))

    spans = _ending_units(scored)
    if workers is not None and workers > 1 and len(spans) > 1:
        from repro.core.kernels.parallel import per_ending_cells

        partial = per_ending_cells(
            scored, k, spans, max_lines, backend, workers
        )
    else:
        partial = []
        for start, end in spans:
            cell = _per_ending_cell(scored, k, start, end, max_lines, backend)
            if cell is not None:
                partial.append(cell)
    merged = _order_cell_vectors(_merge_cells(partial, max_lines), scored)
    return _cell_to_pmf(merged)


def dp_distribution_without_lead_regions(
    scored: ScoredTable,
    k: int,
    *,
    max_lines: int = DEFAULT_MAX_LINES,
) -> ScorePMF:
    """Ablation: the "simple extension" of Section 3.3.2.

    Runs one dynamic program per ending *tuple* (positions k-1 .. n-1),
    never batching lead-tuple regions.  Semantically identical to
    :func:`dp_distribution`; asymptotically slower when most tuples are
    independent.  Used by ``benchmarks/bench_ablation_lead_regions.py``
    to quantify the Section 3.3.3 refinement.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    n = len(scored)
    if n < k:
        return ScorePMF(())
    partial: list[_Cell] = []
    for pos in range(k - 1, n):
        item = scored[pos]
        units = _compressed_units(scored, pos, item.group)
        units.append(_Unit([(item.score, item.prob, item.tid)]))
        exits = [False] * len(units)
        exits[-1] = True
        cell = _dp_run(units, k, exits, max_lines)
        if cell is not None:
            partial.append(cell)
    merged = _order_cell_vectors(_merge_cells(partial, max_lines), scored)
    return _cell_to_pmf(merged)
