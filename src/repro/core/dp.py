"""The main dynamic-programming algorithm (Sections 3.2–3.4).

The distribution of top-j total scores "starting from row r" is built
bottom-up: the distribution at ``(r, j)`` combines the one at
``(r+1, j)`` (row r absent, probabilities scaled by ``1 - p_r``) with
the one at ``(r+1, j-1)`` shifted by row r's score and scaled by
``p_r`` (Figure 5).  Line coalescing (Section 3.2.1) bounds every
intermediate distribution to a constant number of lines, giving the
O(kn) bound for independent tuples.

Mutual exclusion (Section 3.3) is handled by fixing the *last* (k-th)
tuple of the vector: with the ending fixed, row order is irrelevant, so
every other ME group can be compressed into a *rule tuple* whose "take"
step adds each constituent ``(score, prob)`` separately and whose
"skip" step multiplies by ``1 - (group mass above the ending)``.
Vectors ending anywhere in a *lead-tuple region* (a maximal contiguous
run of tuples that each rank first in their group) share one dynamic
program whose *exit points* — the auxiliary column-0 cells of Figure 6
— are enabled exactly at the region rows and blocked elsewhere.

Ties (Section 3.4) need no structural change: the canonical
``(score desc, prob desc)`` order of :class:`ScoredTable` makes the
per-configuration probabilities come out right (Theorem 3) and the
recorded representative vector the most probable one.

Implementation notes
--------------------
Cell distributions are ``(scores, probs, vectors)`` triples with the
numeric columns as ascending numpy arrays; representative vectors are
shared cons-lists ``(tid, parent)`` so the "take" step prepends in
O(1) per line.  Intermediate coalescing uses an equi-width grid over
the cell's own span (weighted-mean score, summed probability, heavier
line's vector per occupied bucket): every merge joins lines at most
``cell span / max_lines`` apart, and since intermediate spans never
exceed the final span (Section 3.2.1), the merge radius is bounded by
the same δ as the paper's closest-pair strategy.  The public
:func:`repro.core.coalesce.coalesce_lines` keeps the exact pairwise
strategy for presentation-time coalescing.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Sequence

import numpy as np

from repro.core.pmf import ScorePMF
from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable

#: Default cap on the number of lines kept per distribution; the paper
#: uses c' = 200 as its running example (Section 3.2.1).
DEFAULT_MAX_LINES = 200

#: A cell distribution: (scores ascending, probs, vectors) or None.
_Cell = tuple


class _Unit:
    """One DP row: an independent tuple or a compressed rule tuple.

    :ivar constituents: ``(score, prob, tid)`` per original tuple; a
        plain tuple has exactly one constituent.
    :ivar absent_prob: probability that no constituent exists
        (``1 - sum of constituent probabilities``, clamped at 0).
    """

    __slots__ = ("constituents", "absent_prob")

    def __init__(self, constituents: Sequence[tuple[float, float, Any]]):
        self.constituents = tuple(constituents)
        mass = sum(p for _, p, _ in constituents)
        self.absent_prob = max(0.0, 1.0 - mass)


def _cons_to_vector(cell) -> tuple:
    """Unwind a cons-list ``(tid, parent)`` into a rank-ordered tuple."""
    out = []
    while cell is not None:
        out.append(cell[0])
        cell = cell[1]
    return tuple(out)


class _Arena:
    """Chunked storage of representative vectors as integer ids.

    Every "take" step of one dynamic program appends a *chunk*: all its
    lines share the prepended tid, and each line records the id of its
    parent vector.  Id 0 is the empty vector.  Vectors therefore live
    as int64 arrays inside the DP (every per-line operation is numpy
    fancy indexing) and only the final cell's handful of lines is ever
    materialized into tid tuples.
    """

    __slots__ = ("tids", "parents", "bases", "size")

    def __init__(self) -> None:
        self.tids: list = [None]
        self.parents: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        self.bases: list[int] = [0]
        self.size: int = 1

    def extend(self, tid, parent_ids: np.ndarray) -> np.ndarray:
        """New ids for lines prepending ``tid`` onto ``parent_ids``."""
        base = self.size
        self.tids.append(tid)
        self.parents.append(parent_ids)
        self.bases.append(base)
        self.size += len(parent_ids)
        return np.arange(base, base + len(parent_ids), dtype=np.int64)

    def vector(self, vec_id: int) -> tuple:
        """Materialize an id into a rank-ordered tuple of tids."""
        out = []
        while vec_id != 0:
            chunk = bisect_right(self.bases, vec_id) - 1
            out.append(self.tids[chunk])
            vec_id = int(self.parents[chunk][vec_id - self.bases[chunk]])
        return tuple(out)


def _segment_winners(probs: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Index of the heaviest line per segment (vectorized).

    Sorting by (segment id, prob) puts each segment's heaviest line
    last within its run, so the positions just before the next
    segment's start are the per-segment argmaxes.
    """
    counts = np.diff(np.append(starts, len(probs)))
    if counts.max() == 1:
        return starts
    segment_ids = np.repeat(np.arange(len(starts)), counts)
    order = np.lexsort((probs, segment_ids))
    return order[np.append(starts[1:], len(probs)) - 1]


def _reduce_cell(
    scores: np.ndarray,
    probs: np.ndarray,
    vectors: np.ndarray,
    max_lines: int,
) -> _Cell:
    """Merge equal scores, then grid-coalesce to ``max_lines`` lines.

    ``scores`` must already be ascending; ``vectors`` is an aligned
    numpy array (int64 arena ids inside a DP, object tuples at the
    cross-run merge).  Equal scores always merge (probabilities summed,
    heavier line's vector kept — the step-3 merge rule of Section 3.2);
    the grid pass runs only when the line budget is exceeded, and every
    grid merge joins lines at most ``cell span / max_lines`` apart —
    the same radius bound as the paper's closest-pair strategy, because
    intermediate spans never exceed the final span (Section 3.2.1).
    """
    if len(scores) > 1:
        dup = scores[1:] == scores[:-1]
        if dup.any():
            starts = np.flatnonzero(np.r_[True, ~dup])
            vectors = vectors[_segment_winners(probs, starts)]
            probs = np.add.reduceat(probs, starts)
            scores = scores[starts]
    if len(scores) > max_lines:
        low = scores[0]
        width = (scores[-1] - low) / max_lines
        bucket = np.minimum(
            ((scores - low) / width).astype(np.int64), max_lines - 1
        )
        starts = np.flatnonzero(np.r_[True, bucket[1:] != bucket[:-1]])
        vectors = vectors[_segment_winners(probs, starts)]
        weighted = np.add.reduceat(probs * scores, starts)
        probs = np.add.reduceat(probs, starts)
        scores = weighted / probs
    return scores, probs, vectors


def _combine(
    unit: _Unit,
    skip_cell: _Cell | None,
    take_cell: _Cell | None,
    arena: _Arena,
    max_lines: int,
) -> _Cell | None:
    """One distribution-merging step (Section 3.2, steps 1-3).

    ``skip_cell`` is ``D[r+1][j]`` (unit absent), ``take_cell`` is
    ``D[r+1][j-1]`` (one constituent exists and is prepended).
    """
    parts: list[_Cell] = []
    if skip_cell is not None and unit.absent_prob > 0.0:
        scores, probs, vectors = skip_cell
        parts.append((scores, probs * unit.absent_prob, vectors))
    if take_cell is not None:
        scores, probs, vectors = take_cell
        for c_score, c_prob, c_tid in unit.constituents:
            parts.append(
                (
                    scores + c_score,
                    probs * c_prob,
                    arena.extend(c_tid, vectors),
                )
            )
    if not parts:
        return None
    if len(parts) == 1:
        scores, probs, vectors = parts[0]
    else:
        scores = np.concatenate([part[0] for part in parts])
        probs = np.concatenate([part[1] for part in parts])
        vectors = np.concatenate([part[2] for part in parts])
        order = np.argsort(scores, kind="stable")
        scores = scores[order]
        probs = probs[order]
        vectors = vectors[order]
    return _reduce_cell(scores, probs, vectors, max_lines)


def _dp_run(
    units: Sequence[_Unit],
    k: int,
    exit_enabled: Sequence[bool],
    max_lines: int,
) -> _Cell | None:
    """One bottom-up dynamic program over ``units``.

    ``exit_enabled[r]`` states whether a top-k vector may *end* with
    the tuple at row ``r`` (i.e. whether the column-0 cell below row
    ``r`` holds the enabling distribution ``(0, 1)`` instead of the
    blocking ``(0, 0)`` of Section 3.3.2).

    Returns the final cell — row 0, column k — with vectors already
    materialized as tid tuples in an object array, or ``None`` when no
    vector can be formed.
    """
    n = len(units)
    if n < k:
        return None
    arena = _Arena()
    exit_cell = (
        np.zeros(1),
        np.ones(1),
        np.zeros(1, dtype=np.int64),
    )
    # below[j] holds D[r+1][j]; initially r+1 == n (virtual bottom row).
    below: list[_Cell | None] = [None] * (k + 1)
    for r in range(n - 1, -1, -1):
        unit = units[r]
        # Column 0 below row r: the exit point after picking row r last.
        below[0] = exit_cell if exit_enabled[r] else None
        cur: list[_Cell | None] = [None] * (k + 1)
        # Only columns completable from above matter: rows 0..r-1 can
        # supply at most r more picks (j >= k - r) and rows r..n-1 at
        # most n - r picks (j <= n - r).
        j_low = max(1, k - r)
        j_high = min(k, n - r)
        for j in range(j_low, j_high + 1):
            cur[j] = _combine(unit, below[j], below[j - 1], arena, max_lines)
        below = cur
    final = below[k]
    if final is None:
        return None
    scores, probs, ids = final
    vectors = np.empty(len(ids), dtype=object)
    for index, vec_id in enumerate(ids):
        vectors[index] = arena.vector(int(vec_id))
    return scores, probs, vectors


def _compressed_units(
    scored: ScoredTable,
    cutoff: int,
    exclude_group: int | None,
) -> list[_Unit]:
    """Rule tuples for the rows above ``cutoff`` (positions < cutoff).

    Every ME group is reduced to its members ranked above the cutoff
    (the truncation of Section 3.3.2) and compressed into one rule
    tuple.  ``exclude_group`` (the ending tuple's own group) is removed
    entirely: given that the ending tuple exists, its group mates are
    absent with probability 1 and must not contribute ``1 - p``
    factors.  Units are ordered by their highest-ranked member for
    determinism (order is semantically irrelevant once the ending is
    fixed).
    """
    members_by_group: dict[int, list[tuple[float, float, Any]]] = {}
    order: list[int] = []
    for pos in range(cutoff):
        item = scored[pos]
        if item.group == exclude_group:
            continue
        if item.group not in members_by_group:
            members_by_group[item.group] = []
            order.append(item.group)
        members_by_group[item.group].append(
            (item.score, item.prob, item.tid)
        )
    return [_Unit(members_by_group[g]) for g in order]


def _merge_cells(cells: list[_Cell], max_lines: int) -> _Cell | None:
    """Union of per-ending final cells, reduced to the line budget.

    Equal scores merge exactly; the line budget is enforced by the same
    grid coalescing as the intermediate distributions.
    """
    if not cells:
        return None
    if len(cells) == 1:
        scores, probs, vectors = cells[0]
    else:
        scores = np.concatenate([cell[0] for cell in cells])
        probs = np.concatenate([cell[1] for cell in cells])
        vectors = np.concatenate([cell[2] for cell in cells])
        order = np.argsort(scores, kind="stable")
        scores = scores[order]
        probs = probs[order]
        vectors = vectors[order]
    return _reduce_cell(scores, probs, vectors, max_lines)


def _order_cell_vectors(cell: _Cell | None, scored: ScoredTable) -> _Cell | None:
    """Re-order each vector into canonical rank order.

    In the mutual-exclusion dynamic programs the rows are compressed
    rule tuples ordered by their *highest* member, so a vector's tids
    accumulate in unit order, which may interleave ranks; the vector's
    tuple *set* is correct either way.  Presentation (and Definition 2)
    wants rank order.
    """
    if cell is None:
        return None
    position = {scored[pos].tid: pos for pos in range(len(scored))}
    scores, probs, vectors = cell
    ordered = np.empty(len(vectors), dtype=object)
    for index, vector in enumerate(vectors):
        ordered[index] = tuple(sorted(vector, key=position.__getitem__))
    return scores, probs, ordered


def _cell_to_pmf(cell: _Cell | None) -> ScorePMF:
    """Convert a DP cell into a public :class:`ScorePMF`."""
    if cell is None:
        return ScorePMF(())
    scores, probs, vectors = cell
    return ScorePMF(
        (float(s), float(p), v) for s, p, v in zip(scores, probs, vectors)
    )


def dp_distribution(
    scored: ScoredTable,
    k: int,
    *,
    max_lines: int = DEFAULT_MAX_LINES,
) -> ScorePMF:
    """Top-k total-score distribution of a rank-ordered scored table.

    ``scored`` should already be truncated to the Theorem-2 scan depth
    (the :func:`repro.core.distribution.top_k_score_distribution`
    facade does this).  Handles independent tuples, mutual exclusion
    and score ties, per Sections 3.2–3.4.

    :param scored: canonical rank-ordered input.
    :param k: how many tuples a top-k vector holds (>= 1).
    :param max_lines: coalescing budget per distribution.
    :returns: the (possibly sub-unit-mass) score distribution, each
        line carrying the most probable vector attaining its score.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    n = len(scored)
    if n < k:
        return ScorePMF(())

    if scored.me_member_count() == 0:
        # Basic case (Section 3.2): tuples are independent; a single
        # dynamic program with every exit point enabled suffices.
        units = [
            _Unit([(item.score, item.prob, item.tid)]) for item in scored
        ]
        return _cell_to_pmf(_dp_run(units, k, [True] * n, max_lines))

    # Mutual-exclusion case (Section 3.3): one dynamic program per
    # ending unit — each maximal lead-tuple region, and each non-lead
    # tuple individually.
    partial: list[_Cell] = []
    for start, end in _ending_units(scored):
        if end <= k - 1:
            # A top-k vector's ending tuple sits at position >= k - 1.
            continue
        if end - start == 1 and not scored.is_lead(start):
            pos = start
            units = _compressed_units(scored, pos, scored[pos].group)
            item = scored[pos]
            units.append(_Unit([(item.score, item.prob, item.tid)]))
            exits = [False] * len(units)
            exits[-1] = True
        else:
            units = _compressed_units(scored, start, None)
            exits = [False] * len(units)
            for pos in range(start, end):
                item = scored[pos]
                units.append(_Unit([(item.score, item.prob, item.tid)]))
                exits.append(True)
        cell = _dp_run(units, k, exits, max_lines)
        if cell is not None:
            partial.append(cell)
    merged = _order_cell_vectors(_merge_cells(partial, max_lines), scored)
    return _cell_to_pmf(merged)


def _ending_units(scored: ScoredTable) -> list[tuple[int, int]]:
    """Ending units as half-open spans, in position order.

    Lead-tuple regions come out as multi-position spans; every non-lead
    tuple is its own single-position span.  Together the spans tile
    ``[0, len(scored))``, so every possible ending position is covered
    exactly once (no double counting across dynamic programs).
    """
    spans: list[tuple[int, int]] = []
    pos = 0
    n = len(scored)
    while pos < n:
        if scored.is_lead(pos):
            end = pos + 1
            while end < n and scored.is_lead(end):
                end += 1
            spans.append((pos, end))
            pos = end
        else:
            spans.append((pos, pos + 1))
            pos += 1
    return spans


def dp_distribution_without_lead_regions(
    scored: ScoredTable,
    k: int,
    *,
    max_lines: int = DEFAULT_MAX_LINES,
) -> ScorePMF:
    """Ablation: the "simple extension" of Section 3.3.2.

    Runs one dynamic program per ending *tuple* (positions k-1 .. n-1),
    never batching lead-tuple regions.  Semantically identical to
    :func:`dp_distribution`; asymptotically slower when most tuples are
    independent.  Used by ``benchmarks/bench_ablation_lead_regions.py``
    to quantify the Section 3.3.3 refinement.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    n = len(scored)
    if n < k:
        return ScorePMF(())
    partial: list[_Cell] = []
    for pos in range(k - 1, n):
        item = scored[pos]
        units = _compressed_units(scored, pos, item.group)
        units.append(_Unit([(item.score, item.prob, item.tid)]))
        exits = [False] * len(units)
        exits[-1] = True
        cell = _dp_run(units, k, exits, max_lines)
        if cell is not None:
            partial.append(cell)
    merged = _order_cell_vectors(_merge_cells(partial, max_lines), scored)
    return _cell_to_pmf(merged)
