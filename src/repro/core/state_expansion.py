"""The StateExpansion baseline algorithm (Section 3.1, Figure 4).

Tuples are scanned in rank order; every live state branches into
"tuple exists" and "tuple does not exist".  States that accumulate k
tuples emit their (score, probability) into the output distribution;
states whose probability drops to ``p_tau`` or below are discarded.
The state space is exponential in the scan depth, which is exactly the
behaviour Figure 10 of the paper demonstrates.

Mutual exclusion is handled exactly (the paper runs StateExpansion on
the CarTel data, which has one ME group per road segment): each state
tracks which multi-member groups already contributed a tuple, and
branch probabilities use conditional *hazard* factors

    take:  p_t / (1 - S_before)      skip:  (1 - S_upto) / (1 - S_before)

where ``S_before``/``S_upto`` are the group's probability mass strictly
above / including the tuple.  The product of hazards along a state's
history equals the exact joint probability of that history, so the
pruning threshold and the emitted masses are exact.
"""

from __future__ import annotations

import gc

from repro.core.coalesce import coalesce_lines
from repro.core.dp import DEFAULT_MAX_LINES, _cons_to_vector
from repro.core.pmf import ScorePMF
from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable

#: Internal buffer bound: the emitted-line list is sorted/merged/
#: coalesced whenever it grows past this multiple of ``max_lines``.
_BUFFER_FACTOR = 8


class _State:
    """One partial top-k prefix.

    :ivar prob: exact probability of the branch history.
    :ivar score: total score of the chosen tuples.
    :ivar count: number of chosen tuples.
    :ivar groups: frozenset of multi-member group ids already consumed.
    :ivar vector: cons-list of chosen tids (highest rank innermost...
        actually outermost; unwound at emission).
    """

    __slots__ = ("prob", "score", "count", "groups", "vector")

    def __init__(self, prob, score, count, groups, vector):
        self.prob = prob
        self.score = score
        self.count = count
        self.groups = groups
        self.vector = vector


def state_expansion_distribution(
    scored: ScoredTable,
    k: int,
    *,
    p_tau: float = 0.0,
    max_lines: int = DEFAULT_MAX_LINES,
) -> ScorePMF:
    """Top-k score distribution via exhaustive state expansion.

    :param scored: canonical rank-ordered input (already truncated to
        the desired scan depth).
    :param k: vector size (>= 1).
    :param p_tau: states (and hence vectors) with probability <= this
        threshold are dropped, as in Figure 4.  ``0`` keeps everything
        (exact, exponential).
    :param max_lines: coalescing budget for the output distribution.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    if p_tau < 0.0:
        raise AlgorithmError(f"p_tau must be >= 0, got {p_tau!r}")
    n = len(scored)
    multi_groups = {
        item.group
        for item in scored
        if len(scored.group_positions(item.group)) > 1
    }
    # Probability mass of each multi-member group strictly above each
    # of its member positions, in scan order.
    mass_above: dict[int, float] = {}

    states: list[_State] = [_State(1.0, 0.0, 0, frozenset(), None)]
    emitted: list[list] = []

    def flush(final: bool = False) -> None:
        emitted.sort(key=lambda line: line[0])
        merged: list[list] = []
        for line in emitted:
            if merged and merged[-1][0] == line[0]:
                if line[1] > merged[-1][1]:
                    merged[-1][2] = line[2]
                merged[-1][1] += line[1]
            else:
                merged.append(line)
        coalesce_lines(merged, max_lines)
        emitted[:] = merged

    # The expansion allocates millions of short-lived container objects;
    # with a large surrounding heap CPython's generational collector
    # re-scans it on every threshold crossing, slowing the loop by more
    # than an order of magnitude.  None of the objects here form cycles,
    # so collection is safely paused for the duration.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _expand(scored, k, p_tau, max_lines, states, emitted,
                multi_groups, mass_above, flush)
    finally:
        if gc_was_enabled:
            gc.enable()
    flush(final=True)
    # States prepend the newest (lowest-ranked) pick, so the unwound
    # cons-list is in reverse rank order; flip it for presentation.
    return ScorePMF(
        (score, prob, tuple(reversed(_cons_to_vector(vector))))
        for score, prob, vector in emitted
    )


def _expand(
    scored: ScoredTable,
    k: int,
    p_tau: float,
    max_lines: int,
    states: list[_State],
    emitted: list[list],
    multi_groups: set,
    mass_above: dict[int, float],
    flush,
) -> None:
    """The Figure-4 expansion loop (see the caller for GC notes)."""
    n = len(scored)
    for pos in range(n):
        if not states:
            break
        item = scored[pos]
        is_multi = item.group in multi_groups
        if is_multi:
            before = mass_above.get(item.group, 0.0)
            mass_above[item.group] = before + item.prob
            denom = 1.0 - before
            take_factor = item.prob / denom
            skip_factor = max(0.0, (denom - item.prob) / denom)
        else:
            take_factor = item.prob
            skip_factor = 1.0 - item.prob
        next_states: list[_State] = []
        for state in states:
            consumed = is_multi and item.group in state.groups
            # Branch 1: the tuple exists (impossible when a group mate
            # was already chosen).
            if not consumed:
                prob = state.prob * take_factor
                if prob > p_tau:
                    score = state.score + item.score
                    vector = (item.tid, state.vector)
                    if state.count + 1 == k:
                        emitted.append([score, prob, vector])
                    else:
                        groups = (
                            state.groups | {item.group}
                            if is_multi
                            else state.groups
                        )
                        next_states.append(
                            _State(prob, score, state.count + 1, groups, vector)
                        )
            # Branch 2: the tuple does not exist.
            prob = state.prob if consumed else state.prob * skip_factor
            if prob > p_tau:
                next_states.append(
                    _State(
                        prob, state.score, state.count, state.groups,
                        state.vector,
                    )
                )
        states[:] = next_states
        if len(emitted) > _BUFFER_FACTOR * max_lines:
            flush()
