"""The line-coalescing strategy of Section 3.2.1.

Whenever a (intermediate or final) distribution holds more than a
configured number of vertical lines, the two closest lines merge into
one: the score becomes their average, the probability their sum, and
the representative vector the one of the higher-probability line.
Repeat until the budget is met.

The paper shows (Section 3.2.1) that coalescing an intermediate
distribution is equivalent to coalescing the final one, because lines
move rigidly (same shift, same scale) through the merging process, and
that intermediate spans never exceed the final span — so merging the
two closest lines never merges lines further apart than
``(s_max - s_min) / max_lines``.
"""

from __future__ import annotations

import heapq
from typing import MutableSequence

from repro.exceptions import AlgorithmError

#: A line is a mutable ``[score, prob, vector]`` triple during DP.
Line = MutableSequence


def coalesce_lines(lines: list, max_lines: int) -> list:
    """Reduce ``lines`` to at most ``max_lines`` by closest-pair merging.

    ``lines`` must be sorted ascending by score; each entry is a
    ``[score, prob, vector]`` triple (vector may be ``None``).  The
    input list is consumed (entries may be mutated); the returned list
    is the reduced distribution, still sorted.

    Merging rule (paper, Section 3.2.1): new score = arithmetic mean of
    the two scores, new probability = sum, representative vector = the
    one of the higher-probability line.

    Complexity: O(m log m) — a gap min-heap with lazy invalidation over
    a doubly-linked list of live lines.
    """
    if max_lines < 1:
        raise AlgorithmError(f"max_lines must be >= 1, got {max_lines}")
    m = len(lines)
    if m <= max_lines:
        return lines
    # Doubly-linked list over indices; heap of (gap, left_index, stamp)
    # entries invalidated lazily when a line mutates or dies.
    next_live = list(range(1, m)) + [-1]
    prev_live = [-1] + list(range(m - 1))
    alive = [True] * m
    stamp = [0] * m
    heap: list[tuple[float, int, int]] = [
        (lines[i + 1][0] - lines[i][0], i, 0) for i in range(m - 1)
    ]
    heapq.heapify(heap)
    remaining = m
    while remaining > max_lines:
        gap, left_index, seen = heapq.heappop(heap)
        if not alive[left_index] or stamp[left_index] != seen:
            continue
        right_index = next_live[left_index]
        if right_index < 0:
            continue
        left = lines[left_index]
        right = lines[right_index]
        if right[0] - left[0] != gap:
            # The right neighbour changed since this entry was pushed.
            stamp[left_index] += 1
            heapq.heappush(
                heap,
                (right[0] - left[0], left_index, stamp[left_index]),
            )
            continue
        merged_vector = left[2] if left[1] >= right[1] else right[2]
        if merged_vector is None:
            merged_vector = right[2] if left[2] is None else left[2]
        left[0] = (left[0] + right[0]) / 2.0
        left[1] = left[1] + right[1]
        left[2] = merged_vector
        alive[right_index] = False
        remaining -= 1
        after = next_live[right_index]
        next_live[left_index] = after
        if after >= 0:
            prev_live[after] = left_index
        stamp[left_index] += 1
        if after >= 0:
            heapq.heappush(
                heap,
                (lines[after][0] - left[0], left_index, stamp[left_index]),
            )
        before = prev_live[left_index]
        if before >= 0:
            stamp[before] += 1
            heapq.heappush(
                heap,
                (left[0] - lines[before][0], before, stamp[before]),
            )
    lines[:] = [lines[i] for i in range(m) if alive[i]]
    return lines


def merge_sorted_lines(a: list, b: list) -> list:
    """Merge two score-sorted line lists, combining equal scores.

    Equal scores become one line with summed probability, keeping the
    higher-probability representative vector (step 3 of the merging
    process in Section 3.2).  Inputs are not modified; entries of the
    output are fresh triples.
    """
    out: list = []
    i = j = 0
    while i < len(a) and j < len(b):
        sa, sb = a[i][0], b[j][0]
        if sa < sb:
            out.append([sa, a[i][1], a[i][2]])
            i += 1
        elif sb < sa:
            out.append([sb, b[j][1], b[j][2]])
            j += 1
        else:
            pa, pb = a[i][1], b[j][1]
            vector = a[i][2] if pa >= pb else b[j][2]
            if vector is None:
                vector = b[j][2] if a[i][2] is None else a[i][2]
            out.append([sa, pa + pb, vector])
            i += 1
            j += 1
    for index in range(i, len(a)):
        out.append([a[index][0], a[index][1], a[index][2]])
    for index in range(j, len(b)):
        out.append([b[index][0], b[index][1], b[index][2]])
    return out
