"""The Theorem-2 stopping condition (scan depth).

Tuples are scanned in rank order; once the accumulated probability mass
above a tuple (excluding its own ME group) reaches

    mu >= k + 1 + ln(1/p_tau) + sqrt(ln^2(1/p_tau) + 2 k ln(1/p_tau))

no tuple from that point on can belong to the top-k with probability
``p_tau`` or more, hence no top-k *vector* with probability >= p_tau is
missed either.  The ``+ 1`` absorbs the non-monotonicity introduced by
excluding the tuple's own ME group (whose mass is at most 1).

The scan always stops at a tie-group boundary: tuples sharing a score
either all satisfy the condition or none does, and the dynamic
programs need whole tie groups.
"""

from __future__ import annotations

import math

from repro.exceptions import AlgorithmError
from repro.uncertain.scoring import ScoredTable


def scan_depth_threshold(k: int, p_tau: float) -> float:
    """The right-hand side of the Theorem-2 inequality.

    :param k: the query's k (>= 1).
    :param p_tau: probability threshold in (0, 1); top-k vectors less
        probable than this may be dropped.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    if not 0.0 < p_tau < 1.0:
        raise AlgorithmError(f"p_tau must be in (0, 1), got {p_tau!r}")
    log_term = math.log(1.0 / p_tau)
    return k + 1.0 + log_term + math.sqrt(
        log_term * log_term + 2.0 * k * log_term
    )


def scan_depth(scored: ScoredTable, k: int, p_tau: float) -> int:
    """Number of rank-ordered tuples the algorithms must examine.

    Returns ``n`` such that tuples at positions ``0 .. n-1`` (in the
    canonical sort order) suffice: every top-k vector with probability
    >= ``p_tau`` lies entirely within them.  The returned depth is at
    least ``min(k, len(scored))`` and never exceeds ``len(scored)``,
    and always lands on a tie-group boundary.
    """
    threshold = scan_depth_threshold(k, p_tau)
    total = len(scored)
    # Accumulated probability of all tuples ranked strictly higher; the
    # group contribution above the current tuple is subtracted per
    # tuple (mu excludes the tuple's own ME group).
    prefix_mass = 0.0
    group_mass_above: dict[int, float] = {}
    stop: int | None = None
    for pos, item in enumerate(scored):
        own_group_above = group_mass_above.get(item.group, 0.0)
        mu = prefix_mass - own_group_above
        if mu >= threshold and pos >= k:
            stop = pos
            break
        prefix_mass += item.prob
        group_mass_above[item.group] = own_group_above + item.prob
    if stop is None:
        return total
    # Extend to the end of the stopping tuple's tie group.
    return scored.tie_range_end(stop) if _mid_tie(scored, stop) else stop


def _mid_tie(scored: ScoredTable, pos: int) -> bool:
    """True when cutting at ``pos`` would split a tie group."""
    return pos > 0 and scored[pos - 1].score == scored[pos].score
