"""The native DP engine: slab-resident cells driving ``_kernel.c``.

:mod:`repro.core.dp` parameterizes its control flow (sweep order,
column pruning, emit points) over an *engine* object; this module is
the compiled implementation.  The numpy twin is
``repro.core.dp._PythonEngine`` — both expose the same few methods,
so the DP orchestration is shared by construction and only the cell
arithmetic differs in implementation (never in result: the kernel
reproduces every float op, merge permutation and tie rule bit for
bit; see the header comment of ``_kernel.c``).

Memory model
------------
Cells live in preallocated float64 *slabs* instead of per-cell numpy
arrays: a cell handle is the plain tuple ``(slab, off, m, tag_off)``
— scores at ``slab[off:off+m]``, probs at ``slab[off+cap:...]``, and
the per-line vector ids (*tags*) at ``tags[tag_off:tag_off+m]`` in a
single shared int64 bump slab.  Each DP chain owns two ping/pong
buffers: a fold reads the current buffer and writes the other, so no
call ever aliases its output over an input.  The vector arena mirrors
``dp._Arena`` as flat numpy registries (chunk base ids + tag-slab
offsets + a python tid list), walked in C by ``repro_vectors``.

Everything python does per fold is O(columns) bookkeeping — header
assembly into preallocated buffers whose addresses are fetched once —
so the per-``_combine`` cost drops from several numpy kernel
launches to a share of one C call per fold.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.dp import _MIN_CELL_MASS

__all__ = ["NativeEngine"]

#: Initial tag-slab / chunk-registry / workspace sizes (all grow).
_INITIAL_TAGS = 4096
_INITIAL_CHUNKS = 1024
_WS_SEGMENTS_F = 6
_WS_SEGMENTS_I = 3


class _TakeUnit:
    """A single-constituent unit for the emit step (``_take_ending``)."""

    __slots__ = ("constituents", "absent_prob")

    def __init__(self, score: float, prob: float, tid: Any) -> None:
        self.constituents = ((score, prob, tid),)
        self.absent_prob = 0.0


class _Chain:
    """One DP column chain: two ping/pong slabs of ``ncols`` cells."""

    __slots__ = ("slabs", "active")

    def __init__(self, slab_a: int, slab_b: int) -> None:
        self.slabs = (slab_a, slab_b)
        self.active = 0

    @property
    def out_slab(self) -> int:
        return self.slabs[1 - self.active]

    def swap(self) -> None:
        self.active = 1 - self.active


class NativeEngine:
    """Drives ``repro_fold``/``repro_vectors`` for one DP run."""

    backend = "native"

    def __init__(self, lib, max_lines: int) -> None:
        self._fold = lib.fold
        self._vectors = lib.vectors
        self.max_lines = max_lines
        self.cap = max_lines

        # f64 cell slabs; index 0 is the constant cell (0.0, 1.0).
        self._slabs: list[np.ndarray] = []
        self._slab_ptrs = np.zeros(64, dtype=np.int64)
        const = np.zeros(2 * self.cap, dtype=np.float64)
        const[self.cap] = 1.0
        self._add_slab(const)
        self._const_cell = (0, 0, 1, 0)

        # Shared int64 tag slab; tags[0] = 0 is the empty vector.
        self._tags = np.zeros(_INITIAL_TAGS, dtype=np.int64)
        self._tags_ptr = self._tags.ctypes.data
        self._bump = 1

        # Vector arena registries (the native _Arena): chunk 0 is the
        # sentinel so real ids (>= 1) always bisect past it.
        self._chunk_bases = np.zeros(_INITIAL_CHUNKS, dtype=np.int64)
        self._chunk_offs = np.zeros(_INITIAL_CHUNKS, dtype=np.int64)
        self._chunk_bases_ptr = self._chunk_bases.ctypes.data
        self._chunk_offs_ptr = self._chunk_offs.ctypes.data
        self._tids: list = [None]
        self._nchunks = 1
        self._arena_size = 1

        # Scratch workspace for the kernel (grown on demand).
        self._ws_cap = 0
        self._ws = np.empty(0, dtype=np.float64)
        self._wsi = np.empty(0, dtype=np.int64)
        self._ws_ptr = 0
        self._wsi_ptr = 0
        self._grow_ws(8 * self.cap)

        # Header buffers, pointers fetched once.
        self._ihdr = np.empty(512, dtype=np.int64)
        self._ihdr_ptr = self._ihdr.ctypes.data
        self._fhdr = np.empty(128, dtype=np.float64)
        self._fhdr_ptr = self._fhdr.ctypes.data
        self._out_lens = np.empty(256, dtype=np.int64)
        self._out_lens_ptr = self._out_lens.ctypes.data

        # Vector-walk output buffers.
        self._vec_out = np.empty(1024, dtype=np.int64)
        self._vec_out_ptr = self._vec_out.ctypes.data
        self._vec_lens = np.empty(256, dtype=np.int64)
        self._vec_lens_ptr = self._vec_lens.ctypes.data

        # The emit chain: take_reduce folds one column into it.
        self._emit_chain = self.new_chain(1)

    # -- slab / buffer management ------------------------------------

    def _add_slab(self, buf: np.ndarray) -> int:
        index = len(self._slabs)
        if index >= len(self._slab_ptrs):
            grown = np.zeros(2 * len(self._slab_ptrs), dtype=np.int64)
            grown[:index] = self._slab_ptrs[:index]
            self._slab_ptrs = grown
        self._slabs.append(buf)
        self._slab_ptrs[index] = buf.ctypes.data
        return index

    def _grow_ws(self, need: int) -> None:
        new_cap = max(need, 2 * self._ws_cap)
        self._ws = np.empty(_WS_SEGMENTS_F * new_cap, dtype=np.float64)
        self._wsi = np.empty(_WS_SEGMENTS_I * new_cap, dtype=np.int64)
        self._ws_cap = new_cap
        self._ws_ptr = self._ws.ctypes.data
        self._wsi_ptr = self._wsi.ctypes.data

    def _ensure_tags(self, need: int) -> None:
        if need <= len(self._tags):
            return
        grown = np.zeros(max(need, 2 * len(self._tags)), dtype=np.int64)
        grown[: self._bump] = self._tags[: self._bump]
        self._tags = grown
        self._tags_ptr = grown.ctypes.data

    def _ensure_chunks(self, need: int) -> None:
        if need <= len(self._chunk_bases):
            return
        size = max(need, 2 * len(self._chunk_bases))
        bases = np.zeros(size, dtype=np.int64)
        offs = np.zeros(size, dtype=np.int64)
        bases[: self._nchunks] = self._chunk_bases[: self._nchunks]
        offs[: self._nchunks] = self._chunk_offs[: self._nchunks]
        self._chunk_bases = bases
        self._chunk_offs = offs
        self._chunk_bases_ptr = bases.ctypes.data
        self._chunk_offs_ptr = offs.ctypes.data

    def _ensure_hdrs(self, ints: int, floats: int, ncols: int) -> None:
        if ints > len(self._ihdr):
            self._ihdr = np.empty(max(ints, 2 * len(self._ihdr)), np.int64)
            self._ihdr_ptr = self._ihdr.ctypes.data
        if floats > len(self._fhdr):
            self._fhdr = np.empty(
                max(floats, 2 * len(self._fhdr)), np.float64
            )
            self._fhdr_ptr = self._fhdr.ctypes.data
        if ncols > len(self._out_lens):
            self._out_lens = np.empty(
                max(ncols, 2 * len(self._out_lens)), np.int64
            )
            self._out_lens_ptr = self._out_lens.ctypes.data

    # -- the engine protocol -----------------------------------------

    def const_cell(self) -> tuple:
        """The distribution {score 0.0: prob 1.0}, empty vector."""
        return self._const_cell

    def new_chain(self, ncols: int) -> _Chain:
        size = ncols * 2 * self.cap
        return _Chain(
            self._add_slab(np.empty(size, dtype=np.float64)),
            self._add_slab(np.empty(size, dtype=np.float64)),
        )

    def fold_into(
        self, chain: _Chain, unit, pairs: Sequence[tuple]
    ) -> list[tuple | None]:
        """Advance one unit over ``pairs`` of ``(skip, take)`` cells.

        The fused equivalent of one ``dp._combine`` per pair, in a
        single kernel call; returns the output cell handles (``None``
        where a pair had no parts), written to the chain's inactive
        buffer, which then becomes the active one.
        """
        ncols = len(pairs)
        if ncols == 0:
            return []
        consts = unit.constituents
        nconst = len(consts)
        cap = self.cap
        self._ensure_hdrs(
            6 + (7 + nconst) * ncols, 2 + 2 * nconst, ncols
        )
        self._ensure_tags(self._bump + ncols * cap)
        self._ensure_chunks(self._nchunks + ncols * nconst)

        out_slab = chain.out_slab
        hdr = [ncols, self.max_lines, nconst, out_slab, cap, 0]
        need_ws = 1
        for skip, take in pairs:
            if skip is None:
                hdr += (-1, 0, 0, 0)
                total = 0
            else:
                hdr += (skip[0], skip[1], skip[2], skip[3])
                total = skip[2]
            if take is None:
                hdr += (-1, 0, 0)
            else:
                hdr += (take[0], take[1], take[2])
                total += nconst * take[2]
            if total > need_ws:
                need_ws = total
        if need_ws > self._ws_cap:
            self._grow_ws(need_ws)

        # Register one arena chunk per (column, constituent) take part;
        # the kernel synthesizes line j's tag as base + j, exactly like
        # dp._Arena.extend.
        bases = self._chunk_bases
        offs = self._chunk_offs
        tids = self._tids
        count = self._nchunks
        size = self._arena_size
        for skip, take in pairs:
            if take is None:
                hdr += (0,) * nconst
                continue
            take_m = take[2]
            take_tag = take[3]
            for _score, _prob, tid in consts:
                bases[count] = size
                offs[count] = take_tag
                tids.append(tid)
                hdr.append(size)
                count += 1
                size += take_m
        self._nchunks = count
        self._arena_size = size

        self._ihdr[: len(hdr)] = hdr
        fhdr = [unit.absent_prob, _MIN_CELL_MASS]
        for score, _prob, _tid in consts:
            fhdr.append(score)
        for _score, prob, _tid in consts:
            fhdr.append(prob)
        self._fhdr[: len(fhdr)] = fhdr

        while True:
            appended = self._fold(
                self._ihdr_ptr,
                self._fhdr_ptr,
                self._slab_ptrs.ctypes.data,
                self._tags_ptr,
                self._bump,
                self._ws_ptr,
                self._ws_cap,
                self._wsi_ptr,
                self._out_lens_ptr,
            )
            if appended >= 0:
                break
            self._grow_ws(2 * self._ws_cap)

        lens = self._out_lens[:ncols].tolist()
        outs: list[tuple | None] = []
        tag_off = self._bump
        stride = 2 * cap
        for slot, m in enumerate(lens):
            if m < 0:
                outs.append(None)
            else:
                outs.append((out_slab, slot * stride, m, tag_off))
                tag_off += m
        self._bump += appended
        chain.swap()
        return outs

    def take_reduce(self, cell: tuple | None, item) -> tuple | None:
        """Attach an ending tuple as the final pick, then reduce.

        The native equivalent of ``_take_ending`` + ``_reduce_cell``:
        a one-column fold whose unit has the ending as its only
        constituent and no skip part.  Returns exported numpy arrays
        ``(scores, probs, ids)`` or ``None``.
        """
        if cell is None:
            return None
        unit = _TakeUnit(item.score, item.prob, item.tid)
        out = self.fold_into(self._emit_chain, unit, [(None, cell)])[0]
        if out is None:
            return None
        return self.export_cell(out)

    def export_cell(self, cell: tuple) -> tuple:
        """Copy a slab cell out as ``(scores, probs, ids)`` arrays."""
        slab, off, m, tag_off = cell
        buf = self._slabs[slab]
        return (
            buf[off : off + m].copy(),
            buf[off + self.cap : off + self.cap + m].copy(),
            self._tags[tag_off : tag_off + m].copy(),
        )

    def materialize_ids(self, ids: np.ndarray) -> list[tuple]:
        """Materialize arena ids into rank-ordered tid tuples (in C)."""
        n = len(ids)
        if n == 0:
            return []
        ids64 = np.ascontiguousarray(ids, dtype=np.int64)
        if n > len(self._vec_lens):
            self._vec_lens = np.empty(max(n, 2 * len(self._vec_lens)), np.int64)
            self._vec_lens_ptr = self._vec_lens.ctypes.data
        while True:
            total = self._vectors(
                ids64.ctypes.data,
                n,
                self._chunk_bases_ptr,
                self._chunk_offs_ptr,
                self._nchunks,
                self._tags_ptr,
                self._vec_out_ptr,
                len(self._vec_out),
                self._vec_lens_ptr,
            )
            if total >= 0:
                break
            self._vec_out = np.empty(2 * len(self._vec_out), np.int64)
            self._vec_out_ptr = self._vec_out.ctypes.data
        chunks = self._vec_out[:total].tolist()
        lens = self._vec_lens[:n].tolist()
        tids = self._tids
        vectors: list[tuple] = []
        pos = 0
        for ln in lens:
            vectors.append(tuple(tids[c] for c in chunks[pos : pos + ln]))
            pos += ln
        return vectors

    def mark(self) -> tuple[int, int, int]:
        """Checkpoint of (chunk count, arena size, tag bump)."""
        return self._nchunks, self._arena_size, self._bump

    def release(self, mark: tuple[int, int, int]) -> None:
        """Drop every chunk and tag appended since ``mark``."""
        self._nchunks, self._arena_size, self._bump = mark
        del self._tids[self._nchunks :]
