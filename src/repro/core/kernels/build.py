"""Compile and load the native DP kernel (``_kernel.c``).

The kernel is a plain C shared library with no ``Python.h``
dependency, so it builds with nothing but a C compiler::

    cc -O3 -fPIC -shared -o _repro_kernel.so _kernel.c

Resolution order when loading:

1. a prebuilt ``_repro_kernel.so`` sitting next to this module (what a
   wheel built by ``_build/backend.py`` ships when the build machine
   had a compiler);
2. a cached build under ``$REPRO_KERNEL_CACHE`` (default
   ``~/.cache/repro/kernels``), keyed by the source digest and
   platform so upgrades never load a stale binary;
3. a fresh compile into that cache, silently skipped when no compiler
   is on ``PATH`` — ``pip install`` never requires one.

Binding strategies, in order: ``ctypes`` (primary — raw buffer
addresses cross as plain integers at ~200 ns a call), then ``cffi`` in
ABI/dlopen mode when ctypes is unavailable or broken.  Every failure
is recorded rather than raised; callers see ``load() is None`` plus
:func:`load_error`, and the pure-numpy backend stays available.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path
from typing import Callable

__all__ = [
    "KernelLib",
    "ensure_built",
    "kernel_source",
    "load",
    "load_error",
    "reset",
]

#: Name of a prebuilt library shipped inside the package directory.
PREBUILT_NAME = "_repro_kernel.so"

_SOURCE = Path(__file__).with_name("_kernel.c")

_UNSET = object()
_LIB: object = _UNSET
_ERROR: str | None = None


class KernelLib:
    """Loaded kernel entry points plus provenance for reporting.

    :ivar fold: ``repro_fold`` — fused combine over DP columns.
    :ivar vectors: ``repro_vectors`` — arena-id chain materializer.
    :ivar strategy: binding used (``ctypes`` or ``cffi``).
    :ivar path: the shared library file that was loaded.
    """

    __slots__ = ("fold", "vectors", "strategy", "path")

    def __init__(
        self,
        fold: Callable[..., int],
        vectors: Callable[..., int],
        strategy: str,
        path: str,
    ) -> None:
        self.fold = fold
        self.vectors = vectors
        self.strategy = strategy
        self.path = path


def kernel_source() -> Path:
    """Path of the in-tree C source."""
    return _SOURCE


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "kernels"


def _source_digest() -> str:
    return hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:12]


def _compiler() -> str | None:
    override = os.environ.get("CC")
    candidates = [override] if override else ["cc", "gcc", "clang"]
    from shutil import which

    for name in candidates:
        if name and which(name):
            return name
    return None


def compile_kernel(source: Path, target: Path) -> None:
    """Compile ``source`` into the shared library ``target`` (atomic).

    :raises RuntimeError: when no compiler is available or it fails.
    """
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix=target.stem + ".", dir=str(target.parent)
    )
    os.close(fd)
    cmd = [cc, "-O3", "-fPIC", "-shared", "-o", tmp, str(source)]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{' '.join(cmd)} failed: {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def ensure_built() -> Path | None:
    """Locate (or build) the shared library; ``None`` when impossible.

    Never raises: a missing compiler or a failed compile records the
    reason for :func:`load_error` and returns ``None``.
    """
    global _ERROR
    prebuilt = _SOURCE.with_name(PREBUILT_NAME)
    if prebuilt.exists():
        return prebuilt
    platform_tag = sysconfig.get_platform().replace("-", "_")
    name = (
        f"_repro_kernel-{_source_digest()}-{platform_tag}"
        f"-cp{sys.version_info.major}{sys.version_info.minor}.so"
    )
    target = _cache_dir() / name
    if target.exists():
        return target
    try:
        compile_kernel(_SOURCE, target)
    except (RuntimeError, OSError) as exc:
        _ERROR = f"native kernel build failed: {exc}"
        return None
    return target


_FOLD_ARGS = [
    ctypes.c_void_p,  # ihdr
    ctypes.c_void_p,  # fhdr
    ctypes.c_void_p,  # slabs
    ctypes.c_void_p,  # tags
    ctypes.c_longlong,  # tag_start
    ctypes.c_void_p,  # ws
    ctypes.c_longlong,  # ws_cap
    ctypes.c_void_p,  # wsi
    ctypes.c_void_p,  # out_lens
]

_VECTORS_ARGS = [
    ctypes.c_void_p,  # ids
    ctypes.c_longlong,  # n
    ctypes.c_void_p,  # bases
    ctypes.c_void_p,  # offs
    ctypes.c_longlong,  # nchunks
    ctypes.c_void_p,  # tags
    ctypes.c_void_p,  # out
    ctypes.c_longlong,  # out_cap
    ctypes.c_void_p,  # lens
]


def _bind_ctypes(path: Path) -> KernelLib:
    lib = ctypes.CDLL(str(path))
    fold = lib.repro_fold
    fold.restype = ctypes.c_longlong
    fold.argtypes = _FOLD_ARGS
    vectors = lib.repro_vectors
    vectors.restype = ctypes.c_longlong
    vectors.argtypes = _VECTORS_ARGS
    return KernelLib(fold, vectors, "ctypes", str(path))


def _bind_cffi(path: Path) -> KernelLib:
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(
        """
        long long repro_fold(
            const long long *ihdr, const double *fhdr,
            const long long *slabs, long long *tags, long long tag_start,
            double *ws, long long ws_cap, long long *wsi,
            long long *out_lens);
        long long repro_vectors(
            const long long *ids, long long n, const long long *bases,
            const long long *offs, long long nchunks,
            const long long *tags, long long *out, long long out_cap,
            long long *lens);
        """
    )
    lib = ffi.dlopen(str(path))
    ll = "long long *"

    def fold(ihdr, fhdr, slabs, tags, tag_start, ws, ws_cap, wsi, out_lens):
        return lib.repro_fold(
            ffi.cast(ll, ihdr),
            ffi.cast("double *", fhdr),
            ffi.cast(ll, slabs),
            ffi.cast(ll, tags),
            tag_start,
            ffi.cast("double *", ws),
            ws_cap,
            ffi.cast(ll, wsi),
            ffi.cast(ll, out_lens),
        )

    def vectors(ids, n, bases, offs, nchunks, tags, out, out_cap, lens):
        return lib.repro_vectors(
            ffi.cast(ll, ids),
            n,
            ffi.cast(ll, bases),
            ffi.cast(ll, offs),
            nchunks,
            ffi.cast(ll, tags),
            ffi.cast(ll, out),
            out_cap,
            ffi.cast(ll, lens),
        )

    return KernelLib(fold, vectors, "cffi", str(path))


def load() -> KernelLib | None:
    """The loaded kernel, building it on first use; cached per process."""
    global _LIB, _ERROR
    if _LIB is not _UNSET:
        return _LIB if isinstance(_LIB, KernelLib) else None
    path = ensure_built()
    if path is None:
        _LIB = None
        return None
    errors = []
    for binder in (_bind_ctypes, _bind_cffi):
        try:
            lib = binder(path)
        except Exception as exc:  # noqa: BLE001 - record, fall through
            errors.append(f"{binder.__name__}: {exc}")
            continue
        _LIB = lib
        _ERROR = None
        return lib
    _LIB = None
    _ERROR = f"native kernel load failed: {'; '.join(errors)}"
    return None


def load_error() -> str | None:
    """Why the native kernel is unavailable (``None`` when it loaded)."""
    return _ERROR


def reset() -> None:
    """Forget the cached load state (tests poke at the environment)."""
    global _LIB, _ERROR
    _LIB = _UNSET
    _ERROR = None
