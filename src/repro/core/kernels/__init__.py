"""Kernel backends for the DP inner loop.

The numpy implementation in :mod:`repro.core.dp` is always available;
this package adds a compiled backend (``_kernel.c`` driven through
ctypes/cffi, see :mod:`repro.core.kernels.build`) and a process-
parallel per-ending executor (:mod:`repro.core.kernels.parallel`).
Outputs are byte-identical across backends — the planner and the
``REPRO_BACKEND`` override only trade wall-clock, never answers.

Backend names:

``python``
    The numpy path.  Always available.
``native``
    The compiled fused-fold kernel.  Forcing it on a machine where
    the extension cannot build or load raises
    :class:`repro.exceptions.KernelBackendError`.
``auto``
    ``native`` when loadable, else ``python`` (the default).

The ``REPRO_BACKEND`` environment variable always wins over both the
planner's choice and explicit ``backend=`` arguments, so CI and
debugging sessions can pin a backend without touching call sites.
"""

from __future__ import annotations

import os

from repro.core.kernels import build
from repro.exceptions import KernelBackendError

__all__ = [
    "BACKEND_ENV",
    "NATIVE_MAX_LINES",
    "backends_report",
    "native_available",
    "native_engine",
    "resolve_backend",
]

#: Environment override knob.
BACKEND_ENV = "REPRO_BACKEND"

#: Line budgets above this fall back to the numpy path even under the
#: native backend: the native engine preallocates per-column slabs of
#: ``max_lines`` doubles, and budgets that large only appear in
#: exact-reference test helpers where coalescing is disabled entirely.
NATIVE_MAX_LINES = 1024

_VALID = ("python", "native", "auto")


def native_available() -> bool:
    """Whether the compiled kernel loaded (building it on first ask)."""
    return build.load() is not None


def resolve_backend(requested: str | None = None) -> str:
    """Resolve a backend request to a concrete ``python``/``native``.

    ``requested`` is typically the planner's per-op choice (or ``None``
    for ``auto``); the ``REPRO_BACKEND`` environment variable, when
    set, overrides it.

    :raises KernelBackendError: on an unknown name, or when ``native``
        is forced but the compiled kernel is unavailable.
    """
    env = os.environ.get(BACKEND_ENV, "").strip().lower()
    choice = env or (requested or "auto").strip().lower()
    if choice not in _VALID:
        raise KernelBackendError(
            f"unknown kernel backend {choice!r}; expected one of {_VALID}"
        )
    if choice == "python":
        return "python"
    if native_available():
        return "native"
    if choice == "native":
        reason = build.load_error() or "no C compiler and no prebuilt kernel"
        raise KernelBackendError(
            f"kernel backend 'native' is unavailable: {reason}"
        )
    return "python"


def native_engine(max_lines: int):
    """A fresh :class:`~repro.core.kernels.native.NativeEngine`.

    ``None`` when the compiled kernel is unavailable or ``max_lines``
    exceeds :data:`NATIVE_MAX_LINES` (callers fall back to python).
    """
    if max_lines > NATIVE_MAX_LINES:
        return None
    lib = build.load()
    if lib is None:
        return None
    from repro.core.kernels.native import NativeEngine

    return NativeEngine(lib, max_lines)


def backends_report() -> dict:
    """Which backends this machine can run (for ``repro calibrate``)."""
    available = native_available()
    native: dict = {"available": available}
    if available:
        lib = build.load()
        assert lib is not None
        native["strategy"] = lib.strategy
        native["path"] = lib.path
    else:
        native["error"] = (
            build.load_error() or "no C compiler and no prebuilt kernel"
        )
    return {
        "python": {"available": True},
        "native": native,
        "parallel": {"cpus": os.cpu_count() or 1},
    }
