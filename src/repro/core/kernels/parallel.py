"""Process-parallel per-ending execution for large ME tables.

Every ending unit of the per-ending algorithm
(:func:`repro.core.dp.dp_distribution_per_ending`) is an independent
bottom-up dynamic program, so they fan out over a process pool with
no shared state.  Ending spans are split into one contiguous chunk
per worker; each worker computes its spans' final cells (vectors
already materialized as tid tuples, so the results pickle cleanly)
and the parent reassembles them in span order before the usual
``_merge_cells`` union — making the answer a deterministic function
of the input, independent of worker scheduling and of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

__all__ = ["default_workers", "per_ending_cells"]


def default_workers(units: int, est_serial_ms: float, spawn_ms: float) -> int:
    """How many workers the planner should use (1 = stay serial).

    Fan-out pays one pool spin-up (``spawn_ms``, measured by
    ``repro calibrate``); it is worth it only when the serial estimate
    dwarfs that and there is real hardware to fan out over.
    """
    cpus = os.cpu_count() or 1
    if cpus <= 1 or units <= 1:
        return 1
    if est_serial_ms <= 4.0 * spawn_ms:
        return 1
    return min(cpus, units)


def _worker(payload: tuple) -> list:
    scored, k, spans, max_lines, backend = payload
    from repro.core import dp

    cells = []
    for start, end in spans:
        cell = dp._per_ending_cell(scored, k, start, end, max_lines, backend)
        if cell is not None:
            cells.append(cell)
    return cells


def per_ending_cells(
    scored,
    k: int,
    spans: Sequence[tuple[int, int]],
    max_lines: int,
    backend: str | None,
    workers: int,
) -> list:
    """Final cells for ``spans``, computed across ``workers`` processes.

    Returns exactly what the serial loop would: the non-``None`` final
    cells in span order.
    """
    workers = max(1, min(workers, len(spans)))
    if workers == 1:
        return _worker((scored, k, tuple(spans), max_lines, backend))
    # Contiguous chunks keep each worker's arena footprint local and
    # make reassembly a plain concatenation in chunk order.
    chunk_size = (len(spans) + workers - 1) // workers
    payloads = [
        (
            scored,
            k,
            tuple(spans[lo : lo + chunk_size]),
            max_lines,
            backend,
        )
        for lo in range(0, len(spans), chunk_size)
    ]
    cells: list = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for chunk_cells in pool.map(_worker, payloads):
            cells.extend(chunk_cells)
    return cells
