/* Fused DP inner-loop kernel for the repro native backend.
 *
 * One call to repro_fold() advances every live column of a forward or
 * bottom-up DP fold in a single pass per column: part construction
 * (the "skip" scale and the per-constituent "take" shift/scale/tag
 * synthesis), the stable ascending k-way merge, the equal-score
 * reduction, the grid coalescing and the subnormal-mass drop — work
 * that costs 3-4 separate numpy kernel launches per _combine() on the
 * python backend.
 *
 * Bit-exactness contract (enforced by tests/test_kernel_backend.py and
 * the differential suites under REPRO_BACKEND=native):
 *
 *  - every elementwise float op (shift add, scale multiply, weighted
 *    product, division) is the same scalar IEEE-754 double op numpy
 *    performs, in the same order;
 *  - segment sums accumulate strictly left to right, matching
 *    repro.core.dp._segment_sums (np.bincount's scatter-add), which is
 *    why dp.py uses bincount rather than the SIMD-order-dependent
 *    np.add.reduceat;
 *  - merges are stable with earlier parts winning ties, the exact
 *    permutation of _merge_two's searchsorted(side="right");
 *  - the equal-score / grid tie winner is the *last* line holding the
 *    segment's maximum probability (_segment_winners' stable lexsort);
 *  - the float->int64 grid-bucket cast reproduces numpy's x86
 *    behaviour on NaN/overflow (INT64_MIN).
 *
 * The file is plain C99 with no Python.h dependency: it is compiled
 * with `cc -O3 -fPIC -shared` by repro.core.kernels.build and driven
 * through ctypes (or cffi in ABI mode) with raw buffer addresses, so
 * building it never requires Python development headers.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

typedef int64_t i64;
typedef double f64;

#if defined(_WIN32)
#define REPRO_API __declspec(dllexport)
#else
#define REPRO_API __attribute__((visibility("default")))
#endif

/* numpy's float64 -> int64 astype on x86: NaN and out-of-range values
 * collapse to INT64_MIN (cvttsd2si invalid-operation result).  The
 * plain C cast is undefined there, so guard explicitly. */
static i64
grid_cast(f64 q)
{
    if (isnan(q) || q >= 9223372036854775808.0 ||
        q < -9223372036854775808.0)
        return INT64_MIN;
    return (i64)q;
}

#define SWAP_F(a, b)                                                        \
    do {                                                                    \
        f64 *swap_tmp_ = (a);                                               \
        (a) = (b);                                                          \
        (b) = swap_tmp_;                                                    \
    } while (0)
#define SWAP_I(a, b)                                                        \
    do {                                                                    \
        i64 *swap_tmp_ = (a);                                               \
        (a) = (b);                                                          \
        (b) = swap_tmp_;                                                    \
    } while (0)

/* repro_fold — fused combine over ncols DP columns of one unit.
 *
 * ihdr (int64):
 *   [0] ncols   [1] max_lines   [2] nconst (constituents)
 *   [3] out_slab index          [4] cap (probs live at off + cap)
 *   [5] out_base offset in the out slab
 *   then ncols blocks of 7:
 *     skip_slab (-1 = absent), skip_off, skip_m, skip_tag,
 *     take_slab (-1 = absent), take_off, take_m
 *   then ncols * nconst chunk base ids (tag values for take parts;
 *     line j of constituent q gets tag base[c][q] + j).
 *
 * fhdr (float64):
 *   [0] absent_prob   [1] min_cell_mass
 *   [2 .. 2+nconst)           constituent score shifts
 *   [2+nconst .. 2+2*nconst)  constituent probability scales
 *
 * slabs: base addresses of the f64 cell slabs, indexed by the header.
 * tags:  the shared int64 tag slab; input cells read their tag run at
 *        their tag offset, output tags are appended from tag_start on.
 * ws / wsi: f64 and i64 scratch, 6 (resp. 3) segments of ws_cap each.
 * out_lens: per column, the output line count, or -1 for a None cell
 *        (no parts: no skip cell and no take cell).
 *
 * Output cell c lands at out_base + c*2*cap in the out slab (scores,
 * then probs at +cap); tags are packed in column order at
 * tags[tag_start ...].  Returns the total tag count appended, or -1
 * when ws_cap is too small (caller grows the scratch and retries; no
 * output was committed that cannot simply be overwritten).
 */
REPRO_API i64
repro_fold(const i64 *ihdr, const f64 *fhdr, const i64 *slabs, i64 *tags,
           i64 tag_start, f64 *ws, i64 ws_cap, i64 *wsi, i64 *out_lens)
{
    const i64 ncols = ihdr[0];
    const i64 max_lines = ihdr[1];
    const i64 nconst = ihdr[2];
    const i64 out_slab = ihdr[3];
    const i64 cap = ihdr[4];
    const i64 out_base = ihdr[5];
    const i64 *cols = ihdr + 6;
    const i64 *cbases = cols + 7 * ncols;
    const f64 absent = fhdr[0];
    const f64 min_mass = fhdr[1];
    const f64 *cscore = fhdr + 2;
    const f64 *cprob = fhdr + 2 + nconst;
    f64 *outp = (f64 *)(intptr_t)slabs[out_slab];
    i64 appended = 0;

    f64 *sA = ws, *pA = ws + ws_cap;
    f64 *sB = ws + 2 * ws_cap, *pB = ws + 3 * ws_cap;
    f64 *sC = ws + 4 * ws_cap, *pC = ws + 5 * ws_cap;
    i64 *tA = wsi, *tB = wsi + ws_cap, *tC = wsi + 2 * ws_cap;

    for (i64 c = 0; c < ncols; c++) {
        const i64 *col = cols + 7 * c;
        const i64 skip_slab = col[0], skip_off = col[1];
        const i64 skip_m = col[2], skip_tag = col[3];
        const i64 take_slab = col[4], take_off = col[5], take_m = col[6];
        const int have_skip = (skip_slab >= 0 && absent > 0.0);
        const int have_take = (take_slab >= 0);
        i64 acc = 0;
        i64 m;

        if (!have_skip && !have_take) {
            out_lens[c] = -1;
            continue;
        }
        if (have_skip) {
            const f64 *ss = (const f64 *)(intptr_t)slabs[skip_slab] + skip_off;
            const f64 *sp = ss + cap;
            const i64 *st = tags + skip_tag;
            if (skip_m > ws_cap)
                return -1;
            for (i64 i = 0; i < skip_m; i++) {
                sA[i] = ss[i];
                pA[i] = sp[i] * absent;
                tA[i] = st[i];
            }
            acc = skip_m;
        }
        if (have_take) {
            const f64 *ts = (const f64 *)(intptr_t)slabs[take_slab] + take_off;
            const f64 *tp = ts + cap;
            for (i64 q = 0; q < nconst; q++) {
                const f64 cs = cscore[q];
                const f64 cp = cprob[q];
                const i64 base = cbases[c * nconst + q];
                if (take_m > ws_cap || acc + take_m > ws_cap)
                    return -1;
                for (i64 i = 0; i < take_m; i++) {
                    sB[i] = ts[i] + cs;
                    pB[i] = tp[i] * cp;
                    tB[i] = base + i;
                }
                if (acc == 0) {
                    SWAP_F(sA, sB);
                    SWAP_F(pA, pB);
                    SWAP_I(tA, tB);
                    acc = take_m;
                } else if (take_m > 0) {
                    /* Stable merge: the accumulated earlier parts (A)
                     * win ties, matching _merge_parts' part order. */
                    i64 i = 0, j = 0, o = 0;
                    while (i < acc && j < take_m) {
                        if (sA[i] <= sB[j]) {
                            sC[o] = sA[i];
                            pC[o] = pA[i];
                            tC[o] = tA[i];
                            i++;
                        } else {
                            sC[o] = sB[j];
                            pC[o] = pB[j];
                            tC[o] = tB[j];
                            j++;
                        }
                        o++;
                    }
                    for (; i < acc; i++, o++) {
                        sC[o] = sA[i];
                        pC[o] = pA[i];
                        tC[o] = tA[i];
                    }
                    for (; j < take_m; j++, o++) {
                        sC[o] = sB[j];
                        pC[o] = pB[j];
                        tC[o] = tB[j];
                    }
                    SWAP_F(sA, sC);
                    SWAP_F(pA, pC);
                    SWAP_I(tA, tC);
                    acc = o;
                }
            }
        }

        m = acc;
        /* Equal-score reduction: sum probabilities left to right, keep
         * the first score of the run and the last max-probability
         * line's tag.  Bit-identical to the no-dup case as well (every
         * run is then a singleton: no additions happen). */
        if (m > 1) {
            i64 o = 0;
            f64 score = sA[0], psum = pA[0], best = pA[0];
            i64 tag = tA[0];
            for (i64 i = 1; i < m; i++) {
                if (sA[i] == score) {
                    psum += pA[i];
                    if (pA[i] >= best) {
                        best = pA[i];
                        tag = tA[i];
                    }
                } else {
                    sB[o] = score;
                    pB[o] = psum;
                    tB[o] = tag;
                    o++;
                    score = sA[i];
                    psum = pA[i];
                    best = pA[i];
                    tag = tA[i];
                }
            }
            sB[o] = score;
            pB[o] = psum;
            tB[o] = tag;
            o++;
            SWAP_F(sA, sB);
            SWAP_F(pA, pB);
            SWAP_I(tA, tB);
            m = o;
        }

        /* Grid coalescing + subnormal-mass drop, only past the line
         * budget (the _reduce_cell grid branch). */
        if (m > max_lines) {
            const f64 low = sA[0];
            const f64 width = (sA[m - 1] - low) / (f64)max_lines;
            i64 o = 0;
            i64 prev = 0;
            f64 psum = 0.0, wsum = 0.0, best = 0.0;
            i64 tag = 0;
            for (i64 i = 0; i < m; i++) {
                f64 q = (sA[i] - low) / width;
                i64 b = grid_cast(q);
                if (b > max_lines - 1)
                    b = max_lines - 1;
                if (i == 0) {
                    prev = b;
                    psum = pA[i];
                    wsum = pA[i] * sA[i];
                    best = pA[i];
                    tag = tA[i];
                } else if (b != prev) {
                    f64 sc = wsum / psum;
                    if (!(psum < min_mass)) {
                        sB[o] = sc;
                        pB[o] = psum;
                        tB[o] = tag;
                        o++;
                    }
                    prev = b;
                    psum = pA[i];
                    wsum = pA[i] * sA[i];
                    best = pA[i];
                    tag = tA[i];
                } else {
                    psum += pA[i];
                    wsum += pA[i] * sA[i];
                    if (pA[i] >= best) {
                        best = pA[i];
                        tag = tA[i];
                    }
                }
            }
            {
                f64 sc = wsum / psum;
                if (!(psum < min_mass)) {
                    sB[o] = sc;
                    pB[o] = psum;
                    tB[o] = tag;
                    o++;
                }
            }
            SWAP_F(sA, sB);
            SWAP_F(pA, pB);
            SWAP_I(tA, tB);
            m = o;
        }

        {
            f64 *os = outp + out_base + c * 2 * cap;
            f64 *op = os + cap;
            i64 *ot = tags + tag_start + appended;
            memcpy(os, sA, (size_t)m * sizeof(f64));
            memcpy(op, pA, (size_t)m * sizeof(f64));
            memcpy(ot, tA, (size_t)m * sizeof(i64));
        }
        out_lens[c] = m;
        appended += m;
    }
    return appended;
}

/* repro_vectors — materialize arena ids into chunk-index chains.
 *
 * The native arena mirrors repro.core.dp._Arena: chunk `c` covers ids
 * [bases[c], bases[c] + len), its per-line parent ids live in the tag
 * slab at offs[c], and id 0 is the empty vector.  For each of the n
 * ids the walk appends the chunk indices it passes through to `out`
 * and records the chain length in lens[i]; the python side maps chunk
 * indices to tids.  Returns the total indices written, or -1 when
 * out_cap is too small (caller grows and retries).
 */
REPRO_API i64
repro_vectors(const i64 *ids, i64 n, const i64 *bases, const i64 *offs,
              i64 nchunks, const i64 *tags, i64 *out, i64 out_cap,
              i64 *lens)
{
    i64 total = 0;
    for (i64 i = 0; i < n; i++) {
        i64 id = ids[i];
        i64 len = 0;
        while (id != 0) {
            /* bisect_right(bases, id) - 1 */
            i64 lo = 0, hi = nchunks;
            while (lo < hi) {
                i64 mid = (lo + hi) >> 1;
                if (bases[mid] <= id)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            i64 chunk = lo - 1;
            if (total >= out_cap)
                return -1;
            out[total++] = chunk;
            len++;
            id = tags[offs[chunk] + (id - bases[chunk])];
        }
        lens[i] = len;
    }
    return total;
}
