"""Reusable c-Typical-Topk selection over one fixed distribution.

The paper notes (end of Section 4) that once the score distribution is
computed, trying different ``c`` values is much cheaper than re-running
the distribution algorithm.  :class:`TypicalSelector` makes that
explicit: it snapshots one distribution's prefix sums and answers
``select(c)`` for any number of ``c`` values, caching results, and
offers :meth:`elbow` — the smallest c whose expected distance drops
below a target fraction of the distribution span (a practical recipe
for choosing c that the paper leaves to the user).
"""

from __future__ import annotations

from repro.core.pmf import ScorePMF
from repro.core.typical import TypicalResult, select_typical
from repro.exceptions import AlgorithmError, EmptyDistributionError


class TypicalSelector:
    """Answer c-Typical-Topk queries against one score distribution.

    :param pmf: the top-k score distribution (computed once).

    >>> from repro.datasets.soldier import soldier_table
    >>> from repro.core.distribution import top_k_score_distribution
    >>> pmf = top_k_score_distribution(soldier_table(), "score", 2, p_tau=0)
    >>> selector = TypicalSelector(pmf)
    >>> [a.score for a in selector.select(3).answers]
    [118.0, 183.0, 235.0]
    >>> selector.select(3) is selector.select(3)   # cached
    True
    """

    def __init__(self, pmf: ScorePMF) -> None:
        if pmf.is_empty():
            raise EmptyDistributionError(
                "cannot build a selector over an empty distribution"
            )
        self._pmf = pmf
        self._cache: dict[int, TypicalResult] = {}

    @property
    def pmf(self) -> ScorePMF:
        """The underlying distribution."""
        return self._pmf

    @property
    def support_size(self) -> int:
        """Number of distinct scores (the largest useful ``c``)."""
        return len(self._pmf)

    def select(self, c: int) -> TypicalResult:
        """The c-Typical-Topk answers (cached per ``c``)."""
        if c < 1:
            raise AlgorithmError(f"c must be >= 1, got {c}")
        if c not in self._cache:
            self._cache[c] = select_typical(self._pmf, c)
        return self._cache[c]

    def distance_profile(self, max_c: int | None = None) -> list[float]:
        """Expected distance for c = 1 .. max_c (non-increasing).

        :param max_c: defaults to the support size.
        """
        limit = max_c if max_c is not None else self.support_size
        if limit < 1:
            raise AlgorithmError(f"max_c must be >= 1, got {limit}")
        return [self.select(c).expected_distance for c in range(1, limit + 1)]

    def elbow(
        self,
        *,
        fraction_of_span: float = 0.05,
        max_c: int | None = None,
    ) -> TypicalResult:
        """Smallest-c selection whose expected distance is small enough.

        "Small enough" means at most ``fraction_of_span`` times the
        distribution's support span — i.e. the typical answers pin a
        random top-k score down to within that tolerance.  Falls back
        to the largest tried ``c`` when no c reaches the target.

        :param fraction_of_span: tolerance as a fraction of the span.
        :param max_c: search bound (defaults to the support size).
        """
        if not 0.0 < fraction_of_span < 1.0:
            raise AlgorithmError(
                "fraction_of_span must be in (0, 1), got "
                f"{fraction_of_span!r}"
            )
        span = self._pmf.support_span()
        target = fraction_of_span * span
        limit = max_c if max_c is not None else self.support_size
        limit = max(1, min(limit, self.support_size))
        result = self.select(1)
        for c in range(1, limit + 1):
            result = self.select(c)
            if result.expected_distance <= target:
                break
        return result
