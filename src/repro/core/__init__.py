"""The paper's core contribution.

* :mod:`repro.core.pmf` — the score-distribution container
  (:class:`ScorePMF`) returned to applications, with histogram access
  at any granularity (usage (1) in Section 2.2).
* :mod:`repro.core.coalesce` — the line-coalescing strategy
  (Section 3.2.1) shared by all three algorithms.
* :mod:`repro.core.scan_depth` — the Theorem-2 stopping condition.
* :mod:`repro.core.state_expansion` / :mod:`repro.core.k_combo` — the
  two baseline algorithms of Section 3.1.
* :mod:`repro.core.dp` — the main dynamic-programming algorithm with
  the mutual-exclusion (Section 3.3) and tie (Section 3.4) extensions.
* :mod:`repro.core.typical` — c-Typical-Topk selection (Section 4).
* :mod:`repro.core.distribution` — the public facade
  (:func:`top_k_score_distribution`, :func:`c_typical_top_k`).
"""

from repro.core.pmf import ScoreLine, ScorePMF
from repro.core.coalesce import coalesce_lines
from repro.core.scan_depth import scan_depth, scan_depth_threshold
from repro.core.state_expansion import state_expansion_distribution
from repro.core.k_combo import k_combo_distribution
from repro.core.dp import dp_distribution
from repro.core.selector import TypicalSelector
from repro.core.typical import (
    TypicalAnswer,
    TypicalResult,
    select_typical,
    select_typical_clamped,
)
from repro.core.distribution import (
    c_typical_top_k,
    top_k_score_distribution,
)

__all__ = [
    "ScoreLine",
    "ScorePMF",
    "coalesce_lines",
    "scan_depth",
    "scan_depth_threshold",
    "state_expansion_distribution",
    "k_combo_distribution",
    "dp_distribution",
    "TypicalSelector",
    "TypicalAnswer",
    "TypicalResult",
    "select_typical",
    "select_typical_clamped",
    "c_typical_top_k",
    "top_k_score_distribution",
]
