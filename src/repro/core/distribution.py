"""Public facade: score distributions and typical answers in one call.

These are the two entities the paper proposes returning to
applications (Section 2.2):

* :func:`top_k_score_distribution` — the distribution of top-k total
  scores, at any precision (histogram access lives on the returned
  :class:`~repro.core.pmf.ScorePMF`);
* :func:`c_typical_top_k` — the c-Typical-Topk answers drawn from it.

Both accept an :class:`~repro.uncertain.table.UncertainTable` plus a
scoring function (or the name of a numeric attribute), apply the
Theorem-2 scan-depth truncation, and dispatch to the selected
algorithm.
"""

from __future__ import annotations

from typing import Union

from repro.core.dp import DEFAULT_MAX_LINES
from repro.core.pmf import ScorePMF
from repro.core.scan_depth import scan_depth
from repro.core.typical import TypicalResult, select_typical
from repro.exceptions import AlgorithmError, InvalidProbabilityError
from repro.uncertain.scoring import ScoredTable, Scorer, attribute_scorer
from repro.uncertain.table import UncertainTable

#: Default probability threshold; the paper's experiments use 0.001.
DEFAULT_P_TAU = 1e-3

#: The algorithms of Section 3, by name.  ``"dp"`` is the shared-prefix
#: O(kmn) engine; ``"dp_per_ending"`` is its one-dynamic-program-per-
#: ending ablation twin (kept for benchmarking, not for production).
ALGORITHMS = ("dp", "dp_per_ending", "state_expansion", "k_combo")

#: A scorer argument: a callable, or the name of a numeric attribute.
ScorerLike = Union[Scorer, str]


def resolve_scorer(scorer: ScorerLike) -> Scorer:
    """Turn a scorer-like argument into a scoring callable."""
    if callable(scorer):
        return scorer
    if isinstance(scorer, str):
        return attribute_scorer(scorer)
    raise AlgorithmError(
        f"scorer must be callable or an attribute name, got {scorer!r}"
    )


def storage_pushdown_view(table: UncertainTable, scorer: ScorerLike):
    """The table's lazy rank-ordered view, when pushdown is sound.

    Disk-backed tables (:class:`repro.storage.table.DiskBackedTable`)
    expose a ``lazy_scored(scorer)`` hook returning a view that serves
    rank-ordered prefixes without materializing the relation — but
    only when the query ranks by the attribute the table was packed
    on.  Ordinary tables (no hook) and mismatched scorers return
    ``None``: the caller scores and sorts residently.
    """
    hook = getattr(table, "lazy_scored", None)
    return hook(scorer) if hook is not None else None


def prepare_scored_prefix(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    *,
    p_tau: float = DEFAULT_P_TAU,
    depth: int | None = None,
) -> ScoredTable:
    """Score, rank-order and truncate a table for the algorithms.

    Disk-backed tables packed on ``scorer`` are served by pushdown:
    the Theorem-2 scan walks the stored rank order page by page and
    only the resulting prefix is materialized — I/O is O(depth), not
    O(table).  The returned prefix is byte-identical either way.

    :param depth: explicit scan depth override; when ``None`` the
        Theorem-2 depth for ``(k, p_tau)`` is used.
    """
    if not 0.0 <= p_tau < 1.0:
        raise InvalidProbabilityError(
            f"p_tau must be in [0, 1), got {p_tau!r}"
        )
    lazy = storage_pushdown_view(table, scorer)
    scored = (
        lazy
        if lazy is not None
        else ScoredTable.from_table(table, resolve_scorer(scorer))
    )
    if depth is None:
        depth = scan_depth(scored, k, p_tau) if p_tau > 0.0 else len(scored)
    if depth < 0:
        raise AlgorithmError(f"scan depth must be >= 0, got {depth}")
    return scored.prefix(min(depth, len(scored)))


def top_k_score_distribution(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    *,
    p_tau: float = DEFAULT_P_TAU,
    max_lines: int = DEFAULT_MAX_LINES,
    algorithm: str = "dp",
    depth: int | None = None,
) -> ScorePMF:
    """Distribution of the total scores of top-k tuple vectors.

    :param table: the uncertain table.
    :param scorer: scoring function or numeric attribute name; may be
        non-injective (ties are handled per Section 3.4).
    :param k: number of tuples per top-k vector (>= 1).
    :param p_tau: probability threshold of Theorem 2: top-k vectors
        with probability below it may be dropped.  Set to ``0`` to scan
        the full table (exact distribution).
    :param max_lines: line-coalescing budget (Section 3.2.1).
    :param algorithm: ``"dp"`` (the main algorithm), the baselines
        ``"state_expansion"`` / ``"k_combo"``, or ``"auto"`` to let
        the planner pick from the problem shape.
    :param depth: explicit scan-depth override (mostly for ablations).
    :returns: a :class:`~repro.core.pmf.ScorePMF`; its lines carry the
        most probable vector per score.

    >>> from repro.datasets.soldier import soldier_table
    >>> pmf = top_k_score_distribution(soldier_table(), "score", 2, p_tau=0)
    >>> round(pmf.expectation(), 1)
    164.1
    """
    # Thin wrapper over the staged planner of :mod:`repro.api`
    # (imported lazily: the api package builds on this module).
    from repro.api.plan import distribution_from_prefix
    from repro.api.spec import QuerySpec

    spec = QuerySpec(
        table=table,
        scorer=scorer,
        k=k,
        semantics="distribution",
        p_tau=p_tau,
        max_lines=max_lines,
        algorithm=algorithm,
        depth=depth,
    )
    prefix = prepare_scored_prefix(table, scorer, k, p_tau=p_tau, depth=depth)
    return distribution_from_prefix(prefix, spec)


def c_typical_top_k(
    table: UncertainTable,
    scorer: ScorerLike,
    k: int,
    c: int,
    *,
    p_tau: float = DEFAULT_P_TAU,
    max_lines: int = DEFAULT_MAX_LINES,
    algorithm: str = "dp",
    depth: int | None = None,
) -> TypicalResult:
    """The c-Typical-Topk answers (Definitions 1 and 2).

    Computes the score distribution, then selects the c scores
    minimizing the expected distance of a random top-k score to its
    nearest selection, returning each with its most probable vector.

    Changing only ``c`` after a first call is much cheaper through
    :func:`repro.core.typical.select_typical` on the already-computed
    distribution — the paper makes the same observation at the end of
    Section 4.

    >>> from repro.datasets.soldier import soldier_table
    >>> result = c_typical_top_k(soldier_table(), "score", 2, 3, p_tau=0)
    >>> [answer.score for answer in result.answers]
    [118.0, 183.0, 235.0]
    """
    pmf = top_k_score_distribution(
        table,
        scorer,
        k,
        p_tau=p_tau,
        max_lines=max_lines,
        algorithm=algorithm,
        depth=depth,
    )
    return select_typical(pmf, c)
