"""The top-k total-score distribution returned to applications.

:class:`ScorePMF` is a discrete probability mass function over top-k
total scores, each line optionally carrying a representative top-k
tuple vector (the most probable vector attaining that score, as
recorded by the algorithms of Section 3).  It supports the two usages
of Section 2.2: arbitrary-granularity histogram access and feeding the
c-Typical-Topk selection of Section 4.

The total mass can be below 1: the distribution ranges over possible
worlds that contain at least ``k`` tuples, truncated at the Theorem-2
scan depth (see DESIGN.md, "Semantics decisions").
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable, Iterator, Mapping, NamedTuple

from repro.exceptions import AlgorithmError, EmptyDistributionError

#: Representative vector type: tuple of tids in rank order, or None
#: when the producing algorithm did not record vectors.
Vector = tuple


class ScoreLine(NamedTuple):
    """One vertical line of the PMF.

    :ivar score: a top-k total score (or a coalesced average).
    :ivar prob: probability mass at this line.
    :ivar vector: most probable top-k tuple vector with this score, or
        ``None`` when vectors were not tracked.
    """

    score: float
    prob: float
    vector: Vector | None


class ScorePMF:
    """Immutable discrete distribution of top-k total scores.

    Lines are stored sorted ascending by score; equal scores are merged
    at construction (probabilities summed, higher-probability vector
    kept — the paper's merge rule).

    :param lines: iterable of ``(score, prob, vector)`` triples or
        :class:`ScoreLine` items.  Probabilities must be non-negative.
    """

    __slots__ = ("_scores", "_probs", "_vectors")

    def __init__(self, lines: Iterable[tuple]) -> None:
        merged: dict[float, tuple[float, Vector | None]] = {}
        for entry in lines:
            score, prob, vector = entry
            score = float(score)
            prob = float(prob)
            if prob < 0.0:
                raise AlgorithmError(
                    f"negative probability {prob!r} at score {score!r}"
                )
            if score in merged:
                old_prob, old_vec = merged[score]
                # Keep the representative vector of the heavier line.
                best = old_vec if old_prob >= prob else vector
                if best is None:
                    best = old_vec if old_vec is not None else vector
                merged[score] = (old_prob + prob, best)
            else:
                merged[score] = (prob, vector)
        ordered = sorted(merged.items())
        self._scores: tuple[float, ...] = tuple(s for s, _ in ordered)
        self._probs: tuple[float, ...] = tuple(pv[0] for _, pv in ordered)
        self._vectors: tuple[Vector | None, ...] = tuple(
            pv[1] for _, pv in ordered
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls,
        pmf: Mapping[float, float],
        vectors: Mapping[float, Vector] | None = None,
    ) -> "ScorePMF":
        """Build from ``score -> prob`` (and optional vectors) mappings."""
        vecs = vectors or {}
        return cls((s, p, vecs.get(s)) for s, p in pmf.items())

    @classmethod
    def merge(cls, pmfs: Iterable["ScorePMF"]) -> "ScorePMF":
        """Union of several PMFs (equal scores merged, masses added)."""

        def all_lines() -> Iterator[ScoreLine]:
            for pmf in pmfs:
                yield from pmf

        return cls(all_lines())

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def _materialize_vectors(self) -> None:
        """Hook for subclasses whose vectors are computed on demand
        (:class:`LazyVectorPMF`); a no-op here.  Called before any
        read of the vector column — scores and probabilities are
        always materialized eagerly."""

    def __len__(self) -> int:
        return len(self._scores)

    def __iter__(self) -> Iterator[ScoreLine]:
        self._materialize_vectors()
        return (
            ScoreLine(s, p, v)
            for s, p, v in zip(self._scores, self._probs, self._vectors)
        )

    def __getitem__(self, index: int) -> ScoreLine:
        self._materialize_vectors()
        return ScoreLine(
            self._scores[index], self._probs[index], self._vectors[index]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScorePMF):
            return NotImplemented
        return self._scores == other._scores and self._probs == other._probs

    def __hash__(self) -> int:
        return hash((self._scores, self._probs))

    @property
    def scores(self) -> tuple[float, ...]:
        """Distinct scores, ascending."""
        return self._scores

    @property
    def probs(self) -> tuple[float, ...]:
        """Probability mass per score, aligned with :attr:`scores`."""
        return self._probs

    @property
    def vectors(self) -> tuple[Vector | None, ...]:
        """Representative vectors, aligned with :attr:`scores`."""
        self._materialize_vectors()
        return self._vectors

    def to_dict(self) -> dict[float, float]:
        """Plain ``score -> prob`` dictionary."""
        return dict(zip(self._scores, self._probs))

    # ------------------------------------------------------------------
    # Mass / moments
    # ------------------------------------------------------------------
    def total_mass(self) -> float:
        """Total probability (1 minus truncated/short-world mass)."""
        return sum(self._probs)

    def is_empty(self) -> bool:
        """True when there are no lines."""
        return not self._scores

    def normalized(self) -> "ScorePMF":
        """Rescale so the mass is exactly 1 (conditional distribution)."""
        mass = self.total_mass()
        if mass <= 0.0:
            raise EmptyDistributionError("cannot normalize an empty PMF")
        self._materialize_vectors()
        return ScorePMF(
            (s, p / mass, v)
            for s, p, v in zip(self._scores, self._probs, self._vectors)
        )

    def expectation(self) -> float:
        """Mean total score, E[S] (w.r.t. the normalized distribution).

        For the paper's toy example this is the 164.1 of Section 1.
        """
        mass = self.total_mass()
        if mass <= 0.0:
            raise EmptyDistributionError("empty PMF has no expectation")
        return sum(s * p for s, p in zip(self._scores, self._probs)) / mass

    def variance(self) -> float:
        """Variance of the total score (normalized)."""
        mean = self.expectation()
        mass = self.total_mass()
        second = sum(s * s * p for s, p in zip(self._scores, self._probs))
        return max(second / mass - mean * mean, 0.0)

    def std(self) -> float:
        """Standard deviation of the total score."""
        return math.sqrt(self.variance())

    # ------------------------------------------------------------------
    # Tail / quantile queries
    # ------------------------------------------------------------------
    def prob_greater(self, score: float, *, strict: bool = True) -> float:
        """P(S > score) — or P(S >= score) when ``strict`` is False.

        (Unnormalized: relative to the PMF's own mass.)
        """
        side = "right" if strict else "left"
        index = bisect.bisect_right(self._scores, score) if side == "right" \
            else bisect.bisect_left(self._scores, score)
        return sum(self._probs[index:])

    def prob_less(self, score: float, *, strict: bool = True) -> float:
        """P(S < score) — or P(S <= score) when ``strict`` is False."""
        index = bisect.bisect_left(self._scores, score) if strict \
            else bisect.bisect_right(self._scores, score)
        return sum(self._probs[:index])

    def cdf(self, score: float) -> float:
        """Normalized cumulative probability P(S <= score)."""
        mass = self.total_mass()
        if mass <= 0.0:
            raise EmptyDistributionError("empty PMF has no CDF")
        return self.prob_less(score, strict=False) / mass

    def quantile(self, q: float) -> float:
        """Smallest score with normalized CDF >= q, for q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise AlgorithmError(f"quantile level {q!r} outside [0, 1]")
        if self.is_empty():
            raise EmptyDistributionError("empty PMF has no quantiles")
        mass = self.total_mass()
        target = q * mass
        running = 0.0
        for s, p in zip(self._scores, self._probs):
            running += p
            if running >= target - 1e-15:
                return s
        return self._scores[-1]

    def mode(self) -> ScoreLine:
        """The highest-probability line."""
        if self.is_empty():
            raise EmptyDistributionError("empty PMF has no mode")
        index = max(range(len(self._probs)), key=self._probs.__getitem__)
        return self[index]

    def support_span(self) -> float:
        """max score - min score (0 for a single line)."""
        if self.is_empty():
            return 0.0
        return self._scores[-1] - self._scores[0]

    def span_containing(self, mass_fraction: float) -> float:
        """Width of the shortest score interval holding the fraction.

        Used by the Figure 14/16 experiments ("the span of the
        significant portion of the distribution").
        """
        if not 0.0 < mass_fraction <= 1.0:
            raise AlgorithmError(
                f"mass fraction {mass_fraction!r} outside (0, 1]"
            )
        if self.is_empty():
            raise EmptyDistributionError("empty PMF has no span")
        target = mass_fraction * self.total_mass()
        best = self._scores[-1] - self._scores[0]
        left = 0
        running = 0.0
        for right in range(len(self._scores)):
            running += self._probs[right]
            while running - self._probs[left] >= target - 1e-15:
                running -= self._probs[left]
                left += 1
            if running >= target - 1e-15:
                best = min(best, self._scores[right] - self._scores[left])
        return best

    # ------------------------------------------------------------------
    # Conditioning
    # ------------------------------------------------------------------
    def restricted_to(
        self,
        low: float = float("-inf"),
        high: float = float("inf"),
    ) -> "ScorePMF":
        """The sub-distribution with scores in ``[low, high]``.

        Masses are *not* renormalized (chain with :meth:`normalized`
        for the conditional distribution).  Supports the usage the
        paper sketches at the end of Section 4: "medical personnel
        would probably examine the high score range of the
        distribution".

        >>> pmf = ScorePMF([(1, 0.25, None), (2, 0.25, None),
        ...                 (3, 0.5, None)])
        >>> pmf.restricted_to(low=2).scores
        (2.0, 3.0)
        """
        if low > high:
            raise AlgorithmError(
                f"empty restriction: low {low!r} > high {high!r}"
            )
        self._materialize_vectors()
        return ScorePMF(
            (s, p, v)
            for s, p, v in zip(self._scores, self._probs, self._vectors)
            if low <= s <= high
        )

    def tail_expectation(self, threshold: float) -> float:
        """E[S | S > threshold] — the expected score of the tail.

        Raises :class:`EmptyDistributionError` when no mass lies above
        the threshold.
        """
        tail = self.restricted_to(low=threshold)
        tail = ScorePMF(
            (s, p, v) for s, p, v in zip(
                tail.scores, tail.probs, tail.vectors
            ) if s > threshold
        )
        return tail.expectation()

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def coalesced(self, max_lines: int) -> "ScorePMF":
        """A copy reduced to at most ``max_lines`` lines (Section 3.2.1)."""
        from repro.core.coalesce import coalesce_lines

        lines = [list(line) for line in self]
        return ScorePMF(coalesce_lines(lines, max_lines))

    def histogram(
        self, bucket_width: float, *, origin: float | None = None
    ) -> list[tuple[float, float, float]]:
        """Equi-width histogram ``(low, high, prob)`` at any granularity.

        This is usage (1) of Section 2.2: "an application can access
        the distribution at any granularity of precision".

        :param bucket_width: width of each bucket (> 0).
        :param origin: left edge of the bucket grid; defaults to the
            smallest score.
        """
        if bucket_width <= 0.0:
            raise AlgorithmError(
                f"bucket width must be positive, got {bucket_width!r}"
            )
        if self.is_empty():
            return []
        start = self._scores[0] if origin is None else origin
        buckets: dict[int, float] = {}
        for s, p in zip(self._scores, self._probs):
            index = int(math.floor((s - start) / bucket_width))
            buckets[index] = buckets.get(index, 0.0) + p
        return [
            (
                start + index * bucket_width,
                start + (index + 1) * bucket_width,
                prob,
            )
            for index, prob in sorted(buckets.items())
        ]

    def top_lines(self, count: int) -> list[ScoreLine]:
        """The ``count`` heaviest lines, by probability descending."""
        order = sorted(
            range(len(self._probs)),
            key=lambda i: (-self._probs[i], self._scores[i]),
        )
        return [self[i] for i in order[:count]]

    def __repr__(self) -> str:
        return (
            f"ScorePMF(lines={len(self._scores)}, "
            f"mass={self.total_mass():.4f}, "
            f"span=[{self._scores[0] if self._scores else float('nan'):.4g}, "
            f"{self._scores[-1] if self._scores else float('nan'):.4g}])"
        )

    def summary(self) -> str:
        """Human-readable one-paragraph summary (for examples/benches)."""
        if self.is_empty():
            return "empty score distribution"
        mode = self.mode()
        return (
            f"{len(self)} lines, mass {self.total_mass():.4f}, "
            f"E[S]={self.expectation():.2f}, std={self.std():.2f}, "
            f"range [{self._scores[0]:.2f}, {self._scores[-1]:.2f}], "
            f"mode {mode.score:.2f} (p={mode.prob:.4f})"
        )


class LazyVectorPMF(ScorePMF):
    """A :class:`ScorePMF` whose representative vectors are computed on
    first access.

    The delta-maintained sliding window (:mod:`repro.stream.delta`)
    tracks scores and probabilities only — reconstructing each line's
    most probable top-k vector costs a vector-carrying dynamic program
    over the consumed prefix, which most consumers (expectations,
    histograms, threshold queries) never need.  This subclass defers
    that cost: scores and probabilities are materialized eagerly, and
    the first read of the vector column invokes ``fill`` — a callable
    receiving the ascending score tuple and returning the aligned
    vector tuple — exactly once, memoizing the result.

    Equality, hashing and mass/moment queries never trigger the fill
    (they consult scores and probabilities only), so cache lookups on
    lazy distributions stay cheap.
    """

    __slots__ = ("_fill",)

    def __init__(self, lines: Iterable[tuple], fill) -> None:
        super().__init__(lines)
        self._fill = fill

    def _materialize_vectors(self) -> None:
        fill = self._fill
        if fill is None:
            return
        self._fill = None
        vectors = tuple(fill(self._scores))
        if len(vectors) != len(self._scores):
            raise AlgorithmError(
                f"lazy vector fill returned {len(vectors)} vectors for "
                f"{len(self._scores)} lines"
            )
        self._vectors = vectors

    def vectors_materialized(self) -> bool:
        """Whether the vector column has been computed yet."""
        return self._fill is None


def vector_as_tids(vector: Vector | None) -> tuple[Any, ...]:
    """Normalize a representative vector to a plain tuple of tids."""
    if vector is None:
        return ()
    return tuple(vector)
