"""c-Typical-Topk selection (Section 4, Figure 7).

Given the top-k score distribution ``{(s_i, p_i, v_i)}`` (scores
ascending), choose c of the scores so that for a random score S drawn
from the distribution, the expected distance from S to the *closest*
chosen score is minimal (Definition 1).  The chosen scores' recorded
vectors are the c-Typical-Topk tuple vectors (Definition 2).

This is the 1-dimensional c-median problem; following Hassin & Tamir
the paper solves it with a two-function dynamic program in O(cn):

    F_a(j) = min_{j <= k <= n}  [ sum_{b=j..k} p_b (s_k - s_b) + G_a(k) ]
    G_a(j) = min_{j < k <= n+1} [ sum_{b=j..k-1} p_b (s_b - s_j)
                                  + F_{a-1}(k) ]

with G_1(j) = sum_{b=j..n} p_b (s_b - s_j) and F_a(n+1) = 0.  F is the
optimum for the suffix {s_j..s_n}; G additionally fixes s_j as a chosen
(typical) score.  Prefix sums P(j) = sum p_b and PS(j) = sum p_b s_b
reduce each inner sum to O(1).
"""

from __future__ import annotations

import itertools
from typing import NamedTuple, Sequence

from repro.core.pmf import ScorePMF
from repro.exceptions import AlgorithmError, EmptyDistributionError

#: Sentinel "infinity" for the DP tables.
_INF = float("inf")


class TypicalAnswer(NamedTuple):
    """One typical top-k answer.

    :ivar score: the typical total score s_i.
    :ivar prob: probability mass of that score in the distribution.
    :ivar vector: the most probable top-k tuple vector attaining it
        (``None`` when the distribution did not track vectors).
    """

    score: float
    prob: float
    vector: tuple | None


class TypicalResult(NamedTuple):
    """Outcome of c-Typical-Topk selection.

    :ivar answers: the c typical answers, scores ascending.
    :ivar expected_distance: E[min_i |S - s_i|] with S drawn from the
        (unnormalized) input distribution.
    :ivar normalized_expected_distance: the same expectation against
        the mass-normalized distribution (equals ``expected_distance``
        divided by the total mass).
    """

    answers: tuple[TypicalAnswer, ...]
    expected_distance: float
    normalized_expected_distance: float


def select_typical(pmf: ScorePMF, c: int) -> TypicalResult:
    """Choose the c-Typical-Topk answers from a score distribution.

    Runs the O(cn) two-function dynamic program of Figure 7.  When
    ``c`` is at least the number of distinct scores, every score is
    typical and the expected distance is 0.

    :param pmf: the top-k score distribution (from
        :func:`repro.core.distribution.top_k_score_distribution` or any
        of the Section 3 algorithms).
    :param c: number of typical answers to return (>= 1).
    """
    if c < 1:
        raise AlgorithmError(f"c must be >= 1, got {c}")
    n = len(pmf)
    if n == 0:
        raise EmptyDistributionError(
            "cannot select typical answers from an empty distribution"
        )
    scores = pmf.scores
    probs = pmf.probs
    mass = sum(probs)
    if mass <= 0.0:
        raise EmptyDistributionError("distribution has zero mass")
    if c >= n:
        answers = tuple(
            TypicalAnswer(line.score, line.prob, line.vector) for line in pmf
        )
        return TypicalResult(answers, 0.0, 0.0)

    chosen = _typical_indices(scores, probs, c)
    objective = expected_typical_distance(
        scores, probs, [scores[i] for i in chosen]
    )
    answers = tuple(
        TypicalAnswer(scores[i], probs[i], pmf.vectors[i]) for i in chosen
    )
    return TypicalResult(answers, objective, objective / mass)


def select_typical_clamped(pmf: ScorePMF, c: int) -> TypicalResult:
    """:func:`select_typical` tolerant of short and empty distributions.

    Fewer than k tuples can co-exist in a short table, leaving an empty
    distribution — here that yields an empty result instead of raising,
    and ``c`` is clamped to the number of available lines.  This is the
    single guard shared by every consumer (the query engine, sessions,
    the CLI) so short tables behave consistently everywhere.
    """
    if c < 1:
        raise AlgorithmError(f"c must be >= 1, got {c}")
    if len(pmf) == 0:
        return TypicalResult((), 0.0, 0.0)
    return select_typical(pmf, min(c, len(pmf)))


def _typical_indices(
    scores: Sequence[float], probs: Sequence[float], c: int
) -> list[int]:
    """The Figure-7 dynamic program; returns chosen 0-based indices."""
    n = len(scores)
    # 1-based prefix sums: P[j] = p_1 + ... + p_j, PS likewise with s.
    P = [0.0] * (n + 1)
    PS = [0.0] * (n + 1)
    for j in range(1, n + 1):
        P[j] = P[j - 1] + probs[j - 1]
        PS[j] = PS[j - 1] + probs[j - 1] * scores[j - 1]

    def seg_below(j: int, k: int) -> float:
        """sum_{b=j..k} p_b (s_k - s_b): cost of j..k served by s_k."""
        return (P[k] - P[j - 1]) * scores[k - 1] - (PS[k] - PS[j - 1])

    def seg_above(j: int, k: int) -> float:
        """sum_{b=j..k-1} p_b (s_b - s_j): cost of j..k-1 served by s_j."""
        return (PS[k - 1] - PS[j - 1]) - (P[k - 1] - P[j - 1]) * scores[j - 1]

    # G[j] for the current level a; F[j] for the current level a
    # (levels are filled a = 1..c, each overwriting the previous).
    G = [0.0] * (n + 2)
    F = [0.0] * (n + 2)
    g_arg = [[0] * (n + 2) for _ in range(c + 1)]
    f_arg = [[0] * (n + 2) for _ in range(c + 1)]

    # Level a = 1 boundary: G_1(j) = cost of the whole suffix served by
    # s_j from above.
    for j in range(1, n + 1):
        G[j] = seg_above(j, n + 1)
        g_arg[1][j] = n + 1
    F[n + 1] = 0.0

    def fill_F(a: int) -> None:
        """F_a(j) = min_{j<=k<=n} seg_below(j, k) + G_a(k)."""
        for j in range(1, n + 1):
            best = _INF
            best_k = j
            for k in range(j, n + 1):
                value = seg_below(j, k) + G[k]
                if value < best:
                    best = value
                    best_k = k
            F[j] = best
            f_arg[a][j] = best_k

    fill_F(1)

    prev_F = list(F)
    for a in range(2, c + 1):
        for j in range(1, n + 1):
            best = _INF
            best_k = j + 1
            for k in range(j + 1, n + 2):
                value = seg_above(j, k) + prev_F[k]
                if value < best:
                    best = value
                    best_k = k
            G[j] = best
            g_arg[a][j] = best_k
        fill_F(a)
        prev_F = list(F)

    # Trace back (lines 36-41 of Figure 7): at each level the F-argmin
    # is the next typical score; its G-argmin is where the following
    # suffix subproblem starts.
    chosen: list[int] = []
    j = 1
    for a in range(c, 0, -1):
        i = f_arg[a][j]
        chosen.append(i - 1)
        j = g_arg[a][i]
        if j > n:
            break
    return chosen


def expected_typical_distance(
    scores: Sequence[float],
    probs: Sequence[float],
    typical_scores: Sequence[float],
) -> float:
    """E[min_i |S - s_i|] over the (unnormalized) distribution.

    The quantity minimized by Definition 1; for the paper's toy example
    with c = 3 it evaluates to 6.6.
    """
    if not typical_scores:
        raise AlgorithmError("need at least one typical score")
    anchors = sorted(typical_scores)
    total = 0.0
    for s, p in zip(scores, probs):
        total += p * min(abs(s - a) for a in anchors)
    return total


def select_typical_brute_force(pmf: ScorePMF, c: int) -> TypicalResult:
    """Reference implementation: try every c-subset of the support.

    Exponential; used by tests to validate :func:`select_typical` on
    small distributions.
    """
    if c < 1:
        raise AlgorithmError(f"c must be >= 1, got {c}")
    n = len(pmf)
    if n == 0:
        raise EmptyDistributionError("empty distribution")
    if c >= n:
        return select_typical(pmf, c)
    scores = pmf.scores
    probs = pmf.probs
    mass = sum(probs)
    best: tuple[float, tuple[int, ...]] | None = None
    for subset in itertools.combinations(range(n), c):
        objective = expected_typical_distance(
            scores, probs, [scores[i] for i in subset]
        )
        if best is None or objective < best[0] - 1e-15:
            best = (objective, subset)
    assert best is not None
    objective, subset = best
    answers = tuple(
        TypicalAnswer(scores[i], probs[i], pmf.vectors[i]) for i in subset
    )
    return TypicalResult(answers, objective, objective / mass)
