"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so
applications can catch a single base class.  More specific subclasses
exist for the major subsystems (data model, query layer, algorithms) so
tests and callers can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DataModelError(ReproError):
    """Invalid uncertain-table construction (bad probabilities, rules...)."""


class InvalidProbabilityError(DataModelError):
    """A membership probability is outside the half-open interval (0, 1]."""


class MutualExclusionError(DataModelError):
    """A mutual-exclusion rule is malformed (overlap, mass > 1, ...)."""


class ScoringError(ReproError):
    """A scoring function failed or returned a non-numeric value."""


class KernelBackendError(ReproError):
    """A kernel backend was requested that is unavailable or unknown.

    Raised when ``REPRO_BACKEND=native`` (or an explicit
    ``backend="native"``) is forced on a machine where the compiled
    kernel could not be built or loaded, or when the backend name is
    not one of ``python``/``native``/``auto``.
    """


class AlgorithmError(ReproError):
    """An algorithm was invoked with invalid parameters."""


class EmptyDistributionError(AlgorithmError):
    """An operation requires a non-empty score distribution."""


class QueryError(ReproError):
    """Base class for the SQL-like query layer."""


class QuerySyntaxError(QueryError):
    """The query text could not be tokenized or parsed."""


class QueryPlanError(QueryError):
    """The parsed query cannot be executed (unknown table/column...)."""


class DatasetError(ReproError):
    """A dataset generator was configured inconsistently."""


class ServiceError(ReproError):
    """Base class for the query-service layer (:mod:`repro.service`)."""


class BadRequestError(ServiceError):
    """A service request is malformed (unknown field, bad value...)."""


class BackpressureError(ServiceError):
    """The service queue is full; the caller should retry later.

    :ivar retry_after_s: optional hint (possibly fractional seconds)
        derived from the live queue depth and recent drain rate; the
        HTTP layer surfaces it as the ``Retry-After`` header.
    """

    retry_after_s: float | None = None


class RequestTimeoutError(ServiceError):
    """A queued service request was not answered within its deadline."""


class DurabilityError(ReproError):
    """The durable state layer (snapshots, WAL, manifest) failed."""


class WALCorruptError(DurabilityError):
    """A write-ahead log holds a corrupt (CRC-mismatching) record.

    Raised during recovery when a fully framed record fails its
    checksum — unlike a *torn tail* (an incomplete frame at the end of
    the file, the signature of a crash mid-write), which is silently
    truncated.  Corruption is never repaired automatically; the error
    names the file and offset so an operator can decide.
    """


class FaultInjectedError(ServiceError):
    """An error injected by the fault-injection harness (REPRO_FAULTS)."""
