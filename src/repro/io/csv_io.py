"""CSV persistence for uncertain tables.

Layout: one row per uncertain tuple.  Three reserved columns carry the
uncertainty metadata:

* ``_tid`` — tuple identifier;
* ``_prob`` — membership probability;
* ``_group`` — ME-group label (empty for singleton groups).

Every other column is a tuple attribute.  Values are round-tripped as
int/float where they parse as such, else kept as strings.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.exceptions import DataModelError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable

#: Reserved metadata column names.
TID_COLUMN = "_tid"
PROB_COLUMN = "_prob"
GROUP_COLUMN = "_group"


def _parse_value(text: str) -> Any:
    """Best-effort typed parse: int, then float, then string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def write_table_csv(table: UncertainTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` in the reserved-column CSV layout."""
    attribute_names = table.attribute_names()
    header = [TID_COLUMN, PROB_COLUMN, GROUP_COLUMN, *attribute_names]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for t in table:
            gid = table.group_of(t.tid)
            group_label = (
                f"g{gid}" if len(table.group_members(gid)) > 1 else ""
            )
            writer.writerow(
                [
                    t.tid,
                    repr(t.probability),
                    group_label,
                    *[t.get(name, "") for name in attribute_names],
                ]
            )


def read_table_csv(path: str | Path, *, name: str = "uncertain") -> UncertainTable:
    """Read a table previously written by :func:`write_table_csv`.

    Also accepts hand-written CSVs that follow the layout; ``_tid`` is
    optional (row numbers are used when absent).
    """
    tuples: list[UncertainTuple] = []
    groups: dict[str, list[Any]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or PROB_COLUMN not in reader.fieldnames:
            raise DataModelError(
                f"{path}: missing required column {PROB_COLUMN!r}"
            )
        for index, row in enumerate(reader):
            prob_text = row.pop(PROB_COLUMN, "")
            try:
                prob = float(prob_text)
            except (TypeError, ValueError):
                raise DataModelError(
                    f"{path} row {index}: bad probability {prob_text!r}"
                ) from None
            raw_tid = row.pop(TID_COLUMN, None)
            tid: Any = _parse_value(raw_tid) if raw_tid else index
            group_label = row.pop(GROUP_COLUMN, "") or ""
            attributes = {
                key: _parse_value(value)
                for key, value in row.items()
                if value != "" and key is not None
            }
            tuples.append(UncertainTuple(tid, attributes, prob))
            if group_label:
                groups.setdefault(group_label, []).append(tid)
    rules = [tuple(members) for members in groups.values() if len(members) > 1]
    return UncertainTable(tuples, rules, name=name)
