"""JSON persistence for uncertain tables and score distributions.

Document shapes::

    table:  {"name": ..., "tuples": [{"tid", "probability", "attributes"}],
             "rules": [[tid, ...], ...]}
    pmf:    {"lines": [{"score", "prob", "vector"}], "k": optional}

Vectors serialize as lists of tids; ``None`` vectors are omitted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.pmf import ScorePMF
from repro.exceptions import DataModelError
from repro.uncertain.model import UncertainTuple
from repro.uncertain.table import UncertainTable


def table_to_document(table: UncertainTable) -> dict[str, Any]:
    """The JSON-ready dictionary form of a table."""
    return {
        "name": table.name,
        "tuples": [
            {
                "tid": t.tid,
                "probability": t.probability,
                "attributes": dict(t.attributes),
            }
            for t in table
        ],
        "rules": [list(rule) for rule in table.explicit_rules],
    }


def table_from_document(document: dict[str, Any]) -> UncertainTable:
    """Rebuild a table from :func:`table_to_document` output."""
    try:
        tuples = [
            UncertainTuple(
                entry["tid"], entry.get("attributes", {}), entry["probability"]
            )
            for entry in document["tuples"]
        ]
    except (KeyError, TypeError) as exc:
        raise DataModelError(f"malformed table document: {exc}") from exc
    rules = [tuple(rule) for rule in document.get("rules", [])]
    return UncertainTable(
        tuples, rules, name=document.get("name", "uncertain")
    )


def write_table_json(table: UncertainTable, path: str | Path) -> None:
    """Serialize ``table`` to a JSON file."""
    with open(path, "w") as handle:
        json.dump(table_to_document(table), handle, indent=2, default=str)


def read_table_json(path: str | Path) -> UncertainTable:
    """Load a table from a JSON file."""
    with open(path) as handle:
        return table_from_document(json.load(handle))


def pmf_to_json(pmf: ScorePMF) -> str:
    """Serialize a score distribution to a JSON string."""
    lines = []
    for line in pmf:
        entry: dict[str, Any] = {"score": line.score, "prob": line.prob}
        if line.vector is not None:
            entry["vector"] = list(line.vector)
        lines.append(entry)
    return json.dumps({"lines": lines}, default=str)


def answer_to_jsonable(answer: Any) -> Any:
    """Any registered semantics' answer as JSON-ready data.

    :class:`ScorePMF` values use the pmf document shape (so they
    round-trip through :func:`pmf_from_json`); NamedTuple results
    become objects, sequences become arrays, and anything exotic
    falls back to ``str``.  Shared by ``repro answer --json`` and the
    ``/v1/answer`` service endpoint, so both emit identical documents.
    """
    if isinstance(answer, ScorePMF):
        return json.loads(pmf_to_json(answer))
    if hasattr(answer, "_asdict"):  # NamedTuple results
        return {
            key: answer_to_jsonable(value)
            for key, value in answer._asdict().items()
        }
    if isinstance(answer, (list, tuple)):
        return [answer_to_jsonable(entry) for entry in answer]
    if isinstance(answer, (str, int, float, bool)) or answer is None:
        return answer
    return str(answer)


def pmf_from_json(text: str) -> ScorePMF:
    """Rebuild a score distribution from :func:`pmf_to_json` output."""
    try:
        document = json.loads(text)
        lines = [
            (
                entry["score"],
                entry["prob"],
                tuple(entry["vector"]) if "vector" in entry else None,
            )
            for entry in document["lines"]
        ]
    except (KeyError, TypeError, json.JSONDecodeError) as exc:
        raise DataModelError(f"malformed PMF document: {exc}") from exc
    return ScorePMF(lines)
