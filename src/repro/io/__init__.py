"""Persistence for uncertain tables and score distributions.

* :mod:`repro.io.csv_io` — uncertain tables as CSV with reserved
  ``_tid`` / ``_prob`` / ``_group`` columns.
* :mod:`repro.io.json_io` — tables and :class:`ScorePMF` results as
  JSON documents.
"""

from pathlib import Path

from repro.io.csv_io import read_table_csv, write_table_csv
from repro.io.json_io import (
    answer_to_jsonable,
    pmf_from_json,
    pmf_to_json,
    read_table_json,
    write_table_json,
)

__all__ = [
    "read_table_csv",
    "write_table_csv",
    "answer_to_jsonable",
    "load_table_file",
    "pmf_from_json",
    "pmf_to_json",
    "read_table_json",
    "write_table_json",
]


def load_table_file(path):
    """Load an uncertain table from a file or packed directory.

    ``.csv`` / ``.json`` files load residently (the format is chosen
    by suffix; CSV tables take the file stem as their name).  A
    directory produced by ``repro pack`` opens as a *lazy*
    :class:`~repro.storage.table.DiskBackedTable` — queries on the
    packing scorer stream prefix pages instead of loading the table.
    Shared by the CLI and the service dataset catalog.
    """
    path = Path(path)
    if path.is_dir():
        from repro.storage import is_packed_dir, open_table

        if is_packed_dir(path):
            return open_table(path)
        raise FileNotFoundError(
            f"{path} is a directory but not a packed table "
            f"(no meta.json); run `repro pack` to create one"
        )
    if path.suffix.lower() == ".json":
        return read_table_json(path)
    return read_table_csv(path, name=path.stem)
