"""Persistence for uncertain tables and score distributions.

* :mod:`repro.io.csv_io` — uncertain tables as CSV with reserved
  ``_tid`` / ``_prob`` / ``_group`` columns.
* :mod:`repro.io.json_io` — tables and :class:`ScorePMF` results as
  JSON documents.
"""

from repro.io.csv_io import read_table_csv, write_table_csv
from repro.io.json_io import (
    pmf_from_json,
    pmf_to_json,
    read_table_json,
    write_table_json,
)

__all__ = [
    "read_table_csv",
    "write_table_csv",
    "pmf_from_json",
    "pmf_to_json",
    "read_table_json",
    "write_table_json",
]
