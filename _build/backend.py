"""Minimal in-tree PEP 517/660 build backend (stdlib only).

The offline toolchain this project targets has no ``wheel`` package,
so the standard ``setuptools.build_meta`` backend cannot build the
(editable) wheels that ``pip install -e .`` requires, and build
isolation cannot download one.  Wheels are plain zip archives, so this
backend builds them directly with :mod:`zipfile` — no third-party
build dependency at all (``build-system.requires = []``), which makes
``pip install [-e] .`` work fully offline, with or without build
isolation.

Metadata policy: the human-readable copy lives in ``pyproject.toml``;
this backend re-reads the version from ``src/repro/__init__.py`` (the
single source of truth) and keeps the remaining fields in
``_METADATA`` below.
"""

from __future__ import annotations

import base64
import hashlib
import os
import re
import tarfile
import zipfile

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")

_NAME = "repro-topk-uncertain"
_DIST = _NAME.replace("-", "_")
_TAG = "py3-none-any"

_METADATA = """\
Metadata-Version: 2.1
Name: {name}
Version: {version}
Summary: Reproduction of "Top-k Queries on Uncertain Data: On Score \
Distribution and Typical Answers" (Ge, Zdonik, Madden; SIGMOD 2009)
Requires-Python: >=3.10
License: MIT
Requires-Dist: numpy
Requires-Dist: pytest ; extra == 'test'
Requires-Dist: hypothesis ; extra == 'test'
Provides-Extra: test
"""

_WHEEL_FILE = """\
Wheel-Version: 1.0
Generator: repro-in-tree-backend
Root-Is-Purelib: true
Tag: {tag}
"""

_ENTRY_POINTS = """\
[console_scripts]
repro = repro.cli:main
"""


def _version() -> str:
    init = os.path.join(_SRC, "repro", "__init__.py")
    with open(init, encoding="utf-8") as handle:
        match = re.search(
            r'^__version__\s*=\s*["\']([^"\']+)["\']', handle.read(), re.M
        )
    if not match:
        raise RuntimeError(f"cannot find __version__ in {init}")
    return match.group(1)


def _record_entry(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(
        hashlib.sha256(data).digest()
    ).rstrip(b"=").decode("ascii")
    return f"{name},sha256={digest},{len(data)}"


def _write_wheel(wheel_directory: str, version: str, payload: dict[str, bytes]) -> str:
    """Assemble a wheel zip from ``payload`` (+ generated dist-info)."""
    dist_info = f"{_DIST}-{version}.dist-info"
    files = dict(payload)
    files[f"{dist_info}/METADATA"] = _METADATA.format(
        name=_NAME, version=version
    ).encode("utf-8")
    files[f"{dist_info}/WHEEL"] = _WHEEL_FILE.format(tag=_TAG).encode("utf-8")
    files[f"{dist_info}/entry_points.txt"] = _ENTRY_POINTS.encode("utf-8")
    record_name = f"{dist_info}/RECORD"
    record = [_record_entry(name, data) for name, data in files.items()]
    record.append(f"{record_name},,")
    files[record_name] = ("\n".join(record) + "\n").encode("utf-8")

    wheel_name = f"{_DIST}-{version}-{_TAG}.whl"
    path = os.path.join(wheel_directory, wheel_name)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        for name in sorted(files):
            archive.writestr(name, files[name])
    return wheel_name


def _package_payload() -> dict[str, bytes]:
    """Every file of the ``repro`` package, as wheel payload."""
    payload: dict[str, bytes] = {}
    package_root = os.path.join(_SRC, "repro")
    for directory, _, filenames in os.walk(package_root):
        for filename in sorted(filenames):
            if filename.endswith((".pyc", ".pyo")):
                continue
            full = os.path.join(directory, filename)
            rel = os.path.relpath(full, _SRC).replace(os.sep, "/")
            with open(full, "rb") as handle:
                payload[rel] = handle.read()
    return payload


# ----------------------------------------------------------------------
# PEP 517 hooks
# ----------------------------------------------------------------------
def get_requires_for_build_wheel(config_settings=None):
    return []


def _native_kernel_payload() -> dict[str, bytes]:
    """The compiled DP kernel, when this machine can build it.

    Best effort only: wheels stay pure-python installable, and a build
    machine without a C compiler simply ships no prebuilt kernel (the
    runtime falls back to compiling into its user cache, or to the
    numpy backend).  The library lands next to the package's kernel
    sources under the name ``build.py`` probes first.
    """
    import subprocess
    import tempfile

    source = os.path.join(
        _SRC, "repro", "core", "kernels", "_kernel.c"
    )
    if not os.path.exists(source):
        return {}
    from shutil import which

    cc = os.environ.get("CC") or next(
        (name for name in ("cc", "gcc", "clang") if which(name)), None
    )
    if cc is None:
        return {}
    with tempfile.TemporaryDirectory() as scratch:
        target = os.path.join(scratch, "_repro_kernel.so")
        proc = subprocess.run(
            [cc, "-O3", "-fPIC", "-shared", "-o", target, source],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0 or not os.path.exists(target):
            return {}
        with open(target, "rb") as handle:
            return {"repro/core/kernels/_repro_kernel.so": handle.read()}


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    payload = _package_payload()
    payload.update(_native_kernel_payload())
    return _write_wheel(wheel_directory, _version(), payload)


def build_sdist(sdist_directory, config_settings=None):
    version = _version()
    base = f"{_DIST}-{version}"
    path = os.path.join(sdist_directory, f"{base}.tar.gz")
    include = ["pyproject.toml", "setup.py", "README.md", "_build", "src"]
    with tarfile.open(path, "w:gz") as archive:
        for entry in include:
            full = os.path.join(_ROOT, entry)
            if os.path.exists(full):
                archive.add(
                    full,
                    arcname=f"{base}/{entry}",
                    filter=lambda info: None
                    if "__pycache__" in info.name
                    else info,
                )
    return f"{base}.tar.gz"


# ----------------------------------------------------------------------
# PEP 660 hooks (editable installs)
# ----------------------------------------------------------------------
def get_requires_for_build_editable(config_settings=None):
    return []


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    pth = (_SRC + "\n").encode("utf-8")
    return _write_wheel(
        wheel_directory, _version(), {f"_{_DIST}_editable.pth": pth}
    )
