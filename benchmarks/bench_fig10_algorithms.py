"""Figure 10: execution time vs k for the three algorithms.

The paper's claim is the *shape*: StateExpansion and k-Combo grow
exponentially in k while the main dynamic program grows polynomially,
so the baselines are only swept over small k (the Python constant
factor moves their feasibility wall lower than the paper's C++/2009
setup, without changing the growth law).

Run with ``-s`` to see the collected series.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.core.dp import dp_distribution
from repro.core.k_combo import k_combo_distribution
from repro.core.state_expansion import state_expansion_distribution

from conftest import P_TAU

MAIN_KS = (5, 10, 15, 20)
SE_KS = (2, 3, 5)
KC_KS = (2, 3)

#: StateExpansion prunes whole vectors below its threshold; on this
#: workload individual top-5 vectors carry ~1e-4 probability, so the
#: paper's 1e-3 would prune the output to nothing.  A tiny threshold
#: keeps the algorithm honest (and honestly exponential).
SE_P_TAU = 1e-9

_series: list[dict] = []


@pytest.mark.parametrize("k", MAIN_KS)
def test_fig10_main_algorithm(benchmark, cartel_prefixes, k):
    prefix = cartel_prefixes[k]
    pmf = benchmark.pedantic(
        lambda: dp_distribution(prefix, k, max_lines=100),
        rounds=1,
        iterations=1,
    )
    assert not pmf.is_empty()
    _series.append(
        {"algorithm": "main (dp)", "k": k, "scan_depth": len(prefix)}
    )


@pytest.mark.parametrize("k", SE_KS)
def test_fig10_state_expansion(benchmark, cartel_prefixes, k):
    prefix = cartel_prefixes[k]
    pmf = benchmark.pedantic(
        lambda: state_expansion_distribution(
            prefix, k, p_tau=SE_P_TAU, max_lines=100
        ),
        rounds=1,
        iterations=1,
    )
    assert not pmf.is_empty()
    _series.append(
        {"algorithm": "StateExpansion", "k": k, "scan_depth": len(prefix)}
    )


@pytest.mark.parametrize("k", KC_KS)
def test_fig10_k_combo(benchmark, cartel_prefixes, k):
    prefix = cartel_prefixes[k]
    pmf = benchmark.pedantic(
        lambda: k_combo_distribution(prefix, k, max_lines=100),
        rounds=1,
        iterations=1,
    )
    assert not pmf.is_empty()
    _series.append(
        {"algorithm": "k-Combo", "k": k, "scan_depth": len(prefix)}
    )


def test_fig10_series_printed(benchmark, capsys):
    benchmark.pedantic(lambda: list(_series), rounds=1, iterations=1)
    with capsys.disabled():
        print_series(
            "Figure 10 configurations (times in the benchmark table)",
            _series,
        )
