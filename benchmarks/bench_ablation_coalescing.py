"""Ablation: accuracy cost of line coalescing (Section 3.2.1).

Measures the Wasserstein error of the coalesced distribution against
an (effectively) uncoalesced reference as the line budget shrinks.
The paper argues the error is bounded by the grid width δ =
span / max_lines; the assertion checks the measured error stays below
one grid width.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import AREA_SEEDS, cartel_workload, congestion_scorer
from repro.core.distribution import prepare_scored_prefix
from repro.core.dp import dp_distribution
from repro.stats.metrics import wasserstein_distance

from conftest import P_TAU

K = 5
BUDGETS = (10, 25, 50, 100, 200)

_prefix_cache: dict[str, object] = {}


def _prefix():
    if "p" not in _prefix_cache:
        table = cartel_workload(seed=AREA_SEEDS[1], segments=80)
        _prefix_cache["p"] = prepare_scored_prefix(
            table, congestion_scorer(), K, p_tau=P_TAU
        )
        _prefix_cache["exact"] = dp_distribution(
            _prefix_cache["p"], K, max_lines=1_000_000
        )
    return _prefix_cache["p"], _prefix_cache["exact"]


@pytest.mark.parametrize("budget", BUDGETS)
def test_ablation_coalescing(benchmark, capsys, budget):
    prefix, exact = _prefix()
    approx = benchmark.pedantic(
        lambda: dp_distribution(prefix, K, max_lines=budget),
        rounds=1,
        iterations=1,
    )
    error = wasserstein_distance(exact, approx)
    grid_width = exact.support_span() / budget
    assert error <= grid_width, (
        f"coalescing error {error:.4f} exceeds grid width "
        f"{grid_width:.4f} at budget {budget}"
    )
    assert approx.total_mass() == pytest.approx(
        exact.total_mass(), abs=1e-9
    )
    with capsys.disabled():
        print_series(
            f"Coalescing ablation (budget={budget})",
            [
                {
                    "max_lines": budget,
                    "lines": len(approx),
                    "wasserstein_error": error,
                    "grid_width_bound": grid_width,
                }
            ],
        )
