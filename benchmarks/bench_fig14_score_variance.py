"""Figure 14: raising the score std-dev widens the distribution.

Paper claim: increasing σ from 60 to 100 stretches the significant
span of the top-k score distribution (≈350 → ≈1000 in the paper's
units) and pushes U-Topk further from the typical scores.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import synthetic_workload
from repro.semantics.answers import typicality_report

K = 10
SIGMAS = (60.0, 100.0)

_results: dict[float, dict] = {}


@pytest.mark.parametrize("sigma", SIGMAS)
def test_fig14_sigma(benchmark, sigma):
    def run():
        table = synthetic_workload(score_std=sigma)
        report = typicality_report(table, "score", K, 3)
        assert report.u_topk is not None
        return {
            "sigma": sigma,
            "E[S]": report.pmf.expectation(),
            "std": report.pmf.std(),
            "span90": report.pmf.span_containing(0.9),
            "u_topk_dist_to_typical": report.distance_to_nearest_typical,
        }

    _results[sigma] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig14_shape(benchmark, capsys):
    benchmark.pedantic(lambda: dict(_results), rounds=1, iterations=1)
    assert len(_results) == 2, "run the parametrized cases first"
    low, high = _results[60.0], _results[100.0]
    assert high["span90"] > 1.3 * low["span90"]
    assert high["std"] > low["std"]
    with capsys.disabled():
        print_series(
            "Figure 14: score std-dev vs distribution width",
            [low, high],
        )
