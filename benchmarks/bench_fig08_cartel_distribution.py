"""Figure 8: top-k congestion-score distributions in three areas.

For each simulated area the distribution is computed with the main
algorithm, the U-Topk answer and the 3-Typical answers are located in
it, and the paper's qualitative claims are asserted: U-Topk has a tiny
probability and the typical scores straddle the distribution.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import AREA_SEEDS, cartel_workload, congestion_scorer
from repro.semantics.answers import typicality_report

#: (area seed, k) per subplot — k = 5, 5, 10 as in the paper.
SUBPLOTS = list(zip(AREA_SEEDS, (5, 5, 10)))


@pytest.mark.parametrize("seed,k", SUBPLOTS)
def test_fig08_area(benchmark, capsys, seed, k):
    table = cartel_workload(seed=seed, segments=100)
    scorer = congestion_scorer()
    report = benchmark.pedantic(
        lambda: typicality_report(table, scorer, k, 3),
        rounds=1,
        iterations=1,
    )
    pmf = report.pmf
    assert report.u_topk is not None
    # U-Topk's probability is tiny relative to the distribution mass.
    assert report.u_topk.probability < 0.25
    # Typical scores lie inside the support and ascend.
    scores = [a.score for a in report.typical.answers]
    assert scores == sorted(scores)
    assert pmf.scores[0] <= scores[0] <= scores[-1] <= pmf.scores[-1]
    with capsys.disabled():
        print_series(
            f"Figure 8 (seed={seed}, k={k})",
            [
                {
                    "lines": len(pmf),
                    "E[S]": pmf.expectation(),
                    "std": pmf.std(),
                    "u_topk_score": report.u_topk.total_score,
                    "u_topk_prob": report.u_topk.probability,
                    "u_topk_pctl": report.u_topk_percentile,
                    "typical": "/".join(f"{s:.0f}" for s in scores),
                }
            ],
        )
