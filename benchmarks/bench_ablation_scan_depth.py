"""Ablation: Theorem-2 scan depth vs captured probability mass.

Tightening p_tau scans deeper and loses less of the distribution's
mass; the loss at depth n is bounded by the mass of the dropped
vectors.  The assertion checks the monotone trade-off.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import AREA_SEEDS, cartel_workload, congestion_scorer
from repro.core.distribution import (
    prepare_scored_prefix,
    top_k_score_distribution,
)
from repro.core.dp import dp_distribution

K = 10
P_TAUS = (1e-1, 1e-2, 1e-3)

_rows: list[dict] = []
_cache: dict[str, object] = {}


def _table():
    if "t" not in _cache:
        _cache["t"] = cartel_workload(seed=AREA_SEEDS[2], segments=100)
        _cache["full_mass"] = top_k_score_distribution(
            _cache["t"], congestion_scorer(), K, p_tau=0.0
        ).total_mass()
    return _cache["t"], _cache["full_mass"]


@pytest.mark.parametrize("p_tau", P_TAUS)
def test_ablation_scan_depth(benchmark, p_tau):
    table, full_mass = _table()
    prefix = prepare_scored_prefix(
        table, congestion_scorer(), K, p_tau=p_tau
    )
    pmf = benchmark.pedantic(
        lambda: dp_distribution(prefix, K), rounds=1, iterations=1
    )
    _rows.append(
        {
            "p_tau": p_tau,
            "scan_depth": len(prefix),
            "mass": pmf.total_mass(),
            "mass_lost": full_mass - pmf.total_mass(),
        }
    )


def test_ablation_scan_depth_shape(benchmark, capsys):
    benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    assert len(_rows) == len(P_TAUS)
    ordered = sorted(_rows, key=lambda r: -r["p_tau"])
    depths = [r["scan_depth"] for r in ordered]
    masses = [r["mass"] for r in ordered]
    assert depths == sorted(depths)
    assert masses == sorted(masses)
    assert all(r["mass_lost"] >= -1e-9 for r in ordered)
    with capsys.disabled():
        print_series("Scan-depth ablation", ordered)
