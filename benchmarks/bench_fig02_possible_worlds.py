"""Figure 2: enumerate the toy table's possible worlds with top-2.

Regenerates the 18-world table of the paper's motivating example and
benchmarks the enumeration path (the oracle all other algorithms are
validated against).
"""

from __future__ import annotations

from repro.bench.figures import fig02_possible_worlds
from repro.bench.reporting import print_series


def test_fig02_possible_worlds(benchmark, capsys):
    rows = benchmark(fig02_possible_worlds)
    assert len(rows) == 18
    assert abs(sum(r["prob"] for r in rows) - 1.0) < 1e-9
    # The most probable world is W = {T2, T5, T6} with p = 0.12.
    assert rows[0]["prob"] == max(r["prob"] for r in rows)
    with capsys.disabled():
        print_series("Figure 2: possible worlds of the toy table", rows)
