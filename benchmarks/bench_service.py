"""Service benchmark: micro-batched execution vs naive per-request.

Boots the real HTTP service twice on an ephemeral port — once with
the micro-batching executor over the shared resident session, once in
``unbatched`` mode (every request served by a fresh cold session, the
pre-service behavior of each entry point) — and drives the identical
closed-loop mixed-semantics workload (:mod:`repro.service.loadgen`)
through both.  The acceptance bar of the service PR: **batched
throughput ≥ 2x unbatched** on this tiny CI-sized workload; the gap
widens with table size, since the unbatched baseline re-runs the
shared-prefix DP for every request while the batched service pays it
once per ``(table, p_tau, algorithm)`` group.

Run as pytest (``pytest benchmarks/bench_service.py -s``) or
standalone (``python benchmarks/bench_service.py [--json PATH]``,
exits nonzero below the bar).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import Any

#: The catalog both server modes load (cold compute ~0.03-0.5s per
#: workload shape: big enough to dominate HTTP overhead, small enough
#: for CI).
CATALOG = ("demo=synthetic:tuples=80,me=0.4,seed=3",)

#: Closed-loop workload size.
REQUESTS = 60
CONCURRENCY = 8
WORKERS = 2

#: The acceptance bar.
MIN_SPEEDUP = 2.0


def _measure(batched: bool, requests: int, concurrency: int) -> dict[str, Any]:
    """Throughput of one server mode over the standard workload."""
    from repro.service import DatasetCatalog, make_server, run_loadgen

    catalog = DatasetCatalog(CATALOG)
    server = make_server(
        catalog, port=0, workers=WORKERS, batched=batched
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        result = run_loadgen(
            f"http://{host}:{port}",
            requests=requests,
            concurrency=concurrency,
            seed=1,
        )
    finally:
        server.shutdown()
        thread.join(5.0)
    if result.ok != result.requests:
        raise AssertionError(
            f"{'batched' if batched else 'unbatched'} run failed: "
            f"{result.summary()}"
        )
    return {
        "mode": "batched" if batched else "unbatched",
        "throughput_rps": round(result.throughput_rps, 2),
        "elapsed_s": round(result.elapsed_s, 3),
        "p50_ms": round(result.percentile_ms(0.50) or 0.0, 2),
        "p99_ms": round(result.percentile_ms(0.99) or 0.0, 2),
    }


def run_comparison(
    requests: int = REQUESTS, concurrency: int = CONCURRENCY
) -> dict[str, Any]:
    """Both modes over the identical workload, plus the speedup."""
    unbatched = _measure(False, requests, concurrency)
    batched = _measure(True, requests, concurrency)
    speedup = batched["throughput_rps"] / unbatched["throughput_rps"]
    return {
        "workload": {
            "catalog": list(CATALOG),
            "requests": requests,
            "concurrency": concurrency,
            "workers": WORKERS,
        },
        "unbatched": unbatched,
        "batched": batched,
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }


def test_batched_beats_unbatched() -> None:
    """Batched execution serves mixed traffic >= 2x faster."""
    from repro.bench.reporting import print_series

    report = run_comparison()
    print_series(
        f"Service throughput ({REQUESTS} mixed requests, "
        f"concurrency {CONCURRENCY})",
        [report["unbatched"], report["batched"]],
        columns=("mode", "throughput_rps", "p50_ms", "p99_ms"),
    )
    print(f"  speedup: {report['speedup']}x (bar {MIN_SPEEDUP}x)")
    assert report["speedup"] >= MIN_SPEEDUP, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON")
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--concurrency", type=int, default=CONCURRENCY)
    args = parser.parse_args(argv)
    report = run_comparison(args.requests, args.concurrency)
    print(json.dumps(report, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if report["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {report['speedup']}x below the "
            f"{MIN_SPEEDUP}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
