"""Service benchmark: batching speedup and multi-process scaling.

**Batched vs unbatched** boots the real HTTP service twice on an
ephemeral port — once with the micro-batching executor over the shared
resident session, once in ``unbatched`` mode (every request served by
a fresh cold session, the pre-service behavior of each entry point) —
and drives the identical closed-loop mixed-semantics workload
(:mod:`repro.service.loadgen`) through both.  The acceptance bar of
the service PR: **batched throughput ≥ 2x unbatched** on this tiny
CI-sized workload; the gap widens with table size, since the unbatched
baseline re-runs the shared-prefix DP for every request while the
batched service pays it once per ``(table, p_tau, algorithm)`` group.

**Scaling** (``--scaling``) compares ``--workers N`` worker processes
against the single-process server over a cache-busting workload —
every request carries a distinct ``p_tau``, so each one pays a cold DP
and the run is compute-bound, the shape the sharded tier exists for.
The bar is machine-calibrated: ``0.5 x min(workers, cores)`` (2x at 4
workers on a 4-core CI box, 4x at 8 workers on 8 cores), and the
comparison is skipped on a single-core machine where process
parallelism cannot win.

Run as pytest (``pytest benchmarks/bench_service.py -s``) or
standalone (``python benchmarks/bench_service.py [--json PATH]
[--scaling]``, exits nonzero below the bar).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
import urllib.request
from typing import Any

#: The catalog both server modes load (cold compute ~0.03-0.5s per
#: workload shape: big enough to dominate HTTP overhead, small enough
#: for CI).
CATALOG = ("demo=synthetic:tuples=80,me=0.4,seed=3",)

#: Closed-loop workload size.
REQUESTS = 60
CONCURRENCY = 8
WORKERS = 2

#: The acceptance bar.
MIN_SPEEDUP = 2.0

#: Scaling-mode shape: worker processes and the cache-busting workload.
#: The bigger table + ``u_kranks`` makes each cold request ~30ms of
#: real DP compute, so process parallelism (not IPC overhead) decides
#: the comparison.
SCALE_CATALOG = ("demo=synthetic:tuples=5000,me=0.4,seed=3",)
SCALE_WORKERS = 4
SCALE_REQUESTS = 48
SCALE_CONCURRENCY = 8


def scaling_bar(workers: int) -> float | None:
    """The machine-calibrated scaling bar, or ``None`` to skip.

    Half the usable parallelism: ``0.5 * min(workers, cores)`` — 2x
    for 4 workers on >= 4 cores, 4x for 8 workers on 8 cores.  On one
    core there is no parallelism to claim, so no bar.
    """
    cores = os.cpu_count() or 1
    if cores < 2:
        return None
    return 0.5 * min(workers, cores)


def _measure(batched: bool, requests: int, concurrency: int) -> dict[str, Any]:
    """Throughput of one server mode over the standard workload."""
    from repro.service import DatasetCatalog, make_server, run_loadgen

    catalog = DatasetCatalog(CATALOG)
    server = make_server(
        catalog, port=0, workers=WORKERS, batched=batched
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        result = run_loadgen(
            f"http://{host}:{port}",
            requests=requests,
            concurrency=concurrency,
            seed=1,
        )
    finally:
        server.shutdown()
        thread.join(5.0)
    if result.ok != result.requests:
        raise AssertionError(
            f"{'batched' if batched else 'unbatched'} run failed: "
            f"{result.summary()}"
        )
    return {
        "mode": "batched" if batched else "unbatched",
        "throughput_rps": round(result.throughput_rps, 2),
        "elapsed_s": round(result.elapsed_s, 3),
        "p50_ms": round(result.percentile_ms(0.50) or 0.0, 2),
        "p99_ms": round(result.percentile_ms(0.99) or 0.0, 2),
    }


def run_comparison(
    requests: int = REQUESTS, concurrency: int = CONCURRENCY
) -> dict[str, Any]:
    """Both modes over the identical workload, plus the speedup."""
    unbatched = _measure(False, requests, concurrency)
    batched = _measure(True, requests, concurrency)
    speedup = batched["throughput_rps"] / unbatched["throughput_rps"]
    return {
        "workload": {
            "catalog": list(CATALOG),
            "requests": requests,
            "concurrency": concurrency,
            "workers": WORKERS,
        },
        "unbatched": unbatched,
        "batched": batched,
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }


def _scaling_workload(requests: int) -> list[dict[str, Any]]:
    """Cache-busting payloads: every request a distinct ``p_tau``.

    Each shape pays a cold shared-prefix DP on whichever process
    serves it, so the run measures compute parallelism rather than
    cache reuse, and the distinct keys spread across the ring.
    """
    return [
        {
            "table": "demo",
            "k": 20,
            "semantics": "u_kranks",
            "p_tau": round(0.001 + index * 1e-5, 8),
        }
        for index in range(requests)
    ]


def _drive(
    base_url: str, workload: list[dict[str, Any]], concurrency: int
) -> dict[str, Any]:
    """Closed-loop client: ``concurrency`` threads drain ``workload``."""
    pending = list(enumerate(workload))
    lock = threading.Lock()
    failures: list[str] = []

    def loop() -> None:
        while True:
            with lock:
                if not pending:
                    return
                _, payload = pending.pop()
            body = json.dumps(payload).encode()
            request = urllib.request.Request(
                f"{base_url}/v1/answer",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=60.0) as rsp:
                    rsp.read()
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                with lock:
                    failures.append(f"{payload.get('p_tau')}: {exc}")

    threads = [
        threading.Thread(target=loop, daemon=True)
        for _ in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise AssertionError(f"scaling run failed: {failures[:3]}")
    return {
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(len(workload) / elapsed, 2),
    }


def _measure_workers(
    workers: int, requests: int, concurrency: int
) -> dict[str, Any]:
    """Throughput of an N-process deployment on the cold workload."""
    from repro.service import (
        DatasetCatalog,
        make_server,
        make_sharded_server,
    )

    bindings = dict(entry.split("=", 1) for entry in SCALE_CATALOG)
    if workers == 1:
        server = make_server(
            DatasetCatalog(bindings), port=0, workers=2
        )
    else:
        server = make_sharded_server(
            bindings, port=0, workers=workers, threads=2
        )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        sample = _drive(
            f"http://{host}:{port}",
            _scaling_workload(requests),
            concurrency,
        )
    finally:
        server.shutdown()  # also stops the service / worker pool
        thread.join(5.0)
    return {"mode": f"{workers} worker(s)", "workers": workers, **sample}


def run_scaling(
    workers: int = SCALE_WORKERS,
    requests: int = SCALE_REQUESTS,
    concurrency: int = SCALE_CONCURRENCY,
) -> dict[str, Any]:
    """Sharded N-process vs single-process on cold distinct shapes."""
    single = _measure_workers(1, requests, concurrency)
    sharded = _measure_workers(workers, requests, concurrency)
    speedup = sharded["throughput_rps"] / single["throughput_rps"]
    bar = scaling_bar(workers)
    return {
        "workload": {
            "catalog": list(SCALE_CATALOG),
            "requests": requests,
            "concurrency": concurrency,
            "workers": workers,
            "cores": os.cpu_count() or 1,
        },
        "single": single,
        "sharded": sharded,
        "speedup": round(speedup, 2),
        "min_speedup": bar,
    }


def test_sharded_scaling() -> None:
    """N worker processes beat one process on cold compute-bound load.

    Bar is ``0.5 x min(workers, cores)``; skipped on one core, where
    process parallelism has nothing to parallelize onto.
    """
    import pytest

    from repro.bench.reporting import print_series

    bar = scaling_bar(SCALE_WORKERS)
    if bar is None:
        pytest.skip("single-core machine: no parallelism to measure")
    report = run_scaling()
    print_series(
        f"Scaling ({SCALE_REQUESTS} distinct-p_tau requests, "
        f"concurrency {SCALE_CONCURRENCY}, "
        f"{report['workload']['cores']} cores)",
        [report["single"], report["sharded"]],
        columns=("mode", "throughput_rps", "elapsed_s"),
    )
    print(f"  speedup: {report['speedup']}x (bar {bar}x)")
    assert report["speedup"] >= bar, report


def test_batched_beats_unbatched() -> None:
    """Batched execution serves mixed traffic >= 2x faster."""
    from repro.bench.reporting import print_series

    report = run_comparison()
    print_series(
        f"Service throughput ({REQUESTS} mixed requests, "
        f"concurrency {CONCURRENCY})",
        [report["unbatched"], report["batched"]],
        columns=("mode", "throughput_rps", "p50_ms", "p99_ms"),
    )
    print(f"  speedup: {report['speedup']}x (bar {MIN_SPEEDUP}x)")
    assert report["speedup"] >= MIN_SPEEDUP, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument(
        "--scaling", action="store_true",
        help="run the multi-process scaling comparison instead of "
             "batched-vs-unbatched",
    )
    parser.add_argument(
        "--workers", type=int, default=SCALE_WORKERS,
        help="worker processes for --scaling",
    )
    args = parser.parse_args(argv)
    if args.scaling:
        report = run_scaling(
            args.workers,
            args.requests or SCALE_REQUESTS,
            args.concurrency or SCALE_CONCURRENCY,
        )
        bar = report["min_speedup"]
    else:
        report = run_comparison(
            args.requests or REQUESTS,
            args.concurrency or CONCURRENCY,
        )
        bar = MIN_SPEEDUP
    print(json.dumps(report, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if bar is None:
        print(
            "NOTE: single-core machine, scaling bar not enforced",
            file=sys.stderr,
        )
    elif report["speedup"] < bar:
        print(
            f"FAIL: speedup {report['speedup']}x below the {bar}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
