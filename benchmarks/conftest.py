"""Shared fixtures for the per-figure benchmark suite.

Workloads are session-scoped: dataset generation and scan-depth
truncation happen once, so the timed regions isolate the algorithm
under measurement (as in the paper, which reports pure execution
times).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
paper-style series each benchmark prints.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    AREA_SEEDS,
    cartel_workload,
    congestion_scorer,
)
from repro.core.distribution import prepare_scored_prefix

#: The paper's probability threshold (Section 5.3).
P_TAU = 1e-3


@pytest.fixture(scope="session")
def cartel_area():
    """The default simulated CarTel area used by Figures 10-12."""
    return cartel_workload(seed=AREA_SEEDS[0], segments=120)


@pytest.fixture(scope="session")
def cartel_prefixes(cartel_area):
    """Rank-ordered, Theorem-2-truncated prefixes keyed by k."""
    scorer = congestion_scorer()
    return {
        k: prepare_scored_prefix(cartel_area, scorer, k, p_tau=P_TAU)
        for k in (2, 3, 5, 10, 15, 20)
    }
