"""Figure 13: score/probability correlation shifts the distribution.

Asserted shape (paper, Section 5.4): relative to independence, a
positive ρ shifts the top-k score distribution right and a negative ρ
shifts it left; the U-Topk result is atypical in all three cases.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import synthetic_workload
from repro.semantics.answers import typicality_report

K = 10
RHOS = (0.0, 0.8, -0.8)

_results: dict[float, dict] = {}


def _report_row(rho: float) -> dict:
    table = synthetic_workload(correlation=rho)
    report = typicality_report(table, "score", K, 3)
    pmf = report.pmf
    assert report.u_topk is not None
    return {
        "rho": rho,
        "E[S]": pmf.expectation(),
        "std": pmf.std(),
        "u_topk_score": report.u_topk.total_score,
        "u_topk_pctl": report.u_topk_percentile,
        "P(S>uTopk)": report.prob_above_u_topk,
    }


@pytest.mark.parametrize("rho", RHOS)
def test_fig13_correlation(benchmark, rho):
    row = benchmark.pedantic(
        lambda: _report_row(rho), rounds=1, iterations=1
    )
    _results[rho] = row
    # U-Topk is atypical: its percentile sits away from the centre.
    assert not 0.35 <= row["u_topk_pctl"] <= 0.65


def test_fig13_shape(benchmark, capsys):
    benchmark.pedantic(lambda: dict(_results), rounds=1, iterations=1)
    rows = [_results[rho] for rho in RHOS if rho in _results]
    assert len(rows) == 3, "run the parametrized cases first"
    by_rho = {row["rho"]: row for row in rows}
    # Positive correlation shifts the distribution right, negative left.
    assert by_rho[0.8]["E[S]"] > by_rho[0.0]["E[S]"]
    assert by_rho[-0.8]["E[S]"] < by_rho[0.0]["E[S]"]
    with capsys.disabled():
        print_series("Figure 13: correlation vs distribution", rows)
