"""Backend ablation: the compiled DP kernel vs the numpy path.

Runs the PR's target workload — ``me_shared_prefix_cartel120_k10``
from the committed baseline suite (a 120-segment CarTel-style ME
table, ``k=10``, ``p_tau=1e-3``) — under both DP backends and asserts

* the answers are **byte-identical** (scores, probabilities, vectors);
* native is at least **MIN_SPEEDUP x** faster than python on this
  machine, when the native kernel is available.

The speedup is a same-machine, same-process ratio, so it needs no
calibration normalization; the report additionally prices both runs
in calibrated cost-model units per second so nightly artifacts are
comparable across machines.

Run as pytest (``pytest benchmarks/bench_ablation_backend.py -s``) or
standalone (``python benchmarks/bench_ablation_backend.py [--json
PATH]``, exits nonzero below the bar).  On machines without a C
compiler the bar is skipped (reported as ``native_available: false``)
— the numpy path is the only backend there.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

#: Workload shape — the baseline suite's ``me_shared_prefix_cartel120_k10``.
SEGMENTS = 120
K = 10
P_TAU = 1e-3
MAX_LINES = 200

#: The acceptance bar: native >= 3x python on the target workload.
MIN_SPEEDUP = 3.0

#: Timing repeats (best-of).
REPEATS = 3


def _best_of(case, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        case()
        best = min(best, time.perf_counter() - start)
    return best


def run_comparison() -> dict[str, Any]:
    """Both backends over the identical prefix, plus the speedup."""
    from repro.api.calibration import load_cost_model
    from repro.api.planner import exact_cost
    from repro.bench.workloads import cartel_workload, congestion_scorer
    from repro.core import kernels
    from repro.core.distribution import prepare_scored_prefix
    from repro.core.dp import dp_distribution

    table = cartel_workload(segments=SEGMENTS)
    prefix = prepare_scored_prefix(
        table, congestion_scorer(), K, p_tau=P_TAU
    )
    units = exact_cost(len(prefix), K, prefix.me_member_count())
    model = load_cost_model()

    python_s = _best_of(
        lambda: dp_distribution(
            prefix, K, max_lines=MAX_LINES, backend="python"
        ),
        REPEATS,
    )
    result: dict[str, Any] = {
        "workload": {
            "name": "me_shared_prefix_cartel120_k10",
            "segments": SEGMENTS,
            "k": K,
            "p_tau": P_TAU,
            "max_lines": MAX_LINES,
            "n": len(prefix),
            "cost_units": units,
        },
        "python": {
            "elapsed_s": round(python_s, 4),
            "units_per_s": round(units / python_s, 1),
        },
        "native_available": kernels.native_available(),
        "min_speedup": MIN_SPEEDUP,
        "cost_model_source": model.source,
    }
    if not result["native_available"]:
        from repro.core.kernels import build

        result["native_error"] = build.load_error() or "kernel not loadable"
        return result

    native_s = _best_of(
        lambda: dp_distribution(
            prefix, K, max_lines=MAX_LINES, backend="native"
        ),
        REPEATS,
    )
    native = dp_distribution(prefix, K, max_lines=MAX_LINES, backend="native")
    python = dp_distribution(prefix, K, max_lines=MAX_LINES, backend="python")
    assert (
        native.scores == python.scores
        and native.probs == python.probs
        and native.vectors == python.vectors
    ), "native backend diverged from the numpy path"

    result["native"] = {
        "elapsed_s": round(native_s, 4),
        "units_per_s": round(units / native_s, 1),
    }
    result["speedup"] = round(python_s / native_s, 2)
    return result


def test_native_backend_beats_python_by_bar() -> None:
    """CI bar: native >= MIN_SPEEDUP x python, byte-identical answers."""
    import pytest

    result = run_comparison()
    print(json.dumps(result, indent=2))
    if not result["native_available"]:
        pytest.skip(f"native kernel unavailable: {result['native_error']}")
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"native speedup {result['speedup']}x below the "
        f"{MIN_SPEEDUP}x bar: {result}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the result document to PATH")
    args = parser.parse_args(argv)
    result = run_comparison()
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.json}")
    if not result["native_available"]:
        print(
            "SKIP: native kernel unavailable "
            f"({result['native_error']}); no bar to enforce",
            file=sys.stderr,
        )
        return 0
    if result["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']}x below the "
            f"{MIN_SPEEDUP}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    import pathlib

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )
    raise SystemExit(main())
