"""Ablation: shared-prefix sweep vs one dynamic program per ending.

Compares the O(kmn) shared-prefix engine (:func:`dp_distribution`,
Section 3.3.3) against the per-ending implementation it replaced
(:func:`dp_distribution_per_ending`) across mutual-exclusion
densities.  The per-ending path re-runs the bottom-up program — and
rebuilds the compressed prefix — once per ending unit, so its cost
grows with the number of ending units times the whole prefix, while
the shared sweep pays the independent-tuple portion once; the speedup
therefore grows with the number of ending units and with the
independent fraction of the prefix.

Run with ``pytest benchmarks/bench_ablation_shared_prefix.py -s``.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import time_callable
from repro.bench.workloads import cartel_workload, congestion_scorer
from repro.core.distribution import prepare_scored_prefix
from repro.core.dp import (
    _ending_units,
    dp_distribution,
    dp_distribution_per_ending,
)
from repro.stats.metrics import wasserstein_distance

K = 10
P_TAU = 1e-3
ME_FRACTIONS = (0.25, 0.5, 0.75, 0.9)


@pytest.fixture(scope="module")
def density_prefixes():
    """Theorem-2-truncated CarTel prefixes per ME density."""
    prefixes = {}
    for fraction in ME_FRACTIONS:
        table = cartel_workload(segments=160, me_fraction=fraction)
        prefixes[fraction] = prepare_scored_prefix(
            table, congestion_scorer(), K, p_tau=P_TAU
        )
    return prefixes


def test_shared_prefix_speedup_curve(density_prefixes):
    """The Section-3.3.3 speedup curve across ME densities."""
    rows = []
    for fraction, prefix in density_prefixes.items():
        shared = time_callable(
            lambda: dp_distribution(prefix, K), repeats=3
        )
        per_ending = time_callable(
            lambda: dp_distribution_per_ending(prefix, K), repeats=3
        )
        rows.append(
            {
                "me_fraction": fraction,
                "n": len(prefix),
                "me_members": prefix.me_member_count(),
                "ending_units": len(_ending_units(prefix)),
                "shared_ms": shared.seconds * 1e3,
                "per_ending_ms": per_ending.seconds * 1e3,
                "speedup": per_ending.seconds / shared.seconds,
            }
        )
        # Equivalence: same mass, coalesced lines within the shared
        # grid-width bound (fold orders differ, exact sums do not).
        a, b = shared.value, per_ending.value
        assert a.total_mass() == pytest.approx(b.total_mass(), abs=1e-9)
        grid_width = max(a.support_span(), 1e-12) / 200
        assert wasserstein_distance(a, b) < 2 * grid_width
    print_series(
        "Shared-prefix vs per-ending DP (CarTel, k=10)",
        rows,
        columns=(
            "me_fraction",
            "n",
            "me_members",
            "ending_units",
            "shared_ms",
            "per_ending_ms",
            "speedup",
        ),
    )
    # The ME-heavy configurations must favour the shared engine.
    heavy = [row for row in rows if row["me_fraction"] >= 0.5]
    assert all(row["speedup"] > 1.0 for row in heavy), rows


def test_shared_prefix_benchmark(benchmark, density_prefixes):
    prefix = density_prefixes[0.75]
    benchmark.pedantic(
        lambda: dp_distribution(prefix, K), rounds=1, iterations=1
    )


def test_per_ending_benchmark(benchmark, density_prefixes):
    prefix = density_prefixes[0.75]
    benchmark.pedantic(
        lambda: dp_distribution_per_ending(prefix, K),
        rounds=1,
        iterations=1,
    )
