"""Figure 3: the toy table's top-2 total-score distribution.

The paper's quoted facts are asserted: U-Top2 = <T2,T6> with score 118
and probability 0.2; the expected score is 164.1; the actual top-2
outscores U-Topk with probability 0.76; score 235 carries 0.12.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import fig03_toy_distribution
from repro.bench.reporting import print_series


def test_fig03_toy_distribution(benchmark, capsys):
    rows = benchmark(fig03_toy_distribution)
    pmf_rows = [r for r in rows if "U-Topk" not in r["vector"]]
    by_score = {r["score"]: r["prob"] for r in pmf_rows}
    assert by_score[118.0] == pytest.approx(0.2)
    assert by_score[235.0] == pytest.approx(0.12)
    mean = sum(r["score"] * r["prob"] for r in pmf_rows)
    assert mean == pytest.approx(164.1)
    above = sum(p for s, p in by_score.items() if s > 118.0)
    assert above == pytest.approx(0.76)
    with capsys.disabled():
        print_series("Figure 3: toy top-2 score distribution", rows)
