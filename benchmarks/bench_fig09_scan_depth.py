"""Figure 9: Theorem-2 scan depth n as a function of k.

The paper observes roughly linear growth of n with k at p_tau = 0.001;
the assertions check monotonicity and (loose) linearity of the series.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import AREA_SEEDS, cartel_workload, congestion_scorer
from repro.core.scan_depth import scan_depth
from repro.uncertain.scoring import ScoredTable

KS = (10, 20, 30, 40, 50, 60)

_scored_cache = {}


def _scored():
    if "scored" not in _scored_cache:
        table = cartel_workload(seed=AREA_SEEDS[0], segments=400)
        _scored_cache["scored"] = ScoredTable.from_table(
            table, congestion_scorer()
        )
    return _scored_cache["scored"]


@pytest.mark.parametrize("k", KS)
def test_fig09_scan_depth_single_k(benchmark, k):
    scored = _scored()
    depth = benchmark(lambda: scan_depth(scored, k, 1e-3))
    assert depth >= k


def test_fig09_series(benchmark, capsys):
    scored = _scored()
    rows = benchmark.pedantic(
        lambda: [
            {"k": k, "scan_depth": scan_depth(scored, k, 1e-3)}
            for k in KS
        ],
        rounds=1,
        iterations=1,
    )
    depths = [row["scan_depth"] for row in rows]
    assert depths == sorted(depths)
    # Roughly linear: the increment per 10 k stays within a 3x band.
    increments = [b - a for a, b in zip(depths, depths[1:])]
    assert max(increments) <= 3 * max(1, min(increments))
    with capsys.disabled():
        print_series("Figure 9: k vs scan depth (p_tau=0.001)", rows)
