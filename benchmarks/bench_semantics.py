"""Supplementary benchmark: cost of the competing semantics.

Not a paper figure, but useful context for adopters: what does each
answer semantics cost on the same workload?  U-Topk (best-first
search), the full score distribution + 3-Typical (this paper), and the
marginal semantics (U-kRanks / PT-k / Global-Topk, which share the
rank-marginal engine).
"""

from __future__ import annotations


from repro.core.dp import dp_distribution
from repro.core.typical import select_typical
from repro.semantics.global_topk import global_topk_scored
from repro.semantics.pt_k import pt_k_scored
from repro.semantics.u_kranks import u_kranks_scored
from repro.semantics.u_topk import u_topk_scored

K = 10


def test_semantics_u_topk(benchmark, cartel_prefixes):
    prefix = cartel_prefixes[K]
    result = benchmark.pedantic(
        lambda: u_topk_scored(prefix, K), rounds=1, iterations=1
    )
    assert result is not None


def test_semantics_distribution_plus_typical(benchmark, cartel_prefixes):
    prefix = cartel_prefixes[K]

    def run():
        pmf = dp_distribution(prefix, K)
        return select_typical(pmf, 3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.answers) == 3


def test_semantics_u_kranks(benchmark, cartel_prefixes):
    prefix = cartel_prefixes[K]
    answers = benchmark.pedantic(
        lambda: u_kranks_scored(prefix, K), rounds=1, iterations=1
    )
    assert len(answers) == K


def test_semantics_pt_k(benchmark, cartel_prefixes):
    prefix = cartel_prefixes[K]
    answers = benchmark.pedantic(
        lambda: pt_k_scored(prefix, K, 0.3), rounds=1, iterations=1
    )
    assert all(prob >= 0.3 for _, prob in answers)


def test_semantics_global_topk(benchmark, cartel_prefixes):
    prefix = cartel_prefixes[K]
    answers = benchmark.pedantic(
        lambda: global_topk_scored(prefix, K), rounds=1, iterations=1
    )
    assert len(answers) == K
