"""Ablation: batched Monte-Carlo sampling vs the per-world Python loop.

Compares three ways of drawing S possible worlds of a synthetic
uncertain table:

* **per-world loop** — the pre-MC-engine ``WorldSampler``
  implementation, reproduced below: one O(#groups) Python pass and one
  ``searchsorted`` per world;
* **batched worlds** — the rewritten ``WorldSampler`` iterator API
  (vectorized draws, Python ``frozenset`` materialization);
* **batched matrix** — ``BatchWorldSampler.sample``: the existence
  matrix the MC engine consumes directly, no per-world Python at all.

The acceptance bar of the MC-engine PR: the batched matrix path is at
least 10x faster than the per-world loop at S = 10k worlds.  End to
end, the same ablation times the estimated score PMF against the old
dict-accumulating sampling helper.

Run with ``pytest benchmarks/bench_ablation_mc.py -s``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import time_callable
from repro.bench.workloads import synthetic_workload
from repro.mc.engine import MCEngine
from repro.mc.sampler import BatchWorldSampler
from repro.uncertain.sampling import WorldSampler
from repro.uncertain.scoring import ScoredTable, attribute_scorer

SAMPLES = 10_000
TUPLES = 300


def _per_world_loop(table, count: int, seed: int) -> list[frozenset]:
    """The pre-batched WorldSampler algorithm, kept for the ablation."""
    rng = np.random.default_rng(seed)
    group_tids = []
    group_cumprobs = []
    for members in table.groups:
        probs = np.array(
            [table[tid].probability for tid in members], dtype=float
        )
        group_tids.append(tuple(members))
        group_cumprobs.append(np.cumsum(probs))
    worlds = []
    for _ in range(count):
        tids = []
        draws = rng.random(len(group_tids))
        for members, cum, u in zip(group_tids, group_cumprobs, draws):
            index = int(np.searchsorted(cum, u, side="right"))
            if index < len(members):
                tids.append(members[index])
        worlds.append(frozenset(tids))
    return worlds


@pytest.fixture(scope="module")
def table():
    return synthetic_workload(tuples=TUPLES, me_fraction=0.5)


def test_batched_sampler_speedup(table):
    """Batched matrix sampling is >= 10x the per-world loop at S=10k."""
    loop = time_callable(
        lambda: _per_world_loop(table, SAMPLES, seed=1), repeats=3
    )
    sampler = WorldSampler(table, seed=1)
    worlds = time_callable(
        lambda: list(sampler.sample_worlds(SAMPLES)), repeats=3
    )
    matrix_sampler = BatchWorldSampler.from_table(table, seed=1)
    matrix = time_callable(
        lambda: matrix_sampler.sample(SAMPLES), repeats=3
    )
    rows = [
        {
            "path": name,
            "worlds": SAMPLES,
            "ms": timed.seconds * 1e3,
            "speedup_vs_loop": loop.seconds / timed.seconds,
        }
        for name, timed in (
            ("per-world loop", loop),
            ("batched worlds (frozensets)", worlds),
            ("batched matrix", matrix),
        )
    ]
    print_series(
        f"MC sampling ablation ({TUPLES} tuples, S={SAMPLES})",
        rows,
        columns=("path", "worlds", "ms", "speedup_vs_loop"),
    )
    # Like for like on output type, the batched path must still win;
    # the matrix path carries the PR's 10x acceptance bar.
    assert worlds.seconds < loop.seconds
    assert loop.seconds / matrix.seconds >= 10.0
    # Sanity: the matrix respects the sample-count contract.
    assert matrix.value.shape == (SAMPLES, TUPLES)


def test_engine_end_to_end_vs_looped_estimate(table):
    """The engine's one-pass estimated PMF beats looping worlds
    through the scored table, and the two estimates agree."""
    k = 10
    scorer = attribute_scorer("score")
    scored = ScoredTable.from_table(table, scorer)

    def looped_estimate():
        counts: dict[float, int] = {}
        for world in _per_world_loop(table, SAMPLES, seed=2):
            existing = [
                pos for pos, item in enumerate(scored) if item.tid in world
            ]
            if len(existing) < k:
                continue
            total = sum(scored[pos].score for pos in existing[:k])
            counts[total] = counts.get(total, 0) + 1
        return {score: n / SAMPLES for score, n in counts.items()}

    def engine_estimate():
        engine = MCEngine(scored, k, samples=SAMPLES, seed=2).run()
        return engine.distribution()

    loop = time_callable(looped_estimate, repeats=3)
    engine = time_callable(engine_estimate, repeats=3)
    print_series(
        f"Estimated top-{k} PMF ({TUPLES} tuples, S={SAMPLES})",
        [
            {
                "path": "looped worlds + python top-k",
                "ms": loop.seconds * 1e3,
                "mass": sum(loop.value.values()),
            },
            {
                "path": "MCEngine one-pass",
                "ms": engine.seconds * 1e3,
                "mass": engine.value.total_mass(),
            },
        ],
        columns=("path", "ms", "mass"),
    )
    assert engine.seconds < loop.seconds
    assert engine.value.expectation() == pytest.approx(
        sum(s * p for s, p in loop.value.items())
        / sum(loop.value.values()),
        rel=0.02,
    )
