"""Ablation: lead-tuple-region batching (Section 3.3.3).

Compares the refined algorithm (one dynamic program per lead-tuple
region) against the simple Section-3.3.2 extension (one per ending
tuple).  The two must produce identical distributions; the refinement
should not be slower.
"""

from __future__ import annotations

import pytest

from repro.core.dp import (
    dp_distribution,
    dp_distribution_without_lead_regions,
)
from repro.stats.metrics import wasserstein_distance

K = 10

_results: dict[str, object] = {}


def test_ablation_with_regions(benchmark, cartel_prefixes):
    prefix = cartel_prefixes[K]
    _results["with"] = benchmark.pedantic(
        lambda: dp_distribution(prefix, K), rounds=1, iterations=1
    )


def test_ablation_without_regions(benchmark, cartel_prefixes):
    prefix = cartel_prefixes[K]
    _results["without"] = benchmark.pedantic(
        lambda: dp_distribution_without_lead_regions(prefix, K),
        rounds=1,
        iterations=1,
    )


def test_ablation_equivalence(benchmark):
    benchmark.pedantic(lambda: dict(_results), rounds=1, iterations=1)
    assert "with" in _results and "without" in _results
    a, b = _results["with"], _results["without"]
    assert a.total_mass() == pytest.approx(b.total_mass(), abs=1e-9)
    # The two variants partition the ending units differently, so the
    # grid coalescing snaps lines at slightly different places; both
    # sit within one grid width (span / max_lines) of the exact
    # distribution, hence within two of each other.
    grid_width = a.support_span() / 200
    assert wasserstein_distance(a, b) < 2 * grid_width
