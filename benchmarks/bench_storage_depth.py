"""Benchmark: out-of-core scan-depth pushdown at 100k and 1M tuples.

Packs synthetic tables of increasing size, then measures a
depth-bounded ``typical`` query on the lazy disk path versus the fully
resident path.  Each measurement runs in a **subprocess** so
``resource.getrusage`` peak-RSS numbers are honest per-path footprints
rather than whatever the parent already touched.

Two bars (enforced in full mode, reported in ``--tiny``):

* **Latency scales with depth, not table size** — at a fixed explicit
  depth the lazy query's latency from the smallest to the largest
  table grows by at most ``1.5x``, because the pushdown only pages in
  the prefix it scans.
* **Memory scales with depth, not table size** — the lazy probe's RSS
  growth over an import-only baseline stays under ``10%`` of the
  resident probe's growth at the largest size.

Usage::

    PYTHONPATH=src python benchmarks/bench_storage_depth.py
    PYTHONPATH=src python benchmarks/bench_storage_depth.py --tiny \
        --json bench_storage_depth.json

The nightly workflow runs the full sizes and uploads the JSON
artifact; the CI tests job runs ``--tiny`` as a smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Full-run table sizes (nightly) and the smoke sizes (CI ``--tiny``).
FULL_SIZES = (100_000, 1_000_000)
TINY_SIZES = (2_000, 10_000)

#: Query shape.  The explicit depth keeps the scanned prefix — and so
#: the I/O the lazy path is allowed — identical at every table size.
#: The shape stays in exact-DP territory on purpose: the solver's
#: working set is then small and constant, so the RSS comparison
#: isolates what the *table* path materializes.
K = 5
P_TAU = 1e-3
DEPTH = 200

LATENCY_GROWTH_BAR = 1.5
RSS_FRACTION_BAR = 0.10
PROBE_ROUNDS = 3


# ----------------------------------------------------------------------
# Subprocess probes (``--probe``): emit one JSON line and exit.
# ----------------------------------------------------------------------
def _maxrss_kb() -> int:
    # ru_maxrss is KiB on Linux, bytes on macOS.
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss // 1024 if sys.platform == "darwin" else rss


def _spec():
    from repro.api.spec import QuerySpec

    return QuerySpec(
        table="t",
        scorer="score",
        k=K,
        semantics="typical",
        p_tau=P_TAU,
        depth=DEPTH,
    )


def run_probe(mode: str, packed: str, size: int = 0) -> dict:
    from repro.api.session import Session
    from repro.storage import open_table

    if mode == "pack":
        # Packing a 1M-tuple table peaks >1 GiB, and on Linux
        # ``ru_maxrss`` survives fork+exec — if the *driver* packed,
        # every probe child would inherit that peak as its floor and
        # all deltas would vanish.  So packing is a probe too.
        from repro.datasets.synthetic import (
            MEGroupLayout,
            SyntheticConfig,
            generate_synthetic_table,
        )
        from repro.storage import pack_table

        table = generate_synthetic_table(
            SyntheticConfig(
                tuples=size, me_layout=MEGroupLayout(fraction=0.3)
            ),
            seed=97,
        )
        t0 = time.perf_counter()
        summary = pack_table(table, packed)
        return {
            "mode": mode,
            "bytes": summary["bytes"],
            "pack_s": round(time.perf_counter() - t0, 3),
        }

    table = open_table(packed)
    if mode == "base":
        # Import + open cost only: the RSS floor both query probes
        # share, so deltas isolate what the *query* touched.
        return {"mode": mode, "latency_s": 0.0, "maxrss_kb": _maxrss_kb()}
    if mode == "resident":
        table._ensure_resident()
    session = Session({"t": table})
    spec = _spec()
    t0 = time.perf_counter()
    answer = session.execute(spec)
    latency = time.perf_counter() - t0
    return {
        "mode": mode,
        "latency_s": latency,
        "maxrss_kb": _maxrss_kb(),
        "answer_len": len(answer.answers),
        "resident": table.is_resident,
    }


def _probe(mode: str, packed: Path, size: int = 0) -> dict:
    """Best-of-N latency, worst-of-N RSS, each N a fresh process.

    Only the lazy path's latency feeds a bar, so only it repeats;
    base and resident probes run once (RSS is stable per process).
    """
    results = []
    for _ in range(PROBE_ROUNDS if mode == "lazy" else 1):
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--probe", mode,
             "--packed", str(packed), "--size", str(size)],
            capture_output=True,
            text=True,
            env=os.environ,
            check=False,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"probe {mode} failed:\n{proc.stdout}\n{proc.stderr}"
            )
        results.append(json.loads(proc.stdout.strip().splitlines()[-1]))
    if mode == "pack":
        return results[0]
    return {
        "mode": mode,
        "latency_s": min(r["latency_s"] for r in results),
        "maxrss_kb": max(r["maxrss_kb"] for r in results),
    }


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def _pack(size: int, root: Path) -> tuple[Path, dict]:
    out = root / f"packed-{size}"
    return out, _probe("pack", out, size)


def run_bench(sizes: tuple[int, ...], enforce: bool) -> dict:
    root = Path(tempfile.mkdtemp(prefix="repro-bench-storage-"))
    rows = []
    try:
        for size in sizes:
            packed, summary = _pack(size, root)
            base = _probe("base", packed)
            lazy = _probe("lazy", packed)
            resident = _probe("resident", packed)
            lazy_delta = max(0, lazy["maxrss_kb"] - base["maxrss_kb"])
            res_delta = max(1, resident["maxrss_kb"] - base["maxrss_kb"])
            rows.append(
                {
                    "tuples": size,
                    "packed_bytes": summary["bytes"],
                    "pack_s": summary["pack_s"],
                    "lazy_latency_s": lazy["latency_s"],
                    "resident_latency_s": resident["latency_s"],
                    "base_rss_kb": base["maxrss_kb"],
                    "lazy_rss_kb": lazy["maxrss_kb"],
                    "resident_rss_kb": resident["maxrss_kb"],
                    "lazy_rss_delta_kb": lazy_delta,
                    "resident_rss_delta_kb": res_delta,
                    "rss_fraction": round(lazy_delta / res_delta, 4),
                }
            )
            print(
                f"  {size:>9,} tuples: lazy {lazy['latency_s'] * 1e3:8.2f} ms"
                f"  resident {resident['latency_s'] * 1e3:8.2f} ms"
                f"  rss lazy +{lazy_delta:,} KiB"
                f" vs resident +{res_delta:,} KiB"
                f" ({100 * lazy_delta / res_delta:.1f}%)"
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    growth = rows[-1]["lazy_latency_s"] / max(
        rows[0]["lazy_latency_s"], 1e-9
    )
    fraction = rows[-1]["rss_fraction"]
    document = {
        "benchmark": "storage_depth",
        "k": K,
        "p_tau": P_TAU,
        "depth": DEPTH,
        "sizes": list(sizes),
        "rows": rows,
        "latency_growth": round(growth, 3),
        "latency_growth_bar": LATENCY_GROWTH_BAR,
        "rss_fraction": fraction,
        "rss_fraction_bar": RSS_FRACTION_BAR,
        "enforced": enforce,
    }
    print(
        f"latency growth {sizes[0]:,} -> {sizes[-1]:,} at depth {DEPTH}:"
        f" {growth:.2f}x (bar {LATENCY_GROWTH_BAR}x)"
    )
    print(
        f"lazy RSS delta at {sizes[-1]:,}: {100 * fraction:.1f}% of"
        f" resident (bar {100 * RSS_FRACTION_BAR:.0f}%)"
    )
    if enforce:
        assert growth <= LATENCY_GROWTH_BAR, (
            f"fixed-depth latency grew {growth:.2f}x from {sizes[0]:,}"
            f" to {sizes[-1]:,} tuples (bar {LATENCY_GROWTH_BAR}x):"
            " the pushdown is paging more than the prefix"
        )
        assert fraction < RSS_FRACTION_BAR, (
            f"lazy query RSS is {100 * fraction:.1f}% of the resident"
            f" footprint (bar {100 * RSS_FRACTION_BAR:.0f}%):"
            " the depth-bounded path is materializing the table"
        )
        print("bars: PASS")
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small sizes, bars reported but not enforced (CI smoke)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the results document here"
    )
    parser.add_argument(
        "--probe", choices=("pack", "base", "lazy", "resident")
    )
    parser.add_argument("--packed", help="packed dir (probe mode)")
    parser.add_argument("--size", type=int, default=0)
    args = parser.parse_args(argv)

    if args.probe:
        print(json.dumps(run_probe(args.probe, args.packed, args.size)))
        return 0

    sizes = TINY_SIZES if args.tiny else FULL_SIZES
    print(
        f"bench_storage_depth: sizes={sizes}, k={K}, p_tau={P_TAU},"
        f" depth={DEPTH}"
    )
    document = run_bench(sizes, enforce=not args.tiny)
    if args.json:
        Path(args.json).write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
