"""Plan-fusion benchmark: one fused sweep vs the unfused batched path.

Drives the same cold mixed-k batch — one CarTel-style ME table, six
distinct ``k`` values across two answer semantics — through

* the **fused** path: one ``Session.execute_many`` call, whose
  planner merges all exact DPs into a single shared-prefix sweep at
  ``k_max`` and slices the per-k distributions out; and
* the **unfused** batched path: the same warm shared session executing
  request by request (the pre-planner ``BatchingExecutor`` behavior:
  stage caches shared, but one scored prefix and one DP per distinct
  ``k``).

Both paths produce byte-identical answers (asserted here); the
acceptance bar of the planner PR: **fused ≥ 1.5x unfused** on this
CI-sized workload.  The gap grows with the number of distinct ``k``
values in the batch, since the unfused path pays one full sweep per
``k`` while the fused path pays one sweep total.

Run as pytest (``pytest benchmarks/bench_plan_fusion.py -s``) or
standalone (``python benchmarks/bench_plan_fusion.py [--json PATH]``,
exits nonzero below the bar).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

#: The batch: every (k, semantics) pair becomes one request.
KS = (2, 3, 5, 8, 10, 12)
SEMANTICS = ("typical", "distribution")

#: Workload shape (ME-heavy, CI-sized; the high ME fraction makes the
#: shared rule folding — the part fusion pays once — dominate).
SEGMENTS = 50
ME_FRACTION = 0.95
P_TAU = 0.0

#: The acceptance bar.
MIN_SPEEDUP = 1.5

#: Timing repeats (best-of, cold sessions each time).
REPEATS = 2


def _specs(scorer):
    from repro.api import QuerySpec

    return [
        QuerySpec(
            table="area", scorer=scorer, k=k, p_tau=P_TAU, semantics=sem
        )
        for k in KS
        for sem in SEMANTICS
    ]


def _session(table):
    from repro.api import Session
    from repro.api.calibration import CostModel
    from repro.api.planner import Planner

    return Session({"area": table}, planner=Planner(CostModel()))


def run_comparison() -> dict[str, Any]:
    """Both paths over the identical cold batch, plus the speedup."""
    from repro.bench.workloads import cartel_workload, congestion_scorer
    from repro.core import dp

    table = cartel_workload(segments=SEGMENTS, me_fraction=ME_FRACTION)
    scorer = congestion_scorer()
    specs = _specs(scorer)

    fused_s = float("inf")
    unfused_s = float("inf")
    fused_results: list[Any] = []
    unfused_results: list[Any] = []
    sweeps = -1
    for _ in range(REPEATS):
        session = _session(table)
        before = dp.dp_sweep_count()
        start = time.perf_counter()
        fused_results = session.execute_many(specs)
        elapsed = time.perf_counter() - start
        if elapsed < fused_s:
            fused_s = elapsed
            sweeps = dp.dp_sweep_count() - before

        session = _session(table)
        start = time.perf_counter()
        unfused_results = [session.execute(spec) for spec in specs]
        unfused_s = min(unfused_s, time.perf_counter() - start)

    for got, want in zip(fused_results, unfused_results):
        if hasattr(got, "scores"):
            assert got.scores == want.scores and got.probs == want.probs, (
                "fused distribution diverged from the unfused path"
            )
        else:
            assert got == want, "fused answer diverged from the unfused path"

    speedup = unfused_s / fused_s if fused_s > 0 else float("inf")
    return {
        "workload": {
            "segments": SEGMENTS,
            "me_fraction": ME_FRACTION,
            "p_tau": P_TAU,
            "ks": list(KS),
            "semantics": list(SEMANTICS),
            "requests": len(specs),
        },
        "fused": {
            "elapsed_s": round(fused_s, 4),
            "dp_sweeps": sweeps,
        },
        "unfused": {"elapsed_s": round(unfused_s, 4)},
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }


def test_fused_batch_beats_unfused_by_bar() -> None:
    """CI bar: fused mixed-k batch >= MIN_SPEEDUP x the unfused path,
    with exactly one DP sweep and byte-identical answers."""
    result = run_comparison()
    print(json.dumps(result, indent=2))
    assert result["fused"]["dp_sweeps"] == 1, result
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"fusion speedup {result['speedup']}x below the "
        f"{MIN_SPEEDUP}x bar: {result}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the result document to PATH")
    args = parser.parse_args(argv)
    result = run_comparison()
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.json}")
    if result["fused"]["dp_sweeps"] != 1:
        print("FAIL: fused batch ran more than one DP sweep",
              file=sys.stderr)
        return 1
    if result["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']}x below the "
            f"{MIN_SPEEDUP}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    import pathlib

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )
    raise SystemExit(main())
