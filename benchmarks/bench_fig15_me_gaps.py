"""Figure 15: widening the rank gaps between ME-group members.

Paper claim: changing the distance between neighbouring members of an
ME group (1-8 tuples → 1-40 tuples) produces *no noticeable change* in
the top-k score distribution.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import synthetic_workload
from repro.semantics.answers import typicality_report

K = 10
GAPS = ((1, 8), (1, 40))

_results: dict[tuple, dict] = {}


@pytest.mark.parametrize("gaps", GAPS, ids=["gaps1-8", "gaps1-40"])
def test_fig15_gaps(benchmark, gaps):
    def run():
        table = synthetic_workload(me_gaps=gaps)
        report = typicality_report(table, "score", K, 3)
        return {
            "gaps": f"{gaps[0]}-{gaps[1]}",
            "E[S]": report.pmf.expectation(),
            "std": report.pmf.std(),
            "span90": report.pmf.span_containing(0.9),
        }

    _results[gaps] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig15_shape(benchmark, capsys):
    benchmark.pedantic(lambda: dict(_results), rounds=1, iterations=1)
    assert len(_results) == 2, "run the parametrized cases first"
    narrow, wide = _results[(1, 8)], _results[(1, 40)]
    # "No noticeable change": means within ~10% of the narrow span.
    assert wide["E[S]"] == pytest.approx(
        narrow["E[S]"], rel=0.10
    )
    with capsys.disabled():
        print_series("Figure 15: ME member gaps", [narrow, wide])
