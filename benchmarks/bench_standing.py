"""Standing-query maintenance benchmark: delta tiers vs recompute.

Drives the identical mixed mutation stream (inserts, expires,
probability and score updates) over a 1k-tuple mutable table twice:

* **maintained** — 20 standing subscriptions kept current by the
  :class:`~repro.standing.registry.StandingRegistry`, which classifies
  each delta per subscription into the skip / patch / recompute tiers
  (Theorem-2 depth arguments decide when the old answer provably
  survives);
* **recompute** — the pre-subscription behavior: after every mutation,
  re-run all 20 queries through an ordinary session (version-keyed
  caches miss by design, shared-prefix reuse within a version still
  applies, so the baseline is not a strawman).

The acceptance bar of the standing-queries PR: **maintained throughput
≥ 3x recompute** on this CI-sized stream.  The gap widens with table
size and subscription count, since most deltas land below the Theorem-2
boundary and cost O(1) per subscription to classify.

Run as pytest (``pytest benchmarks/bench_standing.py -s``) or
standalone (``python benchmarks/bench_standing.py [--json PATH]``,
exits nonzero below the bar).
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from typing import Any

import numpy as np

#: The mutable table under maintenance (ME-free: every fast tier is
#: applicable, which is the workload the subsystem is built for).
TABLE_SPEC = "synthetic:tuples=1000,me=0.0,seed=11"

SUBSCRIPTIONS = 20
MUTATIONS = 40
SEED = 11
P_TAU = 0.05

#: The acceptance bar.
MIN_SPEEDUP = 3.0


def _fresh_table():
    from repro.datasets.specs import generate_from_spec
    from repro.standing import MutableUncertainTable

    return MutableUncertainTable.from_table(
        generate_from_spec(TABLE_SPEC)
    )


def _specs() -> list:
    """20 subscriptions cycling over every registered semantics."""
    from repro.api.registry import available_semantics
    from repro.api.spec import QuerySpec

    semantics = itertools.cycle(sorted(available_semantics()))
    ks = itertools.cycle((2, 5, 10, 20))
    return [
        QuerySpec(
            table="live", scorer="score", k=next(ks),
            semantics=next(semantics), p_tau=P_TAU,
        )
        for _ in range(SUBSCRIPTIONS)
    ]


def _mutation_script(mutations: int) -> list[tuple[str, dict[str, Any]]]:
    """A deterministic mixed stream, valid against a scratch replay."""
    rng = np.random.default_rng(SEED)
    table = _fresh_table()
    script: list[tuple[str, dict[str, Any]]] = []
    counter = itertools.count()
    for _ in range(mutations):
        op = ("insert", "expire", "update_probability", "update_score")[
            rng.integers(4)
        ]
        # Scores come from the table's own marginal (the synthetic
        # default, N(150, 60)): a realistic stream touches the long
        # tail far more often than the top-k boundary region.
        if op == "insert":
            payload: dict[str, Any] = {
                "tid": f"m{next(counter)}",
                "attributes": {"score": float(rng.normal(150.0, 60.0))},
                "probability": float(rng.uniform(0.05, 0.95)),
            }
        else:
            victim = table.tids[rng.integers(len(table.tids))]
            payload = {"tid": victim}
            if op == "update_probability":
                payload["probability"] = float(rng.uniform(0.05, 0.95))
            elif op == "update_score":
                payload["attributes"] = {
                    "score": float(rng.normal(150.0, 60.0))
                }
        table.apply_payload(op, payload)
        script.append((op, payload))
    return script


def _measure_maintained(
    script: list[tuple[str, dict[str, Any]]],
) -> dict[str, Any]:
    from repro.api.session import Session
    from repro.standing import StandingRegistry

    registry = StandingRegistry(Session({"live": _fresh_table()}))
    for spec in _specs():
        registry.subscribe(spec)
    start = time.perf_counter()
    for op, payload in script:
        registry.mutate("live", op, payload)
    elapsed = time.perf_counter() - start
    stats = registry.describe()
    return {
        "mode": "maintained",
        "elapsed_s": round(elapsed, 3),
        "mutations_per_s": round(len(script) / elapsed, 2),
        "skip": stats["skip"],
        "patch": stats["patch"],
        "recompute": stats["recompute"],
    }


def _measure_recompute(
    script: list[tuple[str, dict[str, Any]]],
) -> dict[str, Any]:
    from repro.api.session import Session

    table = _fresh_table()
    session = Session({"live": table})
    specs = _specs()
    for spec in specs:  # the initial cold answers, as for subscribe()
        session.execute(spec)
    start = time.perf_counter()
    for op, payload in script:
        table.apply_payload(op, payload)
        for spec in specs:
            session.execute(spec)
    elapsed = time.perf_counter() - start
    return {
        "mode": "recompute",
        "elapsed_s": round(elapsed, 3),
        "mutations_per_s": round(len(script) / elapsed, 2),
    }


def run_comparison(mutations: int = MUTATIONS) -> dict[str, Any]:
    """Both maintenance strategies over the identical stream."""
    script = _mutation_script(mutations)
    recompute = _measure_recompute(script)
    maintained = _measure_maintained(script)
    speedup = maintained["mutations_per_s"] / recompute["mutations_per_s"]
    return {
        "workload": {
            "table": TABLE_SPEC,
            "subscriptions": SUBSCRIPTIONS,
            "mutations": mutations,
            "p_tau": P_TAU,
        },
        "recompute": recompute,
        "maintained": maintained,
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }


def test_maintained_beats_recompute() -> None:
    """Delta maintenance serves the stream >= 3x faster."""
    from repro.bench.reporting import print_series

    report = run_comparison()
    print_series(
        f"Standing maintenance ({SUBSCRIPTIONS} subscriptions, "
        f"{MUTATIONS} mixed mutations, {TABLE_SPEC})",
        [report["recompute"], report["maintained"]],
        columns=("mode", "elapsed_s", "mutations_per_s"),
    )
    tiers = report["maintained"]
    print(
        f"  tiers: skip={tiers['skip']} patch={tiers['patch']} "
        f"recompute={tiers['recompute']}"
    )
    print(f"  speedup: {report['speedup']}x (bar {MIN_SPEEDUP}x)")
    assert report["speedup"] >= MIN_SPEEDUP, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON")
    parser.add_argument("--mutations", type=int, default=MUTATIONS)
    args = parser.parse_args(argv)
    report = run_comparison(args.mutations)
    print(json.dumps(report, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if report["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {report['speedup']}x below the "
            f"{MIN_SPEEDUP}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
