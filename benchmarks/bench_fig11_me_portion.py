"""Figure 11: execution time vs the portion of mutually exclusive
tuples.

The main algorithm runs one dynamic program per ending unit, so its
cost grows with the fraction of tuples that belong to multi-member ME
groups (Section 3.3.3's O(kmn)).  The sweep varies the fraction of
multi-measurement segments in the CarTel simulator.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import AREA_SEEDS, cartel_workload, congestion_scorer
from repro.core.distribution import prepare_scored_prefix
from repro.core.dp import dp_distribution

from conftest import P_TAU

PORTIONS = (0.1, 0.2, 0.3, 0.4, 0.5)
K = 10

_rows: list[dict] = []


@pytest.mark.parametrize("portion", PORTIONS)
def test_fig11_me_portion(benchmark, portion):
    table = cartel_workload(
        seed=AREA_SEEDS[0], segments=120, me_fraction=portion
    )
    prefix = prepare_scored_prefix(
        table, congestion_scorer(), K, p_tau=P_TAU
    )
    pmf = benchmark.pedantic(
        lambda: dp_distribution(prefix, K),
        rounds=1,
        iterations=1,
    )
    assert not pmf.is_empty()
    _rows.append(
        {
            "portion_config": portion,
            "me_tuple_fraction": table.me_tuple_fraction(),
            "scan_depth": len(prefix),
            "me_members_in_prefix": prefix.me_member_count(),
        }
    )


def test_fig11_series_printed(benchmark, capsys):
    benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    fractions = [row["me_tuple_fraction"] for row in _rows]
    assert fractions == sorted(fractions)
    with capsys.disabled():
        print_series(
            "Figure 11 configurations (times in the benchmark table)",
            _rows,
        )
