"""Figure 16: growing the ME-group sizes.

Paper claims: raising group sizes from 2-3 to 2-10 (a) widens the
distribution substantially, (b) shifts it toward lower scores (only
one tuple per group can make the top-k, so lower-ranked tuples get
their chance), and (c) makes the U-Topk result drift to the low end of
the distribution.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.bench.workloads import synthetic_workload
from repro.semantics.answers import typicality_report

K = 10
SIZES = ((2, 3), (2, 10))

_results: dict[tuple, dict] = {}


@pytest.mark.parametrize("sizes", SIZES, ids=["sizes2-3", "sizes2-10"])
def test_fig16_sizes(benchmark, sizes):
    def run():
        table = synthetic_workload(me_sizes=sizes)
        report = typicality_report(table, "score", K, 3)
        assert report.u_topk is not None
        return {
            "sizes": f"{sizes[0]}-{sizes[1]}",
            "E[S]": report.pmf.expectation(),
            "span90": report.pmf.span_containing(0.9),
            "u_topk_pctl": report.u_topk_percentile,
        }

    _results[sizes] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig16_shape(benchmark, capsys):
    benchmark.pedantic(lambda: dict(_results), rounds=1, iterations=1)
    assert len(_results) == 2, "run the parametrized cases first"
    small, large = _results[(2, 3)], _results[(2, 10)]
    assert large["span90"] > 1.25 * small["span90"]  # (a) wider
    assert large["E[S]"] < small["E[S]"]  # (b) lower scores
    assert large["u_topk_pctl"] > 0.7 or large["u_topk_pctl"] < 0.3  # (c)
    with capsys.disabled():
        print_series("Figure 16: ME group sizes", [small, large])
