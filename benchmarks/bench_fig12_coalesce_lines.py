"""Figure 12: execution time vs the maximum number of lines.

The paper observes linear growth: once coalescing kicks in, per-cell
work is proportional to the line budget.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_series
from repro.core.dp import dp_distribution

LINE_BUDGETS = (50, 100, 200, 300, 400, 500)
K = 10

_rows: list[dict] = []


@pytest.mark.parametrize("max_lines", LINE_BUDGETS)
def test_fig12_max_lines(benchmark, cartel_prefixes, max_lines):
    prefix = cartel_prefixes[K]
    pmf = benchmark.pedantic(
        lambda: dp_distribution(prefix, K, max_lines=max_lines),
        rounds=1,
        iterations=1,
    )
    assert len(pmf) <= max_lines
    _rows.append({"max_lines": max_lines, "output_lines": len(pmf)})


def test_fig12_series_printed(benchmark, capsys):
    benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    with capsys.disabled():
        print_series(
            "Figure 12 configurations (times in the benchmark table)",
            _rows,
        )
